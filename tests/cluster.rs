//! Integration: CH-BL load balancing over live workers.

use iluvatar::prelude::*;
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_lb::cluster::WorkerHandle;
use std::sync::Arc;

fn worker(name: &str, memory_mb: u64) -> Arc<Worker> {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: name.into(),
        cores: 4,
        memory_mb,
        concurrency: ConcurrencyConfig {
            limit: 8,
            ..Default::default()
        },
        ..WorkerConfig::for_testing()
    };
    Arc::new(Worker::new(cfg, backend, clock))
}

fn cluster_of(n: usize, policy: LbPolicy) -> (Vec<Arc<Worker>>, Cluster) {
    let workers: Vec<Arc<Worker>> = (0..n).map(|i| worker(&format!("w{i}"), 2048)).collect();
    let handles: Vec<Arc<dyn WorkerHandle>> = workers
        .iter()
        .map(|w| Arc::clone(w) as Arc<dyn WorkerHandle>)
        .collect();
    (workers, Cluster::new(handles, policy))
}

#[test]
fn chbl_locality_maximizes_warm_starts() {
    let (workers, cluster) = cluster_of(3, LbPolicy::ChBl(ChBlConfig::default()));
    for i in 0..6 {
        cluster
            .register_all(FunctionSpec::new(format!("fn{i}"), "1").with_timing(50, 500))
            .unwrap();
    }
    let mut cold = 0;
    for round in 0..4 {
        for i in 0..6 {
            let r = cluster.invoke(&format!("fn{i}-1"), "{}").unwrap();
            if r.cold {
                cold += 1;
                assert_eq!(round, 0, "cold starts only in the first round");
            }
        }
    }
    assert_eq!(
        cold, 6,
        "exactly one cold start per function — perfect locality"
    );
    // Every function's invocations landed on a single worker.
    let total: u64 = workers.iter().map(|w| w.status().completed).sum();
    assert_eq!(total, 24);
    let warm: u64 = workers.iter().map(|w| w.status().warm_hits).sum();
    assert_eq!(warm, 18);
}

#[test]
fn round_robin_spreads_and_loses_locality() {
    let (workers, cluster) = cluster_of(3, LbPolicy::RoundRobin);
    cluster
        .register_all(FunctionSpec::new("f", "1").with_timing(50, 500))
        .unwrap();
    for _ in 0..6 {
        cluster.invoke("f-1", "{}").unwrap();
    }
    // Every worker saw the function → 3 cold starts (vs CH-BL's 1).
    let cold: u64 = workers.iter().map(|w| w.status().cold_starts).sum();
    assert_eq!(cold, 3, "round robin cold-starts on every worker");
}

#[test]
fn chbl_forwards_under_load_imbalance() {
    let (_workers, cluster) = cluster_of(2, LbPolicy::ChBl(ChBlConfig { c: 1.2, vnodes: 64 }));
    let cluster = Arc::new(cluster);
    cluster
        .register_all(FunctionSpec::new("busy", "1").with_timing(3_000, 10))
        .unwrap();
    // Saturate the home worker with slow concurrent invocations; CH-BL
    // must forward the overflow off the hot home.
    let threads: Vec<_> = (0..12)
        .map(|_| {
            let c = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let _ = c.invoke("busy-1", "{}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let st = cluster.stats();
    assert!(
        st.forwarded > 0 && st.dispatched.iter().all(|&d| d > 0),
        "overload must spill to the second worker: dispatched={:?} forwarded={}",
        st.dispatched,
        st.forwarded
    );
}

#[test]
fn least_loaded_balances_closed_loop() {
    let workers: Vec<Arc<Worker>> = (0..2).map(|i| worker(&format!("ll{i}"), 2048)).collect();
    let handles: Vec<Arc<dyn WorkerHandle>> = workers
        .iter()
        .map(|w| Arc::clone(w) as Arc<dyn WorkerHandle>)
        .collect();
    let cluster = Arc::new(Cluster::new(handles, LbPolicy::LeastLoaded));
    cluster
        .register_all(FunctionSpec::new("f", "1").with_timing(100, 100))
        .unwrap();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let c = Arc::clone(&cluster);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let _ = c.invoke("f-1", "{}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let st = cluster.stats();
    assert_eq!(st.dispatched.iter().sum::<u64>(), 40);
    // Both workers should participate under concurrent least-loaded.
    assert!(
        st.dispatched.iter().all(|&d| d > 0),
        "dispatched={:?}",
        st.dispatched
    );
}
