//! Integration: the elastic fleet — a seeded burst grows a cluster of real
//! in-process workers, the quiet tail drains it back, and scale-down never
//! costs an invocation.

use iluvatar::prelude::*;
use iluvatar_autoscale::{AutoscaleConfig, FleetObservation, ScaleDirection, ScalingPolicyKind};
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_http::{Method, PooledClient, Request};
use iluvatar_lb::cluster::WorkerHandle;
use iluvatar_lb::{BreakerConfig, Fleet, LbApi};
use std::sync::Arc;
use std::time::Duration;

fn mk_worker(name: &str) -> Arc<dyn WorkerHandle> {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: name.into(),
        cores: 4,
        memory_mb: 2048,
        concurrency: ConcurrencyConfig {
            limit: 8,
            ..Default::default()
        },
        ..WorkerConfig::for_testing()
    };
    Arc::new(Worker::new(cfg, backend, clock))
}

fn elastic_fleet(cfg: AutoscaleConfig) -> (Arc<Cluster>, Fleet) {
    let cluster = Arc::new(Cluster::with_capacity(
        vec![mk_worker("e2e-0")],
        LbPolicy::ChBl(ChBlConfig::default()),
        BreakerConfig::default(),
        cfg.max_workers,
    ));
    let fleet = Fleet::new(
        Arc::clone(&cluster),
        Box::new(|seq: usize| Ok(mk_worker(&format!("e2e-{seq}")))),
        cfg,
    );
    (cluster, fleet)
}

/// The acceptance trajectory: a seeded burst must scale a real worker
/// fleet 1 → ≥3 → 1, serving every invocation along the way (workers are
/// drained, never killed).
#[test]
fn seeded_burst_scales_real_fleet_without_drops() {
    let mut cfg = AutoscaleConfig::enabled_with(ScalingPolicyKind::ReactiveQueueDelay);
    cfg.min_workers = 1;
    cfg.max_workers = 5;
    cfg.interval_ms = 500;
    cfg.scale_up_cooldown_ms = 500;
    cfg.scale_down_cooldown_ms = 1_500;
    cfg.max_step = 2;
    let interval_ms = cfg.interval_ms;
    let (cluster, fleet) = elastic_fleet(cfg);

    let specs: Vec<FunctionSpec> = (0..3)
        .map(|i| FunctionSpec::new(format!("ride{i}"), "1").with_timing(50, 300))
        .collect();
    for s in &specs {
        cluster.register_all(s.clone()).unwrap();
        fleet.remember_spec(s.clone());
    }

    // Quiet → burst → quiet arrivals through a fluid backlog model: each
    // worker retires 10 invocations per tick; the excess queues and its
    // modelled delay is the scaling signal. Invocations are real and
    // synchronous — a drop would surface as an Err from the cluster.
    let mut backlog = 0.0f64;
    let mut peak = 0usize;
    let mut errors = 0u64;
    let ticks = 36u64;
    for tick in 0..ticks {
        let arrivals: u64 = if (9..18).contains(&tick) { 60 } else { 2 };
        for i in 0..arrivals.min(5) {
            let fqdn = format!("ride{}-1", (tick + i) % 3);
            fleet.note_arrival(&fqdn);
            if cluster.invoke(&fqdn, "{}").is_err() {
                errors += 1;
            }
        }
        let live = fleet.live().max(1);
        let capacity = live as f64 * 10.0;
        backlog = (backlog + arrivals as f64 - capacity).max(0.0);
        let delay_ms = backlog / capacity * interval_ms as f64;
        let obs = FleetObservation {
            now_ms: tick * interval_ms,
            live,
            draining: fleet.draining(),
            queued: backlog.round() as u64,
            running: capacity.min(backlog + arrivals as f64).round() as u64,
            mean_queue_delay_ms: delay_ms,
            max_queue_delay_ms: delay_ms as u64,
            concurrency_limit: 8,
            pull_queue_depth: 0,
            arrivals,
            per_fn_arrivals: vec![("ride0-1".into(), arrivals)],
        };
        fleet.reap();
        let d = fleet.evaluate(&obs);
        fleet.apply(&d, tick * interval_ms).unwrap();
        peak = peak.max(fleet.live());
    }
    // Retire the drain tail.
    for _ in 0..200 {
        fleet.reap();
        if fleet.draining() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    assert!(peak >= 3, "burst must grow the fleet to >=3, peak {peak}");
    assert_eq!(fleet.live(), 1, "quiet tail must shrink back to the floor");
    assert_eq!(fleet.draining(), 0, "every drained worker must retire");
    assert_eq!(
        errors, 0,
        "scale-down must drain, not kill: zero dropped invocations"
    );

    // The journal tells the same story: growth first, shrink after, and
    // the retired-worker counter matches the down-steps.
    let events = fleet.events();
    let first_down = events
        .iter()
        .position(|e| e.direction == ScaleDirection::Down)
        .unwrap();
    assert!(
        events[..first_down]
            .iter()
            .all(|e| e.direction == ScaleDirection::Up),
        "no shrink before the burst peaks"
    );
    let shrunk: usize = events
        .iter()
        .filter(|e| e.direction == ScaleDirection::Down)
        .map(|e| e.from - e.to)
        .sum();
    assert_eq!(fleet.stopped() as usize, shrunk);
}

/// `GET /fleet` and `GET /metrics` surface the elastic state over HTTP:
/// fleet size, scale events, and per-worker breaker/draining telemetry.
#[test]
fn fleet_endpoint_and_metrics_over_http() {
    let mut cfg = AutoscaleConfig::enabled_with(ScalingPolicyKind::ReactiveQueueDelay);
    cfg.min_workers = 1;
    cfg.max_workers = 3;
    // Park the background loop: this test steers the fleet by hand.
    cfg.interval_ms = 3_600_000;
    let (cluster, fleet) = elastic_fleet(cfg);
    let spec = FunctionSpec::new("surge", "1").with_timing(40, 200);
    cluster.register_all(spec.clone()).unwrap();
    fleet.remember_spec(spec);
    let fleet = Arc::new(fleet);

    let mut api = LbApi::serve_with_fleet(
        Arc::clone(&cluster),
        Duration::from_millis(20),
        Some(Arc::clone(&fleet)),
    )
    .unwrap();
    let client = PooledClient::new(Duration::from_secs(2));

    // Manual scale-up, as the control loop would do on a burst tick.
    let ev = fleet
        .apply(
            &iluvatar_autoscale::ScalingDecision::ScaleUp {
                add: 1,
                reason: "test_burst",
            },
            1_000,
        )
        .unwrap()
        .expect("scale-up journaled");
    assert_eq!((ev.from, ev.to), (1, 2));

    let resp = client
        .send(api.addr(), &Request::new(Method::Get, "/fleet"))
        .unwrap();
    let status = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(
        status.contains("\"live\":2"),
        "fleet status missing live count:\n{status}"
    );
    assert!(
        status.contains("\"policy\":\"reactive-queue-delay\""),
        "fleet status missing policy:\n{status}"
    );
    assert!(
        status.contains("\"reason\":\"test_burst\""),
        "event not journaled:\n{status}"
    );

    // Wait for a scrape to observe both workers, then check the exposition.
    std::thread::sleep(Duration::from_millis(80));
    let resp = client
        .send(api.addr(), &Request::new(Method::Get, "/metrics"))
        .unwrap();
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(
        text.contains("iluvatar_fleet_size 2"),
        "fleet gauge missing:\n{text}"
    );
    assert!(
        text.contains("iluvatar_scale_events_total{direction=\"up\",reason=\"test_burst\"} 1"),
        "scale event counter missing:\n{text}"
    );
    assert!(
        text.contains("iluvatar_breaker_state{"),
        "breaker gauge missing:\n{text}"
    );
    assert!(
        text.contains("iluvatar_fleet_draining 0"),
        "draining gauge missing:\n{text}"
    );
    api.shutdown();
}
