//! The paper's headline result *shapes*, pinned as tests on miniature
//! versions of the evaluation workloads. These are the claims EXPERIMENTS.md
//! tracks; if a refactor breaks one of them, the reproduction is broken
//! even if every unit test still passes.

use iluvatar::prelude::*;
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_sim::{KeepaliveSim, SimConfig};
use iluvatar_trace::azure::AzureTraceConfig;
use iluvatar_trace::samples::TraceSample;

fn mini_base() -> SyntheticAzureTrace {
    SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 250,
        duration_ms: 4 * 3600 * 1000,
        seed: 0xFEED,
        diurnal_fraction: 0.2,
        rate_scale: 1.0,
    })
}

fn run(trace: &SyntheticAzureTrace, policy: KeepalivePolicyKind, cache_gb: u64) -> f64 {
    KeepaliveSim::run(
        trace.profiles.clone(),
        &trace.events,
        SimConfig::new(policy, cache_gb * 1024),
    )
    .exec_increase_pct()
}

/// Fig. 4a: on the representative workload, Greedy-Dual beats TTL by a
/// wide margin at mid-range cache sizes.
#[test]
fn gd_beats_ttl_on_representative() {
    let base = mini_base();
    let rep = TraceSample::draw(SampleKind::Representative, &base, 7);
    let ttl = run(&rep.trace, KeepalivePolicyKind::Ttl, 15);
    let gd = run(&rep.trace, KeepalivePolicyKind::Gdsf, 15);
    assert!(
        gd * 2.0 < ttl,
        "paper: GD >3x below TTL mid-range; measured GD {gd:.2}% vs TTL {ttl:.2}%"
    );
}

/// Fig. 4a: GD at a small cache matches other policies at a much larger
/// one — the cache-shrinking claim.
#[test]
fn gd_shrinks_cache_requirement() {
    let base = mini_base();
    let rep = TraceSample::draw(SampleKind::Representative, &base, 7);
    let gd_small = run(&rep.trace, KeepalivePolicyKind::Gdsf, 15);
    let lru_big = run(&rep.trace, KeepalivePolicyKind::Lru, 30);
    assert!(
        gd_small <= lru_big * 1.5,
        "GD@15GB ({gd_small:.2}%) should be near LRU@30GB ({lru_big:.2}%)"
    );
}

/// Fig. 4b: TTL is flat (non-work-conserving floor) on rare functions while
/// caching policies keep improving; HIST lands between them.
#[test]
fn rare_functions_ttl_floor_and_hist_between() {
    let base = mini_base();
    let rare = TraceSample::draw(SampleKind::Rare, &base, 7);
    let ttl_30 = run(&rare.trace, KeepalivePolicyKind::Ttl, 30);
    let ttl_80 = run(&rare.trace, KeepalivePolicyKind::Ttl, 80);
    assert!(
        (ttl_30 - ttl_80).abs() < ttl_30 * 0.2 + 1.0,
        "TTL must flatline on rare fns: {ttl_30:.2}% vs {ttl_80:.2}%"
    );
    let gd = run(&rare.trace, KeepalivePolicyKind::Gdsf, 30);
    let hist = run(&rare.trace, KeepalivePolicyKind::Hist, 30);
    assert!(gd < ttl_30, "caching beats TTL on rare functions");
    assert!(
        hist < ttl_30 * 1.1 && hist > gd,
        "HIST between TTL ({ttl_30:.2}) and GD ({gd:.2}): {hist:.2}"
    );
}

/// Fig. 5: the cold-start *ratio* improves monotonically with cache size
/// for the work-conserving policies.
#[test]
fn cold_ratio_improves_with_cache() {
    let base = mini_base();
    let rnd = TraceSample::draw(SampleKind::Random, &base, 7);
    let mut last = f64::INFINITY;
    for gb in [5u64, 15, 30, 60] {
        let out = KeepaliveSim::run(
            rnd.trace.profiles.clone(),
            &rnd.trace.events,
            SimConfig::new(KeepalivePolicyKind::Lru, gb * 1024),
        );
        let r = out.cold_ratio();
        assert!(
            r <= last + 0.02,
            "LRU cold ratio rose with cache: {r} at {gb}GB"
        );
        last = r;
    }
}

/// Fig. 8 / §6.3: dynamic provisioning averages well under the static
/// allocation while serving comparably.
#[test]
fn dynamic_provisioning_saves_memory() {
    use iluvatar_sim::provisioning::{DynamicScaler, ProvisioningConfig};
    let base = mini_base();
    let rep = TraceSample::draw(SampleKind::Representative, &base, 7);
    let static_mb = 10_000u64;
    let stat = KeepaliveSim::run(
        rep.trace.profiles.clone(),
        &rep.trace.events,
        SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
    );
    // The paper's target trades a tolerable miss speed for memory: aim for
    // 3x the fully-provisioned miss rate, and let the controller find the
    // smallest cache that sustains it.
    let duration_s = rep.trace.duration_ms as f64 / 1000.0;
    let target = (stat.cold as f64 / duration_s) * 3.0;
    let run = DynamicScaler::new(ProvisioningConfig {
        target_miss_per_sec: target,
        initial_mb: static_mb,
        min_mb: 1_000,
        max_mb: static_mb * 2,
        ..Default::default()
    })
    .run(
        rep.trace.profiles.clone(),
        &rep.trace.events,
        SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
    );
    let saving = 1.0 - run.mean_cache_mb() / static_mb as f64;
    assert!(
        saving > 0.15,
        "paper: ~30% saving; measured {:.0}% (mean {:.0}MB vs {static_mb}MB)",
        saving * 100.0,
        run.mean_cache_mb()
    );
    assert!(
        run.outcome.cold_ratio() < stat.cold_ratio() * 3.0 + 0.02,
        "service must stay comparable: dynamic {:.4} vs static {:.4}",
        run.outcome.cold_ratio(),
        stat.cold_ratio()
    );
}

/// §6.2 (HIST on heterogeneous workloads): the histogram policy trails the
/// caching policies on the representative trace.
#[test]
fn hist_weak_on_heterogeneous_representative() {
    let base = mini_base();
    let rep = TraceSample::draw(SampleKind::Representative, &base, 7);
    let hist = run(&rep.trace, KeepalivePolicyKind::Hist, 30);
    let gd = run(&rep.trace, KeepalivePolicyKind::Gdsf, 30);
    assert!(
        hist > gd,
        "paper: HIST 'unable to perform well' on representative; HIST {hist:.2}% vs GD {gd:.2}%"
    );
}
