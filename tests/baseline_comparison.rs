//! Integration: the headline comparison — Ilúvatar's control-plane
//! overhead must be far below the OpenWhisk model's for the same workload
//! on the same machine (the Figure 1 claim, at test scale).

use iluvatar::prelude::*;
use iluvatar::{OpenWhiskTarget, WorkerTarget};
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_trace::loadgen::{closed_loop, ClosedLoopConfig, InvokerTarget};
use std::sync::Arc;

fn percentile(xs: &[f64], q: f64) -> f64 {
    iluvatar_sync::stats::percentile(xs, q)
}

#[test]
fn iluvatar_overhead_far_below_openwhisk() {
    let spec = FbApp::PyAes.spec(); // 20ms warm function

    // Ilúvatar worker, real wall-clock, null backend.
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 1.0,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "cmp".into(),
        cores: 8,
        memory_mb: 8 * 1024,
        concurrency: ConcurrencyConfig {
            limit: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    worker.register(spec.clone()).unwrap();
    for _ in 0..4 {
        worker.prewarm("pyaes-1").unwrap();
    }
    let ilu = closed_loop(
        Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>,
        "pyaes-1",
        &ClosedLoopConfig {
            clients: 4,
            invocations_per_client: 25,
            warmup_per_client: 3,
        },
    );
    let ilu_over: Vec<f64> = ilu
        .iter()
        .filter(|o| !o.dropped && !o.cold)
        .map(|o| o.overhead_ms() as f64)
        .collect();

    // OpenWhisk model, same conditions.
    let ow = Arc::new(OpenWhiskModel::new(
        OpenWhiskConfig {
            cores: 8,
            invoker_slots: 16,
            ..Default::default()
        },
        SystemClock::shared(),
    ));
    ow.register(spec);
    for _ in 0..4 {
        ow.invoke("pyaes-1");
    }
    let oww = closed_loop(
        Arc::new(OpenWhiskTarget(Arc::clone(&ow))) as Arc<dyn InvokerTarget>,
        "pyaes-1",
        &ClosedLoopConfig {
            clients: 4,
            invocations_per_client: 25,
            warmup_per_client: 3,
        },
    );
    let ow_over: Vec<f64> = oww
        .iter()
        .filter(|o| !o.dropped && !o.cold)
        .map(|o| o.overhead_ms() as f64)
        .collect();

    assert!(!ilu_over.is_empty() && !ow_over.is_empty());
    let ilu_p50 = percentile(&ilu_over, 0.5);
    let ow_p50 = percentile(&ow_over, 0.5);
    assert!(
        ilu_p50 < 10.0,
        "iluvatar warm overhead should be single-digit ms, got {ilu_p50}"
    );
    assert!(
        ow_p50 > ilu_p50 * 2.0,
        "openwhisk median overhead ({ow_p50}ms) must dwarf iluvatar's ({ilu_p50}ms)"
    );
    let ow_p99 = percentile(&ow_over, 0.99);
    assert!(
        ow_p99 >= 20.0,
        "openwhisk p99 should show heavy tails, got {ow_p99}ms"
    );
}

#[test]
fn openwhisk_ttl_loses_rare_functions_iluvatar_gd_keeps_them() {
    // A function invoked every 11 virtual minutes: dead under the 10-minute
    // TTL, alive under work-conserving GD keep-alive.
    let events: Vec<(u64, u32)> = (0..8).map(|i| (i * 11 * 60_000, 0u32)).collect();
    let profile = iluvatar_trace::azure::FunctionProfile {
        fqdn: "rare-1".into(),
        app: 0,
        mean_iat_ms: 11.0 * 60_000.0,
        warm_ms: 500,
        init_ms: 3_000,
        memory_mb: 256,
        diurnal: false,
    };
    let mk = |policy| {
        let evs: Vec<iluvatar_trace::azure::TraceEvent> = events
            .iter()
            .map(|&(t, f)| iluvatar_trace::azure::TraceEvent {
                time_ms: t,
                func: f,
            })
            .collect();
        KeepaliveSim::run(vec![profile.clone()], &evs, SimConfig::new(policy, 4_096))
    };
    let ttl = mk(KeepalivePolicyKind::Ttl);
    let gd = mk(KeepalivePolicyKind::Gdsf);
    assert_eq!(ttl.cold, 8, "TTL expires before every arrival");
    assert_eq!(gd.cold, 1, "GD keeps the container warm indefinitely");
    assert!(gd.exec_increase_pct() < ttl.exec_increase_pct() / 4.0);
}
