//! Integration: the fully distributed deployment — workers behind their
//! HTTP APIs, a CH-BL balancer talking to them over real sockets.

use iluvatar::prelude::*;
use iluvatar_core::api::WorkerApi;
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_lb::cluster::{RemoteWorker, WorkerHandle};
use std::sync::Arc;

fn http_worker(name: &str) -> (Arc<Worker>, WorkerApi) {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: name.into(),
        cores: 4,
        memory_mb: 2048,
        concurrency: ConcurrencyConfig {
            limit: 8,
            ..Default::default()
        },
        ..WorkerConfig::for_testing()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    let api = WorkerApi::serve(Arc::clone(&worker)).unwrap();
    (worker, api)
}

#[test]
fn chbl_over_http_workers() {
    let (w0, api0) = http_worker("remote-0");
    let (w1, api1) = http_worker("remote-1");
    let handles: Vec<Arc<dyn WorkerHandle>> = vec![
        Arc::new(RemoteWorker::connect(api0.addr())),
        Arc::new(RemoteWorker::connect(api1.addr())),
    ];
    let cluster = Cluster::new(handles, LbPolicy::ChBl(ChBlConfig::default()));
    for i in 0..4 {
        cluster
            .register_all(FunctionSpec::new(format!("fn{i}"), "1").with_timing(50, 400))
            .unwrap();
    }
    // Repeated invocations: locality over the wire.
    let mut cold = 0;
    for _round in 0..3 {
        for i in 0..4 {
            let r = cluster.invoke(&format!("fn{i}-1"), "{}").unwrap();
            if r.cold {
                cold += 1;
            }
        }
    }
    assert_eq!(cold, 4, "one cold start per function despite HTTP hops");
    let completed = w0.status().completed + w1.status().completed;
    assert_eq!(completed, 12);
    // Both workers are reachable and report status through the API.
    let st = cluster.stats();
    assert_eq!(st.dispatched.iter().sum::<u64>(), 12);
}

#[test]
fn remote_worker_surfaces_errors() {
    let (_w, api) = http_worker("remote-err");
    let remote = RemoteWorker::connect(api.addr());
    match remote.invoke("ghost-1", "{}") {
        Err(InvokeError::NotRegistered(f)) => assert_eq!(f, "ghost-1"),
        other => panic!("expected NotRegistered, got {other:?}"),
    }
    assert!(remote.load().is_finite());
    // A dead endpoint reports infinite load so the balancer avoids it.
    drop(api);
    std::thread::sleep(std::time::Duration::from_millis(400));
    let dead = RemoteWorker::connect("127.0.0.1:1".parse().unwrap());
    assert!(dead.load().is_infinite());
}
