//! In-situ vs in-silico fidelity (§3.4): the same workload replayed through
//! the live worker (threads + null backend, compressed wall time) and
//! through the discrete-event keep-alive simulator must agree on what the
//! control plane did — cold-start counts, warm hits, eviction behaviour.

use iluvatar::prelude::*;
use iluvatar::WorkerTarget;
use iluvatar_core::config::{ConcurrencyConfig, KeepalivePolicyKind};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use iluvatar_trace::loadgen::{InvokerTarget, OpenLoopRunner, ScheduledInvocation};
use std::sync::Arc;

/// Deterministic workload: 3 functions, strictly periodic, 2 virtual min.
fn workload() -> (Vec<FunctionProfile>, Vec<TraceEvent>) {
    let profiles: Vec<FunctionProfile> = [
        ("a", 2_000u64, 400u64, 2_000u64, 128u64),
        ("b", 5_000, 800, 4_000, 256),
        ("c", 11_000, 600, 3_000, 192),
    ]
    .iter()
    .map(|&(name, iat, warm, init, mem)| FunctionProfile {
        fqdn: format!("{name}-1"),
        app: 0,
        mean_iat_ms: iat as f64,
        warm_ms: warm,
        init_ms: init,
        memory_mb: mem,
        diurnal: false,
    })
    .collect();
    let duration = 2 * 60_000u64;
    let mut events = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        let mut t = 0u64;
        while t < duration {
            events.push(TraceEvent {
                time_ms: t,
                func: i as u32,
            });
            t += p.mean_iat_ms as u64;
        }
    }
    events.sort_by_key(|e| e.time_ms);
    (profiles, events)
}

#[test]
fn des_and_live_worker_agree_on_cold_starts() {
    let (profiles, events) = workload();

    // --- in-silico: discrete-event simulator --------------------------
    let des = KeepaliveSim::run(
        profiles.clone(),
        &events,
        SimConfig::new(KeepalivePolicyKind::Gdsf, 16 * 1024),
    );

    // --- in-situ: live worker, 50x compressed wall time ---------------
    let scale = 0.02;
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: scale,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "fidelity".into(),
        cores: 16,
        memory_mb: 16 * 1024,
        keepalive: KeepalivePolicyKind::Gdsf,
        concurrency: ConcurrencyConfig {
            limit: 32,
            ..Default::default()
        },
        ..WorkerConfig::for_testing()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    for p in &profiles {
        let name = p.fqdn.trim_end_matches("-1");
        worker
            .register(
                FunctionSpec::new(name, "1")
                    .with_timing(p.warm_ms, p.init_ms)
                    .with_limits(ResourceLimits {
                        cpus: 1.0,
                        memory_mb: p.memory_mb,
                    }),
            )
            .unwrap();
    }
    let schedule: Vec<ScheduledInvocation> = events
        .iter()
        .map(|e| ScheduledInvocation {
            at_ms: (e.time_ms as f64 * scale) as u64,
            fqdn: profiles[e.func as usize].fqdn.clone(),
            args: "{}".into(),
            tenant: None,
        })
        .collect();
    let out = OpenLoopRunner::new(schedule)
        .run(Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>);

    let live_cold = out.iter().filter(|o| o.cold).count() as u64;
    let live_served = out.iter().filter(|o| !o.dropped).count() as u64;

    assert_eq!(live_served, des.total, "both paths serve every invocation");
    // Identical code paths, but wall-time jitter can shift a borderline
    // concurrent arrival: allow a small tolerance around the DES count.
    let diff = live_cold.abs_diff(des.cold);
    assert!(
        diff <= des.cold / 2 + 2,
        "cold starts diverged: live {live_cold} vs DES {}",
        des.cold
    );
    // With 16GB for a <1GB working set, neither path should ever evict.
    assert_eq!(des.evictions, 0);
    assert_eq!(worker.pool_stats().evictions, 0);
}

#[test]
fn reuse_distance_curve_predicts_lru_simulation() {
    // The Mattson one-pass hit-ratio curve must match the actual LRU
    // simulator at each size (for a serialized, non-concurrent trace).
    let profiles: Vec<FunctionProfile> = (0..6)
        .map(|i| FunctionProfile {
            fqdn: format!("f{i}-1"),
            app: 0,
            mean_iat_ms: 0.0,
            warm_ms: 1, // ~instant: no concurrent containers
            init_ms: 10,
            memory_mb: 100,
            diurnal: false,
        })
        .collect();
    // Cyclic access a,b,c,d,e,f,a,b,c,... 20 rounds, spaced out.
    let mut events = Vec::new();
    for r in 0..20u64 {
        for f in 0..6u32 {
            events.push(TraceEvent {
                time_ms: (r * 6 + f as u64) * 1_000,
                func: f,
            });
        }
    }
    let reuse = iluvatar_sim::ReuseAnalysis::compute(&profiles, &events);
    for cache_mb in [250u64, 450, 601, 850] {
        let sim = KeepaliveSim::run(
            profiles.clone(),
            &events,
            SimConfig::new(KeepalivePolicyKind::Lru, cache_mb),
        );
        let sim_hit = sim.warm as f64 / sim.total as f64;
        let curve_hit = reuse.hit_ratio(cache_mb);
        assert!(
            (sim_hit - curve_hit).abs() < 0.02,
            "cache {cache_mb}MB: sim {sim_hit:.3} vs curve {curve_hit:.3}"
        );
    }
}
