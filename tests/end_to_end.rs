//! End-to-end integration: the full worker over both real (in-process
//! agent) and simulated backends.

use iluvatar::prelude::*;
use iluvatar_containers::NamespacePool;
use iluvatar_core::config::ConcurrencyConfig;
use std::sync::Arc;

fn sim_worker(mut cfg: WorkerConfig) -> Worker {
    cfg.name = "it-sim".into();
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    Worker::new(cfg, backend, clock)
}

fn inprocess_worker() -> (Arc<iluvatar_containers::InProcessBackend>, Worker) {
    let clock = SystemClock::shared();
    let netns = Arc::new(NamespacePool::new(2, 0, Arc::clone(&clock)));
    netns.prefill();
    let backend = Arc::new(iluvatar_containers::InProcessBackend::new(netns));
    let worker = Worker::new(
        WorkerConfig::for_testing(),
        Arc::clone(&backend) as Arc<dyn iluvatar_core::ContainerBackend>,
        clock,
    );
    (backend, worker)
}

#[test]
fn real_agent_full_lifecycle() {
    let (backend, worker) = inprocess_worker();
    backend.register_behavior(
        "echo-1",
        FunctionBehavior::from_body(|args| format!("[{args}]")),
    );
    worker.register(FunctionSpec::new("echo", "1")).unwrap();

    let r1 = worker.invoke("echo-1", "42").unwrap();
    assert!(r1.cold);
    assert_eq!(r1.body, "[42]");
    let r2 = worker.invoke("echo-1", "43").unwrap();
    assert!(!r2.cold, "keep-alive served the second invocation warm");
    assert_eq!(r2.body, "[43]");
    assert_eq!(backend.live_containers(), 1, "one warm container pooled");

    let st = worker.status();
    assert_eq!(st.completed, 2);
    assert_eq!(st.warm_hits, 1);
}

#[test]
fn real_agents_concurrent_functions() {
    let (backend, worker) = inprocess_worker();
    for i in 0..4 {
        let tag = format!("{i}");
        backend.register_behavior(
            format!("f{i}-1"),
            FunctionBehavior::from_body(move |_| tag.clone()),
        );
        worker
            .register(FunctionSpec::new(format!("f{i}"), "1"))
            .unwrap();
    }
    let handles: Vec<_> = (0..4)
        .flat_map(|i| (0..3).map(move |_| i).collect::<Vec<_>>())
        .map(|i| (i, worker.async_invoke(&format!("f{i}-1"), "{}").unwrap()))
        .collect();
    for (i, h) in handles {
        let r = h.wait().unwrap();
        assert_eq!(r.body, i.to_string(), "results routed to the right caller");
    }
    assert_eq!(worker.status().completed, 12);
}

#[test]
fn functionbench_behaviors_run_on_real_agents() {
    let (backend, worker) = inprocess_worker();
    for app in [FbApp::PyAes, FbApp::MatrixMultiply, FbApp::WebServing] {
        backend.register_behavior(format!("{}-1", app.name()), app.behavior());
        worker.register(app.spec()).unwrap();
        let r = worker.invoke(&format!("{}-1", app.name()), "{}").unwrap();
        assert!(
            r.body.starts_with('{'),
            "{} returned {}",
            app.name(),
            r.body
        );
    }
}

#[test]
fn keepalive_policy_changes_eviction_order_end_to_end() {
    // GD keeps the expensive-to-init function; LRU would evict by recency.
    let mut cfg = WorkerConfig::for_testing();
    cfg.memory_mb = 256;
    cfg.free_buffer_mb = 0;
    cfg.keepalive = KeepalivePolicyKind::Gdsf;
    let w = sim_worker(cfg);
    w.register(
        FunctionSpec::new("dear", "1")
            .with_timing(50, 5_000)
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: 128,
            }),
    )
    .unwrap();
    w.register(
        FunctionSpec::new("cheap", "1")
            .with_timing(50, 10)
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: 128,
            }),
    )
    .unwrap();
    w.register(
        FunctionSpec::new("third", "1")
            .with_timing(50, 10)
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: 128,
            }),
    )
    .unwrap();
    w.invoke("dear-1", "{}").unwrap();
    w.invoke("cheap-1", "{}").unwrap();
    // Learn the init costs with one more round (both warm now).
    w.invoke("dear-1", "{}").unwrap();
    w.invoke("cheap-1", "{}").unwrap();
    // Third function forces an eviction: GD should sacrifice `cheap`
    // (low init cost) even though `dear` is older.
    w.invoke("third-1", "{}").unwrap();
    let r_dear = w.invoke("dear-1", "{}").unwrap();
    assert!(!r_dear.cold, "GD protected the high-init-cost function");
}

#[test]
fn queue_backpressure_and_recovery() {
    let mut cfg = WorkerConfig::for_testing();
    cfg.queue.max_len = 2;
    cfg.concurrency = ConcurrencyConfig {
        limit: 1,
        ..Default::default()
    };
    let w = sim_worker(cfg);
    w.register(FunctionSpec::new("slow", "1").with_timing(2_000, 0))
        .unwrap();
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for _ in 0..10 {
        match w.async_invoke("slow-1", "{}") {
            Ok(h) => accepted.push(h),
            Err(InvokeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(rejected > 0, "bounded queue must reject under burst");
    for h in accepted {
        h.wait().unwrap();
    }
    // After draining, new work is accepted again.
    assert!(w.invoke("slow-1", "{}").is_ok());
}

#[test]
fn worker_config_json_drives_behavior() {
    let json = WorkerConfig::for_testing().to_json();
    let cfg = WorkerConfig::from_json(&json).unwrap();
    let w = sim_worker(cfg);
    w.register(FunctionSpec::new("f", "1").with_timing(10, 10))
        .unwrap();
    assert!(w.invoke("f-1", "{}").is_ok());
}
