//! Minimal offline stand-in for `proptest`.
//!
//! Random-input property testing without shrinking: each `proptest!` test
//! runs its body for [`cases`] deterministic pseudo-random inputs (seeded
//! from the test name, so failures reproduce run-to-run). The strategy
//! combinators the workspace uses are provided: numeric ranges, `any`,
//! `Just`, tuples, `collection::vec`, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, and regex-subset string strategies (`"[a-z]{1,12}"`).

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Number of cases per property. Override with `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

// ---------------------------------------------------------------------- rng

/// Deterministic xoshiro256** generator, seeded from the test name.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut x = h ^ 0x9E3779B97F4A7C15;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

// ----------------------------------------------------------------- strategy

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe core, for heterogeneous strategy collections (`prop_oneof!`).
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for Box<dyn DynStrategy<V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate_dyn(rng)
    }
}

/// Uniform choice over a set of strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// ----------------------------------------------------------- numeric ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ------------------------------------------------------------------- any<T>

/// Types with a natural full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats spanning a wide magnitude range.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated strings debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// -------------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, min..max)`: a vector whose length is uniform in the
    /// size range and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------- regex-subset string gen

/// One repeatable unit of a string pattern.
enum Atom {
    Literal(char),
    /// Choice over an explicit character set.
    Class(Vec<char>),
}

struct Pattern {
    atoms: Vec<(Atom, usize, usize)>, // atom, min reps, max reps
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `chars[i]` is just past '['. Supports ranges (`a-z`), literals,
    // trailing `-`, and `&&[^…]` subtraction (character-class intersection
    // with a negation, as in `[ -~&&[^:]]`).
    let mut set: Vec<char> = Vec::new();
    let mut exclude: Vec<char> = Vec::new();
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '&' && chars.get(i + 1) == Some(&'&') && chars.get(i + 2) == Some(&'[') {
            let (sub, ni) = parse_class(chars, i + 3);
            // parse_class on `[^…]` returns the *negation complement* as an
            // exclusion via `negated`; for subtraction we want the raw set.
            // Recurse manually instead: the inner class starts with '^'.
            exclude = sub;
            i = ni;
            continue;
        }
        let c = chars[i];
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).map_or(false, |&c2| c2 != ']') {
            let hi = chars[i + 2];
            for code in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    let i = i + 1; // consume ']'
    if negated {
        // Negation over printable ASCII.
        let all: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
        let out: Vec<char> = all.into_iter().filter(|c| !set.contains(c)).collect();
        return (out, i);
    }
    if !exclude.is_empty() {
        // `exclude` holds the complement set from `[^…]`; keep intersection.
        let out: Vec<char> = set.into_iter().filter(|c| exclude.contains(c)).collect();
        return (out, i);
    }
    (set, i)
}

fn parse_pattern(pat: &str) -> Pattern {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, ni) = parse_class(&chars, i + 1);
                assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
                i = ni;
                Atom::Class(set)
            }
            '\\' => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} / {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed {} in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let m: usize = body.trim().parse().unwrap();
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    Pattern { atoms }
}

/// String literals act as regex-subset strategies, like in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &pattern.atoms {
            let reps = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..reps {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

// ------------------------------------------------------------------- macros

/// Define property tests. Each `pat in strategy` argument is drawn fresh
/// for every case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::cases() {
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $crate::__prop_bind!(__rng, $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name), __case + 1, $crate::cases(), __msg
                        );
                    }
                }
            }
        )+
    };
}

/// Internal: turn `pat in strategy, …` into `let` bindings.
#[macro_export]
#[doc(hidden)]
macro_rules! __prop_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", __a, __b),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`: {}", __a, __b, format!($($fmt)+)),
            );
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        Strategy,
    };
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = crate::Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut rng = crate::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = crate::Strategy::generate(&"/[a-zA-Z0-9_/]{0,30}", &mut rng);
            assert!(p.starts_with('/') && p.len() <= 31);

            let h = crate::Strategy::generate(&"[ -~&&[^:]]{0,30}", &mut rng);
            assert!(
                h.chars().all(|c| (' '..='~').contains(&c) && c != ':'),
                "{h:?}"
            );

            let d = crate::Strategy::generate(&"[a-zA-Z][a-zA-Z-]{0,15}", &mut rng);
            assert!(d.chars().next().unwrap().is_ascii_alphabetic());
            assert!(d.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
        }
    }

    proptest! {
        /// The harness itself: bindings, tuples, vec, oneof, map all compose.
        #[test]
        fn harness_composes(
            n in 1usize..5,
            (a, b) in (0u64..10, 0u64..10),
            v in crate::collection::vec(any::<u8>(), 0..8),
            pick in prop_oneof![Just(1u32), Just(2u32)],
            s in "[a-z]{2,4}",
            w in (1usize..4).prop_flat_map(|k| crate::collection::vec(Just(k), 1..3)),
        ) {
            prop_assert!(n >= 1 && n < 5);
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 8);
            prop_assert!(pick == 1u32 || pick == 2u32);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert_eq!(w.iter().filter(|&&x| x == w[0]).count(), w.len());
        }
    }
}
