//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (the value-tree model) for named-field structs and enums. Because
//! no third-party parser crates are available offline, the item is parsed
//! directly from the `proc_macro` token stream.
//!
//! Supported attribute subset (what this workspace uses):
//! - `#[serde(default)]` on fields — missing field takes `Default::default()`
//! - `#[serde(flatten)]` on fields — field's object merges into the parent
//! - `#[serde(tag = "…", rename_all = "snake_case")]` on enums — internal tagging
//!
//! `Option<T>` fields follow serde semantics: a missing key deserializes to
//! `None`. Tuple structs, tuple variants, and generic types are rejected
//! with a compile-time panic naming the construct.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    flatten: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
    is_option: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// `tag = "…"` container attribute (internally tagged enums).
    tag: Option<String>,
    /// `rename_all = "…"` container attribute.
    rename_all: Option<String>,
    body: Body,
}

// ------------------------------------------------------------------ parsing

/// Consume leading attributes (`#[...]`), returning the inner text of every
/// `#[serde(...)]` encountered.
fn take_attrs(toks: &[TokenTree], mut i: usize) -> (usize, Vec<String>) {
    let mut serde_attrs = Vec::new();
    while i + 1 < toks.len() {
        let is_hash = matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &toks[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        serde_attrs.push(args.stream().to_string());
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, serde_attrs)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a `serde(...)` attribute body into `word` / `word = "value"` parts.
fn parse_attr_parts(text: &str) -> Vec<(String, Option<String>)> {
    text.split(',')
        .map(|part| {
            let part = part.trim();
            match part.split_once('=') {
                Some((k, v)) => {
                    let v = v.trim().trim_matches('"').to_string();
                    (k.trim().to_string(), Some(v))
                }
                None => (part.to_string(), None),
            }
        })
        .filter(|(k, _)| !k.is_empty())
        .collect()
}

fn field_attrs(serde_attrs: &[String]) -> FieldAttrs {
    let mut out = FieldAttrs::default();
    for attr in serde_attrs {
        for (k, _) in parse_attr_parts(attr) {
            match k.as_str() {
                "default" => out.default = true,
                "flatten" => out.flatten = true,
                other => panic!("serde shim: unsupported field attribute `{other}`"),
            }
        }
    }
    out
}

/// Parse the named fields inside a brace group. Types are skipped (the
/// generated code relies on inference), but the leading type ident is
/// inspected to spot `Option<…>` fields.
fn parse_fields(group: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, serde_attrs) = take_attrs(&toks, i);
        i = skip_vis(&toks, j);
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde shim: expected field name, found `{other}`"),
            None => break,
        };
        i += 1;
        match &toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde shim: expected `:` after field `{name}`"),
        }
        let is_option =
            matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i64 = 0;
        while let Some(tok) = toks.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            attrs: field_attrs(&serde_attrs),
            is_option,
        });
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _attrs) = take_attrs(&toks, i);
        i = j;
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde shim: expected variant name, found `{other}`"),
            None => break,
        };
        i += 1;
        let fields = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim: tuple variant `{name}` is unsupported")
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = &toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (j, serde_attrs) = take_attrs(&toks, 0);
    let mut i = skip_vis(&toks, j);

    let mut tag = None;
    let mut rename_all = None;
    for attr in &serde_attrs {
        for (k, v) in parse_attr_parts(attr) {
            match (k.as_str(), v) {
                ("tag", Some(v)) => tag = Some(v),
                ("rename_all", Some(v)) => rename_all = Some(v),
                (other, _) => panic!("serde shim: unsupported container attribute `{other}`"),
            }
        }
    }

    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic type `{name}` is unsupported");
    }
    let body_group = match &toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde shim: tuple struct `{name}` is unsupported")
        }
        other => panic!("serde shim: expected `{{…}}` body for `{name}`, found {other:?}"),
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(body_group)),
        "enum" => Body::Enum(parse_variants(body_group)),
        other => panic!("serde shim: unsupported item kind `{other}`"),
    };
    Item {
        name,
        tag,
        rename_all,
        body,
    }
}

// ------------------------------------------------------------------ codegen

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        None => variant.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => variant.to_lowercase(),
        Some(other) => panic!("serde shim: unsupported rename_all rule `{other}`"),
    }
}

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let fname = &f.name;
        if f.attrs.flatten {
            body.push_str(&format!(
                "match ::serde::Serialize::serialize(&self.{fname}) {{\n\
                 ::serde::Value::Obj(__kvs) => __obj.extend(__kvs),\n\
                 __other => __obj.push((\"{fname}\".to_string(), __other)),\n\
                 }}\n"
            ));
        } else {
            body.push_str(&format!(
                "__obj.push((\"{fname}\".to_string(), ::serde::Serialize::serialize(&self.{fname})));\n"
            ));
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
         {body}\
         ::serde::Value::Obj(__obj)\n\
         }}\n}}\n"
    )
}

fn gen_field_extract(f: &Field, ty_name: &str) -> String {
    let fname = &f.name;
    let on_missing = if f.attrs.default || f.is_option {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{fname}\", \"{ty_name}\"))"
        )
    };
    format!(
        "{fname}: match ::serde::field(__kvs, \"{fname}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
         ::std::option::Option::None => {on_missing},\n\
         }},\n"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.attrs.flatten {
            inits.push_str(&format!(
                "{}: ::serde::Deserialize::deserialize(__v)?,\n",
                f.name
            ));
        } else {
            inits.push_str(&gen_field_extract(f, name));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let __kvs = match __v {{\n\
         ::serde::Value::Obj(__kvs) => __kvs,\n\
         __other => return ::std::result::Result::Err(::serde::DeError::unexpected(\"object for `{name}`\", __other)),\n\
         }};\n\
         let _ = &__kvs;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n}}\n"
    )
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rule = item.rename_all.as_deref();
    let mut arms = String::new();
    match &item.tag {
        None => {
            for v in variants {
                if v.fields.is_some() {
                    panic!(
                        "serde shim: non-unit variant `{}` requires #[serde(tag = …)]",
                        v.name
                    );
                }
                let wire = rename(&v.name, rule);
                arms.push_str(&format!(
                    "{name}::{} => ::serde::Value::Str(\"{wire}\".to_string()),\n",
                    v.name
                ));
            }
        }
        Some(tag) => {
            for v in variants {
                let wire = rename(&v.name, rule);
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{} => ::serde::Value::Obj(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{wire}\".to_string()))]),\n",
                        v.name
                    )),
                    Some(fields) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__obj.push((\"{0}\".to_string(), ::serde::Serialize::serialize({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{wire}\".to_string()))];\n\
                             {pushes}\
                             ::serde::Value::Obj(__obj)\n\
                             }},\n",
                            vn = v.name,
                            binds = bindings.join(", "),
                        ));
                    }
                }
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let rule = item.rename_all.as_deref();
    match &item.tag {
        None => {
            let mut arms = String::new();
            for v in variants {
                let wire = rename(&v.name, rule);
                arms.push_str(&format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{}),\n",
                    v.name
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::unexpected(\"string variant of `{name}`\", __other)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
        Some(tag) => {
            let mut arms = String::new();
            for v in variants {
                let wire = rename(&v.name, rule);
                match &v.fields {
                    None => arms.push_str(&format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{}),\n",
                        v.name
                    )),
                    Some(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&gen_field_extract(f, name));
                        }
                        arms.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n",
                            vn = v.name,
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __kvs = match __v {{\n\
                 ::serde::Value::Obj(__kvs) => __kvs,\n\
                 __other => return ::std::result::Result::Err(::serde::DeError::unexpected(\"object for `{name}`\", __other)),\n\
                 }};\n\
                 let __tag = match ::serde::field(__kvs, \"{tag}\") {{\n\
                 ::std::option::Option::Some(::serde::Value::Str(__s)) => __s.as_str(),\n\
                 _ => return ::std::result::Result::Err(::serde::DeError::missing_field(\"{tag}\", \"{name}\")),\n\
                 }};\n\
                 match __tag {{\n\
                 {arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => gen_struct_ser(&item.name, fields),
        Body::Enum(variants) => gen_enum_ser(&item, variants),
    };
    code.parse()
        .expect("serde shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => gen_struct_de(&item.name, fields),
        Body::Enum(variants) => gen_enum_de(&item, variants),
    };
    code.parse()
        .expect("serde shim: generated Deserialize impl parses")
}
