//! Minimal offline stand-in for the `crossbeam` crate. Provides the
//! `channel` module with MPMC semantics (cloneable `Sender` *and*
//! `Receiver`), bounded and unbounded flavours, and the error types the
//! workspace matches on. Built on `Mutex` + `Condvar`; throughput is far
//! below real crossbeam but semantics (blocking, disconnection) match.

#![allow(clippy::all)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when an item arrives or all senders vanish.
        recv_cv: Condvar,
        /// Signalled when space frees up or all receivers vanish.
        send_cv: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn disconnected_tx(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }
        fn disconnected_rx(&self) -> bool {
            self.receivers.load(Ordering::SeqCst) == 0
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half. Cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Cloneable (MPMC) — any one receiver gets each item.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel buffering at most `cap` in-flight items; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                let _guard = self.shared.queue.lock();
                self.shared.recv_cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.shared.queue.lock();
                self.shared.send_cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.shared.disconnected_rx() {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .shared
                            .send_cv
                            .wait(q)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            self.shared.recv_cv.notify_one();
            Ok(())
        }

        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until an item arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Ok(v);
                }
                if self.shared.disconnected_tx() {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .recv_cv
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Ok(v);
                }
                if self.shared.disconnected_tx() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .recv_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                self.shared.send_cv.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_tx() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap() + rx2.recv().unwrap(), 3);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            t.join().unwrap();
        }

        #[test]
        fn disconnect_surfaces() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn workers_race_for_items() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
