//! Minimal offline stand-in for the `parking_lot` crate, implemented on top
//! of `std::sync`. Only the API surface this workspace uses is provided:
//! poison-free `Mutex`/`RwLock` and a `Condvar` whose `wait`/`wait_for` take
//! the guard by `&mut` (parking_lot style) rather than by value (std style).

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex that ignores poisoning, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so that
/// [`Condvar`] can temporarily take it out during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`] by `&mut`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// A reader-writer lock that ignores poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "worker thread should signal promptly");
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
