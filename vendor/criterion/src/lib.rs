//! Minimal offline stand-in for `criterion`. Provides the structural API the
//! workspace's benches use (`Criterion`, `benchmark_group`, `bench_function`,
//! `iter`, `iter_batched`, `BatchSize`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box`) with naive wall-clock timing:
//! each benchmark runs a fixed small number of iterations and prints a
//! mean. Statistical rigour is out of scope — the point is that `cargo
//! bench` / `cargo test --benches` compile and run offline.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is grouped. Ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            total: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.total = measured;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(iters);
    f(&mut b);
    let mean_ns = b.total.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {label:<48} {mean_ns:>14.0} ns/iter ({iters} iters)");
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self { iters }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            _parent: self,
        }
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// Criterion tunes statistical sample count; the shim reuses it as the
    /// iteration count so heavyweight groups run fewer repetitions.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1).min(self.iters.max(1));
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test --benches` pass harness flags like
            // `--bench`/`--test`; a plain `--test` run should not spin
            // benchmark loops.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut hits = 0u64;
        let mut b = Bencher::new(5);
        b.iter(|| hits += 1);
        assert_eq!(hits, 5);

        let mut batched = 0u64;
        let mut b = Bencher::new(3);
        b.iter_batched(|| 2u64, |x| batched += x, BatchSize::SmallInput);
        assert_eq!(batched, 6);
    }

    #[test]
    fn criterion_api_composes() {
        let mut c = Criterion { iters: 2 };
        c.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("two", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
