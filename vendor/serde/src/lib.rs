//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim uses a concrete
//! value-tree model: [`Serialize`] renders a type into a [`Value`] and
//! [`Deserialize`] rebuilds the type from a `&Value`. `serde_json` (the
//! sibling shim) converts between `Value` and JSON text. The `derive`
//! feature re-exports `#[derive(Serialize, Deserialize)]` proc macros that
//! generate impls against these traits, honouring the attribute subset the
//! workspace uses: `#[serde(default)]`, `#[serde(flatten)]`,
//! `#[serde(tag = "…", rename_all = "snake_case")]`.

#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized form: a JSON-shaped tree. Object keys keep insertion
/// order so serialized field order matches declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up `key` in an object body; used by derive-generated code.
pub fn field<'a>(kvs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self {
            msg: format!("missing field `{field}` in `{ty}`"),
        }
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        Self {
            msg: format!("expected {expected}, got {kind}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`].
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} overflows i64")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(|x| x.serialize()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(|x| x.serialize()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(|x| x.serialize()).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Arr(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(DeError::unexpected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Arr(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(DeError::unexpected("3-element array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

/// Map keys must render to/from strings (JSON object keys).
pub trait MapKey: Sized + Ord {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!("bad integer map key: {s:?}")))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(kvs) => kvs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for a stable wire form.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(kvs) => kvs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(f64::deserialize(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize(&Value::U64(1)).unwrap(), Some(1));
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3usize, 9u64);
        let v = m.serialize();
        assert_eq!(v, Value::Obj(vec![("3".into(), Value::U64(9))]));
        let back: BTreeMap<usize, u64> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_errors_surface() {
        assert!(u64::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::deserialize(&Value::U64(3)).is_err());
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }
}
