//! Minimal offline stand-in for `serde_json`, converting between the serde
//! shim's [`serde::Value`] tree and JSON text. Compact output has no
//! whitespace (`{"k":v}`), pretty output indents by two spaces; object keys
//! keep declaration order.

#![allow(clippy::all)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Error for both serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e)
    }
}

// ----------------------------------------------------------------- writing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{}` on f64 produces the shortest representation that round-trips.
        out.push_str(&f.to_string());
    } else {
        // JSON has no NaN/Inf; serde_json emits null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(kvs) => {
            out.push('{');
            for (i, (k, val)) in kvs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(kvs) if !kvs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in kvs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(kvs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            kvs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(kvs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + (((hi as u32) - 0xD800) << 10)
                                    + ((lo as u32) - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("bad float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| self.err("bad integer"))
                .and_then(|n| {
                    i64::try_from(n)
                        .map(|n| Value::I64(-n))
                        .map_err(|_| self.err("integer overflow"))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::deserialize(&value).map_err(Error::from)
}

/// Parse JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e2").unwrap(), 250.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}💧".to_string();
        let wire = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&wire).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\ud83d\\udca7\"").unwrap(), "💧");
    }

    #[test]
    fn arrays_and_objects() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1}");
        let back: std::collections::BTreeMap<String, u64> = from_str("{ \"a\": 1 }").unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_are_errors() {
        assert!(from_str::<u64>("[1]").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
    }

    #[test]
    fn pretty_prints_indented() {
        let v = vec![1u64];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }
}
