//! Minimal offline stand-in for the `bytes` crate: a cheaply-cloneable
//! immutable byte buffer (`Bytes`), a growable builder (`BytesMut`) and the
//! slice of the `BufMut` trait the workspace's HTTP codec uses.

#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable contiguous bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
        }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: Arc::new(src.to_vec()),
        }
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", String::from_utf8_lossy(&self.data))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self {
            data: Arc::new(s.into_bytes()),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self {
            data: Arc::new(b.into_vec()),
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Append-oriented byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer; `freeze` converts to an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", String::from_utf8_lossy(&self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"ab");
        b.put_u8(b'c');
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn conversions() {
        let from_vec: Bytes = vec![1u8, 2].into();
        let from_str: Bytes = "hi".into();
        let from_static: Bytes = (&b"xy"[..]).into();
        assert_eq!(from_vec.to_vec(), vec![1, 2]);
        assert_eq!(&from_str[..], b"hi");
        assert_eq!(&from_static[..], b"xy");
        assert_eq!(from_str.clone(), from_str);
    }
}
