//! Minimal offline stand-in for the `rand` crate. Deterministic, seedable,
//! and covering the API surface this workspace uses: `StdRng` (xoshiro256**
//! seeded via SplitMix64), the `Rng`/`SeedableRng`/`RngCore` traits with
//! `gen`, `gen_range`, `gen_bool`, and `seq::SliceRandom::shuffle`.
//!
//! Distribution quality is adequate for simulation sampling; it is NOT
//! cryptographically secure (neither is the use here).

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range(self, rng: &mut dyn RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 to spread a 64-bit seed across the 256-bit state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(2.5..9.5);
            assert!((2.5..9.5).contains(&x));
            let n = r.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
