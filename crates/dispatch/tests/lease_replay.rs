//! Property: under random kill points — workers abandoning leases
//! mid-flight and the whole plane crashing and recovering from its WAL —
//! every accepted invocation executes **at least once** and is accounted
//! **exactly once**. This is the pull-mode half of the `accepted ⟹
//! durable` story: a lease is a loan, not a transfer, until the completion
//! record lands.

use iluvatar_core::wal::{self, Wal};
use iluvatar_dispatch::{DispatchConfig, PullPlane};
use iluvatar_sync::{Clock, ManualClock};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TTL: u64 = 500;
const WORKERS: [&str; 2] = ["w0", "w1"];

static CASE: AtomicU64 = AtomicU64::new(0);

fn boot(path: &Path, clock: &Arc<ManualClock>) -> Arc<PullPlane> {
    let st = wal::replay(path).expect("replay");
    let mut cfg = DispatchConfig::pull();
    cfg.lease_ttl_ms = TTL;
    cfg.seed = 11;
    let plane = Arc::new(PullPlane::new(cfg, Arc::clone(clock) as Arc<dyn Clock>));
    for w in WORKERS {
        plane.register_worker(w);
    }
    let walh = Arc::new(Wal::open(path, 10_000).expect("open wal"));
    walh.prime_pending(&st.pending);
    plane.attach_wal(walh);
    plane.recover(&st);
    plane
}

proptest! {
    /// Random interleaving of complete / abandon / clock-advance / crash
    /// steps over a batch of accepted invocations: at-least-once
    /// execution, exactly-once accounting, nothing stranded.
    #[test]
    fn kill_points_preserve_exactly_once_accounting(
        n_tasks in 1usize..16,
        ops in proptest::collection::vec((0usize..4, 0usize..2), 1..60),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "iluvatar-lease-replay-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dispatch.wal");

        let clock = Arc::new(ManualClock::new());
        let mut plane = boot(&path, &clock);
        let mut executed: BTreeMap<u64, u32> = BTreeMap::new();
        let mut accounted: BTreeMap<u64, u32> = BTreeMap::new();
        let mut accepted = Vec::new();
        for i in 0..n_tasks {
            let tenant = if i % 2 == 0 { "a" } else { "b" };
            let id = plane
                .enqueue(&format!("f-{}", i % 5), "{}", Some(tenant))
                .expect("accept");
            accepted.push(id);
        }

        for (action, widx) in ops {
            let w = WORKERS[widx];
            match action {
                // A healthy worker: lease one task, run it, complete it.
                0 => {
                    for l in plane.pull(w, 1) {
                        *executed.entry(l.task.id).or_default() += 1;
                        if plane.complete(l.lease_id, true, "ok", 1) {
                            *accounted.entry(l.task.id).or_default() += 1;
                        }
                    }
                }
                // A doomed worker: lease a task, run it, then die without
                // completing — the TTL must recover it.
                1 => {
                    for l in plane.pull(w, 1) {
                        *executed.entry(l.task.id).or_default() += 1;
                    }
                }
                // Time passes; expired leases requeue.
                2 => {
                    clock.advance(TTL);
                    plane.sweep();
                }
                // The whole plane crashes and recovers from its WAL.
                _ => {
                    drop(plane);
                    plane = boot(&path, &clock);
                }
            }
        }

        // Drain: a healthy worker finishes whatever survives, letting any
        // abandoned leases expire along the way.
        let mut spins = 0;
        while plane.depth() > 0 || plane.live_leases() > 0 {
            for l in plane.pull("w0", 4) {
                *executed.entry(l.task.id).or_default() += 1;
                if plane.complete(l.lease_id, true, "ok", 1) {
                    *accounted.entry(l.task.id).or_default() += 1;
                }
            }
            clock.advance(TTL);
            plane.sweep();
            spins += 1;
            prop_assert!(spins < 10_000, "drain did not converge");
        }

        for id in &accepted {
            let ran = executed.get(id).copied().unwrap_or(0);
            prop_assert!(ran >= 1, "accepted task {id} never executed");
            let acct = accounted.get(id).copied().unwrap_or(0);
            prop_assert!(acct == 1, "task {id} accounted {acct} times, want exactly 1");
        }

        // The durable book agrees: nothing pending after the dust settles.
        let fin = wal::replay(&path).unwrap();
        prop_assert!(
            fin.pending.is_empty(),
            "WAL still holds {} pending invocations",
            fin.pending.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
