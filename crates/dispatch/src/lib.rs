//! Pull-based dispatch plane.
//!
//! The paper's control plane *pushes* every invocation: the balancer picks
//! a worker (CH-BL) and forwards immediately. That works when the load
//! signal is fresh and service times are homogeneous, but under a
//! heavy-tailed execution mix the signal is stale by the time it matters:
//! a long invocation parks behind a hot function's home worker while
//! siblings idle. This crate implements the alternative the Hiku line of
//! work argues for — workers *pull* when they are actually free:
//!
//! * The balancer keeps **central queues**, sharded per home worker (CH
//!   locality: an fqdn's tasks always land in the same shard, so pulls
//!   keep warm-hit affinity) and ordered inside each shard by **priority
//!   class first** (guaranteed before best-effort, from the admission
//!   registry), then by **tenant-weighted DRR** within a class.
//! * Idle workers **lease** batches of tasks (`POST /pull` at the HTTP
//!   layer, [`PullPlane::pull`] underneath). A lease carries a TTL; a
//!   worker that dies mid-lease never strands its tasks — expired leases
//!   are requeued **exactly once** per incarnation, so an accepted
//!   invocation executes at-least-once while accounting stays
//!   exactly-once (a completion for a dead lease is dropped).
//! * A worker whose own shard is empty **steals** from a sibling shard.
//!   Victim selection is seeded ([`DispatchConfig::seed`]) so sessions
//!   replay deterministically. Steals respect the victim's class/DRR
//!   order, so they cannot invert priorities or starve a tenant.
//! * Acceptance is durable: with a WAL attached, `Enqueued` lands before
//!   the caller's accept, leases land as `LeaseIssued`/`LeaseRequeued`
//!   records, and [`PullPlane::recover`] rebuilds the queues from a
//!   replay — in-flight leases come back as queued work.
//!
//! Every transition mirrors onto the canonical telemetry stream as
//! [`TelemetryKind::Lease`] events (`queued`, `issued`, `stolen`,
//! `completed`, `expired`, `requeued`), which the conformance checker's
//! `DispatchModel` audits online.

use iluvatar_admission::{PriorityClass, TenantRegistry};
use iluvatar_core::wal::{PendingInvocation, ReplayState, Wal, WalRecord};
use iluvatar_sync::{Clock, TimeMs};
use iluvatar_telemetry::{TelemetryBus, TelemetryKind};
use parking_lot::{Condvar, Mutex};
use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// How invocations reach workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DispatchMode {
    /// CH-BL push at the balancer — the paper's baseline, and the default
    /// so existing deployments and session digests are untouched.
    #[default]
    Push,
    /// Central queues; workers long-poll leases.
    Pull,
    /// Warm-hit-likely invocations push via CH-BL; the rest spill to the
    /// pull queues.
    Hybrid,
}

impl DispatchMode {
    pub fn name(&self) -> &'static str {
        match self {
            DispatchMode::Push => "push",
            DispatchMode::Pull => "pull",
            DispatchMode::Hybrid => "hybrid",
        }
    }
}

/// Dispatch-plane configuration. Defaults select push mode with the plane
/// fully inert; the `0 = built-in default` convention matches the other
/// subsystem configs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchConfig {
    #[serde(default)]
    pub mode: DispatchMode,
    /// Lease TTL, ms. 0 selects the built-in default of 2 000.
    #[serde(default)]
    pub lease_ttl_ms: u64,
    /// Max leases per pull. 0 selects the built-in default of 4.
    #[serde(default)]
    pub max_batch: usize,
    /// Disable work stealing (stealing is on by default).
    #[serde(default)]
    pub disable_steal: bool,
    /// Seed for victim selection, so steal order replays deterministically.
    #[serde(default)]
    pub seed: u64,
    /// Hybrid: an fqdn completed anywhere within this window counts as
    /// warm-hit-likely and is pushed via CH-BL. 0 selects 30 000.
    #[serde(default)]
    pub warm_window_ms: u64,
}

impl DispatchConfig {
    /// A pull-mode config with built-in defaults.
    pub fn pull() -> Self {
        Self {
            mode: DispatchMode::Pull,
            ..Default::default()
        }
    }

    /// A hybrid-mode config with built-in defaults.
    pub fn hybrid() -> Self {
        Self {
            mode: DispatchMode::Hybrid,
            ..Default::default()
        }
    }

    pub fn effective_lease_ttl_ms(&self) -> u64 {
        if self.lease_ttl_ms == 0 {
            2_000
        } else {
            self.lease_ttl_ms
        }
    }

    pub fn effective_max_batch(&self) -> usize {
        if self.max_batch == 0 {
            4
        } else {
            self.max_batch
        }
    }

    pub fn effective_warm_window_ms(&self) -> u64 {
        if self.warm_window_ms == 0 {
            30_000
        } else {
            self.warm_window_ms
        }
    }

    pub fn steal_enabled(&self) -> bool {
        !self.disable_steal
    }
}

/// One queued invocation, as the plane tracks it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PullTask {
    pub id: u64,
    pub fqdn: String,
    #[serde(default)]
    pub args: String,
    #[serde(default)]
    pub tenant: Option<String>,
    /// Tenant weight at enqueue time (DRR share within the class).
    pub weight: f64,
    pub class: PriorityClass,
    pub enqueued_at_ms: TimeMs,
}

impl PullTask {
    fn tenant_key(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }
}

/// A granted lease: the worker owns `task` until `expires_at_ms`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lease {
    pub lease_id: u64,
    /// The holder.
    pub worker: String,
    pub expires_at_ms: TimeMs,
    /// The shard the task was stolen from, when not the holder's own.
    #[serde(default)]
    pub stolen_from: Option<String>,
    pub task: PullTask,
}

/// A completed task's caller-visible result, held for [`PullPlane::wait`].
#[derive(Debug, Clone)]
pub struct TaskResult {
    pub ok: bool,
    pub body: String,
    pub exec_ms: u64,
    /// The worker whose lease completed the task.
    pub worker: String,
}

/// Monotone counters for `/metrics` and session digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounters {
    pub queued: u64,
    pub issued: u64,
    pub stolen: u64,
    pub completed: u64,
    pub expired: u64,
    pub requeued: u64,
    /// Completions that arrived after their lease expired — the work ran,
    /// but accounting already moved to the requeued incarnation.
    pub dead_completions: u64,
}

/// Why an enqueue was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueError {
    /// The WAL could not make the acceptance durable.
    NotDurable,
    /// No worker shard is registered to home the task.
    NoWorkers,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::NotDurable => write!(f, "acceptance could not be made durable"),
            EnqueueError::NoWorkers => write!(f, "no pull workers registered"),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-tenant-weighted FIFO set for one priority class: classic DRR with a
/// unit task cost, so a weight-2 tenant drains twice as fast as a weight-1
/// sibling while both are backlogged. Deterministic: tenants are visited
/// in sorted order from a persistent cursor.
#[derive(Default)]
struct ClassQueue {
    queues: BTreeMap<String, VecDeque<PullTask>>,
    deficits: BTreeMap<String, f64>,
    weights: BTreeMap<String, f64>,
    cursor: usize,
    len: usize,
}

impl ClassQueue {
    fn push_back(&mut self, task: PullTask) {
        let t = task.tenant_key().to_string();
        self.weights.insert(t.clone(), task.weight.max(0.05));
        self.queues.entry(t).or_default().push_back(task);
        self.len += 1;
    }

    /// Requeue an expired lease's task at the front of its tenant lane so
    /// it does not lose its place behind later arrivals.
    fn push_front(&mut self, task: PullTask) {
        let t = task.tenant_key().to_string();
        self.weights.insert(t.clone(), task.weight.max(0.05));
        self.queues.entry(t).or_default().push_front(task);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<PullTask> {
        if self.len == 0 {
            return None;
        }
        loop {
            let active: Vec<String> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| t.clone())
                .collect();
            debug_assert!(!active.is_empty());
            let t = active[self.cursor % active.len()].clone();
            let d = self.deficits.entry(t.clone()).or_insert(0.0);
            if *d >= 1.0 {
                *d -= 1.0;
                let q = self.queues.get_mut(&t).expect("active tenant");
                let task = q.pop_front().expect("non-empty lane");
                if q.is_empty() {
                    // Classic DRR: an emptied lane forfeits its deficit.
                    self.deficits.insert(t, 0.0);
                }
                self.len -= 1;
                return Some(task);
            }
            *d += self.weights.get(&t).copied().unwrap_or(1.0);
            self.cursor = self.cursor.wrapping_add(1);
        }
    }
}

/// One worker's home shard: guaranteed class drains strictly before
/// best-effort.
#[derive(Default)]
struct Shard {
    guaranteed: ClassQueue,
    best_effort: ClassQueue,
}

impl Shard {
    fn class_mut(&mut self, c: PriorityClass) -> &mut ClassQueue {
        match c {
            PriorityClass::Guaranteed => &mut self.guaranteed,
            PriorityClass::BestEffort => &mut self.best_effort,
        }
    }

    fn pop(&mut self) -> Option<PullTask> {
        self.guaranteed.pop().or_else(|| self.best_effort.pop())
    }

    fn len(&self) -> usize {
        self.guaranteed.len + self.best_effort.len
    }
}

struct LiveLease {
    task: PullTask,
    worker: String,
    expires_at_ms: TimeMs,
}

struct Inner {
    /// Registered shards, name-sorted (the home hash indexes this order).
    workers: Vec<String>,
    shards: BTreeMap<String, Shard>,
    leases: BTreeMap<u64, LiveLease>,
    results: BTreeMap<u64, TaskResult>,
    /// Hybrid warm signal: fqdn → (last worker, last completion time).
    warm: BTreeMap<String, (String, TimeMs)>,
    next_task: u64,
    next_lease: u64,
    rng: StdRng,
    counters: DispatchCounters,
}

/// The central pull plane: queues, lease manager, and steal policy. One
/// instance serves a whole balancer; all state sits behind one mutex.
pub struct PullPlane {
    cfg: DispatchConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
    /// Signals new queued work (long-poll pulls wait here).
    work_cv: Condvar,
    /// Signals completed tasks ([`PullPlane::wait`] waits here).
    done_cv: Condvar,
    telemetry: OnceLock<Arc<TelemetryBus>>,
    registry: OnceLock<Arc<TenantRegistry>>,
    wal: OnceLock<Arc<Wal>>,
}

impl PullPlane {
    pub fn new(cfg: DispatchConfig, clock: Arc<dyn Clock>) -> Self {
        let seed = cfg.seed;
        Self {
            cfg,
            clock,
            inner: Mutex::new(Inner {
                workers: Vec::new(),
                shards: BTreeMap::new(),
                leases: BTreeMap::new(),
                results: BTreeMap::new(),
                warm: BTreeMap::new(),
                next_task: 1,
                next_lease: 1,
                rng: StdRng::seed_from_u64(seed ^ 0xD15_9A7C4),
                counters: DispatchCounters::default(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            telemetry: OnceLock::new(),
            registry: OnceLock::new(),
            wal: OnceLock::new(),
        }
    }

    pub fn mode(&self) -> DispatchMode {
        self.cfg.mode
    }

    pub fn config(&self) -> &DispatchConfig {
        &self.cfg
    }

    /// Attach the canonical telemetry bus (first caller wins).
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    /// Attach the admission registry used to resolve tenant weight and
    /// priority class at enqueue time (first caller wins).
    pub fn set_registry(&self, reg: Arc<TenantRegistry>) {
        let _ = self.registry.set(reg);
    }

    /// Attach the acceptance WAL: `Enqueued` must land before an enqueue
    /// is admitted, and lease transitions journal as lease records (first
    /// caller wins).
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    fn emit(&self, id: u64, tenant: Option<&str>, kind: TelemetryKind) {
        if let Some(bus) = self.telemetry.get() {
            bus.emit(Some(id), tenant, kind);
        }
    }

    fn lease_kind(op: &str, worker: &str) -> TelemetryKind {
        TelemetryKind::Lease {
            op: op.to_string(),
            worker: worker.to_string(),
            expires_at_ms: None,
            class: None,
        }
    }

    /// Register one worker's home shard. Idempotent.
    pub fn register_worker(&self, name: &str) {
        let mut inner = self.inner.lock();
        if !inner.workers.iter().any(|w| w == name) {
            inner.workers.push(name.to_string());
            inner.workers.sort();
            inner.shards.entry(name.to_string()).or_default();
        }
    }

    fn home_of(workers: &[String], fqdn: &str) -> String {
        workers[(fnv64(fqdn) % workers.len() as u64) as usize].clone()
    }

    /// Accept one invocation into the pull queues. Returns the task id the
    /// caller can [`PullPlane::wait`] on. With a WAL attached the
    /// acceptance is durable-before-admitted; a failed append refuses the
    /// task ([`EnqueueError::NotDurable`]) so `accepted ⟹ durable` holds
    /// in pull mode exactly as it does on the push path.
    pub fn enqueue(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<u64, EnqueueError> {
        let now = self.clock.now_ms();
        let (weight, class) = match self.registry.get() {
            Some(reg) => {
                let t = tenant.unwrap_or("default");
                (reg.weight_of(t), reg.class_of(t))
            }
            None => (1.0, PriorityClass::default()),
        };
        let id = {
            let mut inner = self.inner.lock();
            if inner.workers.is_empty() {
                return Err(EnqueueError::NoWorkers);
            }
            let id = inner.next_task;
            inner.next_task += 1;
            let task = PullTask {
                id,
                fqdn: fqdn.to_string(),
                args: args.to_string(),
                tenant: tenant.map(str::to_string),
                weight,
                class,
                enqueued_at_ms: now,
            };
            if let Some(wal) = self.wal.get() {
                let rec = WalRecord::Enqueued {
                    inv: PendingInvocation {
                        id,
                        fqdn: fqdn.to_string(),
                        args: args.to_string(),
                        tenant: tenant.map(str::to_string),
                        tenant_weight: weight,
                        arrived_at: now,
                        expected_exec_ms: 0.0,
                        iat_ms: 0.0,
                        expect_warm: false,
                        dequeued: false,
                    },
                };
                if !wal.append(&rec).accepted() {
                    return Err(EnqueueError::NotDurable);
                }
            }
            // Emit before the task becomes pullable (still under the lock):
            // a concurrent puller's "issued" must never reach the bus ahead
            // of this "queued", or online conformance checking would see an
            // issue for a task it never saw enter the queue.
            self.emit(
                id,
                task.tenant.as_deref(),
                TelemetryKind::Lease {
                    op: "queued".into(),
                    worker: String::new(),
                    expires_at_ms: None,
                    class: Some(class.name().to_string()),
                },
            );
            let home = Self::home_of(&inner.workers, fqdn);
            inner
                .shards
                .get_mut(&home)
                .expect("shard")
                .class_mut(class)
                .push_back(task.clone());
            inner.counters.queued += 1;
            id
        };
        self.work_cv.notify_all();
        Ok(id)
    }

    /// Requeue expired leases (exactly once per incarnation). Returns the
    /// events for the caller to emit *before releasing the lock*, so the
    /// bus order matches the state-machine order other pullers observe.
    fn expire_locked(
        &self,
        inner: &mut Inner,
        now: TimeMs,
    ) -> Vec<(u64, Option<String>, TelemetryKind)> {
        let dead: Vec<u64> = inner
            .leases
            .iter()
            .filter(|(_, l)| l.expires_at_ms <= now)
            .map(|(&id, _)| id)
            .collect();
        let mut events = Vec::new();
        for lease_id in dead {
            let lease = inner.leases.remove(&lease_id).expect("live lease");
            let task = lease.task;
            events.push((
                task.id,
                task.tenant.clone(),
                Self::lease_kind("expired", &lease.worker),
            ));
            if let Some(wal) = self.wal.get() {
                let _ = wal.append(&WalRecord::LeaseRequeued { id: task.id });
            }
            let home = Self::home_of(&inner.workers, &task.fqdn);
            let class = task.class;
            events.push((
                task.id,
                task.tenant.clone(),
                Self::lease_kind("requeued", ""),
            ));
            inner
                .shards
                .get_mut(&home)
                .expect("shard")
                .class_mut(class)
                .push_front(task);
            inner.counters.expired += 1;
            inner.counters.requeued += 1;
        }
        events
    }

    /// Pop up to `max` tasks for `worker`: own shard first (class order,
    /// DRR within class), then — with stealing on and the own shard empty —
    /// a seeded victim among non-empty sibling shards.
    pub fn pull(&self, worker: &str, max: usize) -> Vec<Lease> {
        let now = self.clock.now_ms();
        let max = if max == 0 {
            self.cfg.effective_max_batch()
        } else {
            max.min(self.cfg.effective_max_batch())
        };
        let ttl = self.cfg.effective_lease_ttl_ms();
        let mut events = Vec::new();
        let leases = {
            let mut inner = self.inner.lock();
            events.extend(self.expire_locked(&mut inner, now));
            if !inner.shards.contains_key(worker) {
                // An unregistered puller gets nothing (and steals nothing) —
                // but any expiries it just swept still reach the bus.
                for (id, tenant, kind) in events {
                    self.emit(id, tenant.as_deref(), kind);
                }
                return Vec::new();
            }
            let mut granted = Vec::new();
            while granted.len() < max {
                let (task, stolen_from) = {
                    match inner.shards.get_mut(worker).expect("shard").pop() {
                        Some(t) => (t, None),
                        None if self.cfg.steal_enabled() => {
                            let victims: Vec<String> = inner
                                .shards
                                .iter()
                                .filter(|(name, s)| name.as_str() != worker && s.len() > 0)
                                .map(|(name, _)| name.clone())
                                .collect();
                            if victims.is_empty() {
                                break;
                            }
                            let v = victims[inner.rng.gen_range(0..victims.len())].clone();
                            match inner.shards.get_mut(&v).expect("victim").pop() {
                                Some(t) => (t, Some(v)),
                                None => break,
                            }
                        }
                        None => break,
                    }
                };
                let lease_id = inner.next_lease;
                inner.next_lease += 1;
                let expires_at_ms = now + ttl;
                if let Some(wal) = self.wal.get() {
                    let _ = wal.append(&WalRecord::LeaseIssued {
                        id: task.id,
                        worker: worker.to_string(),
                        expires_at_ms,
                    });
                }
                if let Some(victim) = &stolen_from {
                    inner.counters.stolen += 1;
                    events.push((
                        task.id,
                        task.tenant.clone(),
                        Self::lease_kind("stolen", victim),
                    ));
                }
                inner.counters.issued += 1;
                events.push((
                    task.id,
                    task.tenant.clone(),
                    TelemetryKind::Lease {
                        op: "issued".into(),
                        worker: worker.to_string(),
                        expires_at_ms: Some(expires_at_ms),
                        class: Some(task.class.name().to_string()),
                    },
                ));
                inner.leases.insert(
                    lease_id,
                    LiveLease {
                        task: task.clone(),
                        worker: worker.to_string(),
                        expires_at_ms,
                    },
                );
                granted.push(Lease {
                    lease_id,
                    worker: worker.to_string(),
                    expires_at_ms,
                    stolen_from,
                    task,
                });
            }
            // Under the lock: a requeued task pushed front above is already
            // visible to the next puller, whose "issued" must not beat this
            // call's "expired"/"requeued" onto the bus.
            for (id, tenant, kind) in events {
                self.emit(id, tenant.as_deref(), kind);
            }
            granted
        };
        leases
    }

    /// Long-poll variant of [`PullPlane::pull`]: blocks up to `timeout_ms`
    /// for work to arrive.
    pub fn pull_wait(&self, worker: &str, max: usize, timeout_ms: u64) -> Vec<Lease> {
        let deadline = std::time::Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            let got = self.pull(worker, max);
            if !got.is_empty() {
                return got;
            }
            let mut inner = self.inner.lock();
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Vec::new();
            }
            // Re-check depth under the lock (a task may have landed between
            // the failed pull and here), then sleep for a bounded slice so
            // injected-clock lease expiry is still polled.
            let depth: usize = inner.shards.values().map(Shard::len).sum();
            if depth == 0 {
                let slice = remaining.min(Duration::from_millis(50));
                let _ = self.work_cv.wait_for(&mut inner, slice);
            }
        }
    }

    /// Complete a live lease. Returns false (and counts a dead completion)
    /// when the lease already expired — the requeued incarnation owns the
    /// accounting — or was never issued.
    pub fn complete(&self, lease_id: u64, ok: bool, body: &str, exec_ms: u64) -> bool {
        let now = self.clock.now_ms();
        let mut events = Vec::new();
        let accepted = {
            let mut inner = self.inner.lock();
            events.extend(self.expire_locked(&mut inner, now));
            let accepted = match inner.leases.remove(&lease_id) {
                Some(lease) => {
                    let task = lease.task;
                    if let Some(wal) = self.wal.get() {
                        let _ = wal.append(&WalRecord::Completed {
                            id: task.id,
                            ok,
                            tenant: task.tenant.clone(),
                        });
                    }
                    inner.counters.completed += 1;
                    inner
                        .warm
                        .insert(task.fqdn.clone(), (lease.worker.clone(), now));
                    events.push((
                        task.id,
                        task.tenant.clone(),
                        Self::lease_kind("completed", &lease.worker),
                    ));
                    inner.results.insert(
                        task.id,
                        TaskResult {
                            ok,
                            body: body.to_string(),
                            exec_ms,
                            worker: lease.worker,
                        },
                    );
                    true
                }
                None => {
                    inner.counters.dead_completions += 1;
                    false
                }
            };
            for (id, tenant, kind) in events.drain(..) {
                self.emit(id, tenant.as_deref(), kind);
            }
            accepted
        };
        if accepted {
            self.done_cv.notify_all();
        }
        accepted
    }

    /// Block until `task_id` completes (or the timeout lapses), consuming
    /// the result.
    pub fn wait(&self, task_id: u64, timeout_ms: u64) -> Option<TaskResult> {
        let deadline = std::time::Instant::now() + Duration::from_millis(timeout_ms);
        let mut inner = self.inner.lock();
        loop {
            if let Some(r) = inner.results.remove(&task_id) {
                return Some(r);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let slice = remaining.min(Duration::from_millis(50));
            let _ = self.done_cv.wait_for(&mut inner, slice);
        }
    }

    /// Run one expiry sweep at the injected clock's now (sessions under a
    /// manual clock call this after advancing time; live deployments get
    /// sweeps for free on every pull/complete).
    pub fn sweep(&self) {
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        let events = self.expire_locked(&mut inner, now);
        let woke = !events.is_empty();
        drop(inner);
        for (id, tenant, kind) in events {
            self.emit(id, tenant.as_deref(), kind);
        }
        if woke {
            self.work_cv.notify_all();
        }
    }

    /// Hybrid routing signal: the worker that completed `fqdn` within the
    /// warm window, if any.
    pub fn warm_target(&self, fqdn: &str) -> Option<String> {
        let now = self.clock.now_ms();
        let window = self.cfg.effective_warm_window_ms();
        let inner = self.inner.lock();
        inner.warm.get(fqdn).and_then(|(w, at)| {
            if now.saturating_sub(*at) < window {
                Some(w.clone())
            } else {
                None
            }
        })
    }

    /// Record a push-path completion so hybrid mode keeps routing the fqdn
    /// warm-side.
    pub fn note_warm(&self, fqdn: &str, worker: &str) {
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        inner
            .warm
            .insert(fqdn.to_string(), (worker.to_string(), now));
    }

    /// Per-priority-class queue depths, class-name-sorted — the `/status`
    /// and autoscaler signal.
    pub fn depths(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock();
        let mut g = 0u64;
        let mut b = 0u64;
        for s in inner.shards.values() {
            g += s.guaranteed.len as u64;
            b += s.best_effort.len as u64;
        }
        vec![
            ("best_effort".to_string(), b),
            ("guaranteed".to_string(), g),
        ]
    }

    /// Per-shard backlog, worker-sorted.
    pub fn shard_depths(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock();
        inner
            .shards
            .iter()
            .map(|(w, s)| (w.clone(), s.len() as u64))
            .collect()
    }

    /// Total queued (not leased) tasks.
    pub fn depth(&self) -> u64 {
        self.inner
            .lock()
            .shards
            .values()
            .map(|s| s.len() as u64)
            .sum()
    }

    /// Leases currently live (issued, neither completed nor expired).
    pub fn live_leases(&self) -> u64 {
        self.inner.lock().leases.len() as u64
    }

    pub fn counters(&self) -> DispatchCounters {
        self.inner.lock().counters
    }

    /// Rebuild the queues from a WAL replay: every accepted-but-incomplete
    /// invocation is requeued — including those that died mid-lease
    /// (`dequeued` in the replayed book), which is exactly the
    /// crashed-plane half of the at-least-once story. Task-id minting
    /// resumes above the replayed maximum.
    pub fn recover(&self, replay: &ReplayState) {
        let now = self.clock.now_ms();
        let mut events = Vec::new();
        {
            let mut inner = self.inner.lock();
            inner.next_task = inner.next_task.max(replay.max_id + 1);
            for inv in &replay.pending {
                let (weight, class) = match self.registry.get() {
                    Some(reg) => {
                        let t = inv.tenant.as_deref().unwrap_or("default");
                        (reg.weight_of(t), reg.class_of(t))
                    }
                    None => (inv.tenant_weight, PriorityClass::default()),
                };
                let task = PullTask {
                    id: inv.id,
                    fqdn: inv.fqdn.clone(),
                    args: inv.args.clone(),
                    tenant: inv.tenant.clone(),
                    weight,
                    class,
                    enqueued_at_ms: now,
                };
                let home = Self::home_of(&inner.workers, &inv.fqdn);
                events.push((
                    task.id,
                    task.tenant.clone(),
                    TelemetryKind::Lease {
                        op: "queued".into(),
                        worker: String::new(),
                        expires_at_ms: None,
                        class: Some(class.name().to_string()),
                    },
                ));
                inner
                    .shards
                    .get_mut(&home)
                    .expect("shard")
                    .class_mut(class)
                    .push_back(task);
                inner.counters.queued += 1;
            }
        }
        for (id, tenant, kind) in events {
            self.emit(id, tenant.as_deref(), kind);
        }
        self.work_cv.notify_all();
    }
}

/// Where a pull loop gets its leases — the plane directly (in-process) or
/// an HTTP client against the balancer's `/pull` routes.
pub trait LeaseSource: Send + Sync {
    fn pull(&self, worker: &str, max: usize) -> Vec<Lease>;
    fn complete(&self, lease_id: u64, ok: bool, body: &str, exec_ms: u64) -> bool;
}

impl LeaseSource for PullPlane {
    fn pull(&self, worker: &str, max: usize) -> Vec<Lease> {
        PullPlane::pull(self, worker, max)
    }

    fn complete(&self, lease_id: u64, ok: bool, body: &str, exec_ms: u64) -> bool {
        PullPlane::complete(self, lease_id, ok, body, exec_ms)
    }
}

/// The worker-side pull loop: a thread that leases batches and runs them
/// through an executor closure. `stop` drains cleanly (finishes held
/// leases); `kill` abandons them mid-flight — the crash the lease TTL
/// exists for.
pub struct PullLoop {
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The executor a [`PullLoop`] drives: returns (ok, body, exec_ms).
pub type TaskExecutor = dyn Fn(&PullTask) -> (bool, String, u64) + Send + Sync;

impl PullLoop {
    pub fn spawn(
        source: Arc<dyn LeaseSource>,
        worker: String,
        batch: usize,
        poll: Duration,
        exec: Arc<TaskExecutor>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let kill2 = Arc::clone(&kill);
        let handle = std::thread::Builder::new()
            .name(format!("pull-{worker}"))
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    let leases = source.pull(&worker, batch);
                    if leases.is_empty() {
                        std::thread::sleep(poll);
                        continue;
                    }
                    for lease in leases {
                        if kill2.load(Ordering::Acquire) {
                            // Crashed: the lease is simply never completed.
                            return;
                        }
                        let (ok, body, exec_ms) = exec(&lease.task);
                        if kill2.load(Ordering::Acquire) {
                            return;
                        }
                        source.complete(lease.lease_id, ok, &body, exec_ms);
                    }
                }
            })
            .expect("spawn pull loop");
        Self {
            stop,
            kill,
            handle: Some(handle),
        }
    }

    /// Finish held leases, then exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Die mid-flight: held leases are abandoned and must expire.
    pub fn kill(mut self) {
        self.kill.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PullLoop {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::ManualClock;
    use iluvatar_telemetry::{TelemetrySink, VecSink};

    fn plane_with(cfg: DispatchConfig) -> (Arc<PullPlane>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let plane = Arc::new(PullPlane::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>));
        (plane, clock)
    }

    #[test]
    fn enqueue_without_workers_is_refused() {
        let (plane, _) = plane_with(DispatchConfig::pull());
        assert_eq!(
            plane.enqueue("f-1", "{}", None),
            Err(EnqueueError::NoWorkers)
        );
    }

    #[test]
    fn pull_complete_roundtrip() {
        let (plane, _) = plane_with(DispatchConfig::pull());
        plane.register_worker("w0");
        let id = plane.enqueue("f-1", "{\"x\":1}", Some("acme")).unwrap();
        let leases = plane.pull("w0", 8);
        assert_eq!(leases.len(), 1);
        let l = &leases[0];
        assert_eq!(l.task.id, id);
        assert_eq!(l.worker, "w0");
        assert!(l.stolen_from.is_none());
        assert_eq!(plane.live_leases(), 1);
        assert!(plane.complete(l.lease_id, true, "r", 7));
        assert_eq!(plane.live_leases(), 0);
        let r = plane.wait(id, 10).expect("result");
        assert!(r.ok);
        assert_eq!(r.body, "r");
        assert_eq!(r.worker, "w0");
        let c = plane.counters();
        assert_eq!((c.queued, c.issued, c.completed), (1, 1, 1));
        assert_eq!(
            (c.stolen, c.expired, c.requeued, c.dead_completions),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn guaranteed_class_drains_first() {
        use iluvatar_admission::TenantSpec;
        let (plane, clock) = plane_with(DispatchConfig::pull());
        plane.register_worker("w0");
        let reg = Arc::new(TenantRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>));
        reg.upsert(TenantSpec::new("gold").with_class(PriorityClass::Guaranteed));
        plane.set_registry(reg);
        plane.enqueue("f-1", "{}", Some("plebs")).unwrap();
        plane.enqueue("f-1", "{}", Some("plebs")).unwrap();
        let gold = plane.enqueue("f-1", "{}", Some("gold")).unwrap();
        let first = &plane.pull("w0", 1)[0];
        assert_eq!(first.task.id, gold, "guaranteed jumps the line");
    }

    #[test]
    fn drr_weights_share_within_a_class() {
        use iluvatar_admission::TenantSpec;
        let (plane, clock) = plane_with(DispatchConfig::pull());
        plane.register_worker("w0");
        let reg = Arc::new(TenantRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>));
        reg.upsert(TenantSpec::new("heavy").with_weight(2.0));
        reg.upsert(TenantSpec::new("light").with_weight(1.0));
        plane.set_registry(reg);
        for _ in 0..30 {
            plane.enqueue("f-1", "{}", Some("heavy")).unwrap();
            plane.enqueue("f-1", "{}", Some("light")).unwrap();
        }
        // Drain the first 30 — both tenants stay backlogged throughout.
        let mut heavy = 0;
        for _ in 0..30 {
            let l = &plane.pull("w0", 1)[0];
            if l.task.tenant.as_deref() == Some("heavy") {
                heavy += 1;
            }
            plane.complete(l.lease_id, true, "", 0);
        }
        assert!(
            (18..=22).contains(&heavy),
            "weight-2 tenant should take ~2/3 of the drain, got {heavy}/30"
        );
    }

    #[test]
    fn idle_worker_steals_and_selection_is_seeded() {
        let run = |seed: u64| {
            let mut cfg = DispatchConfig::pull();
            cfg.seed = seed;
            let (plane, _) = plane_with(cfg);
            // Three shards; all of f-*'s tasks home onto a subset, w-idle
            // pulls with an empty shard and must steal.
            for w in ["w-a", "w-b", "w-idle"] {
                plane.register_worker(w);
            }
            let mut victims = Vec::new();
            for i in 0..12 {
                plane.enqueue(&format!("f-{i}"), "{}", None).unwrap();
            }
            loop {
                let leases = plane.pull("w-idle", 1);
                if leases.is_empty() {
                    break;
                }
                for l in leases {
                    if let Some(v) = &l.stolen_from {
                        victims.push(v.clone());
                    }
                    plane.complete(l.lease_id, true, "", 0);
                }
            }
            victims
        };
        let a = run(7);
        assert!(!a.is_empty(), "an idle worker must steal");
        assert_eq!(a, run(7), "same seed, same victim sequence");
        let c = plane_counters_after_steal();
        assert!(c.stolen > 0);
    }

    fn plane_counters_after_steal() -> DispatchCounters {
        let (plane, _) = plane_with(DispatchConfig::pull());
        plane.register_worker("w-a");
        plane.register_worker("w-idle");
        for i in 0..4 {
            plane.enqueue(&format!("f-{i}"), "{}", None).unwrap();
        }
        loop {
            let leases = plane.pull("w-idle", 4);
            if leases.is_empty() {
                break;
            }
            for l in leases {
                plane.complete(l.lease_id, true, "", 0);
            }
        }
        plane.counters()
    }

    #[test]
    fn stealing_can_be_disabled() {
        let mut cfg = DispatchConfig::pull();
        cfg.disable_steal = true;
        let (plane, _) = plane_with(cfg);
        plane.register_worker("w-a");
        plane.register_worker("w-idle");
        for i in 0..6 {
            plane.enqueue(&format!("f-{i}"), "{}", None).unwrap();
        }
        let own: usize = plane.pull("w-a", 4).len();
        assert!(own > 0);
        // Whatever w-idle's own shard holds it may pull; nothing stolen.
        for l in plane.pull("w-idle", 8) {
            assert!(l.stolen_from.is_none());
        }
        assert_eq!(plane.counters().stolen, 0);
    }

    #[test]
    fn expired_lease_requeues_exactly_once_and_dead_completion_is_dropped() {
        let mut cfg = DispatchConfig::pull();
        cfg.lease_ttl_ms = 100;
        let (plane, clock) = plane_with(cfg);
        plane.register_worker("w0");
        let bus = TelemetryBus::new("plane", Arc::clone(&clock) as Arc<dyn Clock>);
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        plane.set_telemetry(bus);

        let id = plane.enqueue("f-1", "{}", None).unwrap();
        let l1 = plane.pull("w0", 1).remove(0);
        clock.advance(100); // TTL lapses
        plane.sweep();
        assert_eq!(plane.live_leases(), 0);
        assert_eq!(plane.depth(), 1, "requeued");
        // The dead worker's completion must not double-account.
        assert!(!plane.complete(l1.lease_id, true, "late", 9));
        assert!(plane.wait(id, 10).is_none());
        // A healthy worker serves the requeued incarnation.
        let l2 = plane.pull("w0", 1).remove(0);
        assert_eq!(l2.task.id, id);
        assert!(plane.complete(l2.lease_id, true, "good", 5));
        assert_eq!(plane.wait(id, 10).unwrap().body, "good");
        let c = plane.counters();
        assert_eq!((c.expired, c.requeued, c.dead_completions), (1, 1, 1));
        assert_eq!(c.completed, 1, "exactly-once accounting");
        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "lease:queued",
                "lease:issued",
                "lease:expired",
                "lease:requeued",
                "lease:issued",
                "lease:completed"
            ]
        );
    }

    #[test]
    fn wal_replay_requeues_inflight_leases() {
        use iluvatar_core::wal;
        let dir =
            std::env::temp_dir().join(format!("iluvatar-dispatch-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plane.wal");

        let (plane, _) = plane_with(DispatchConfig::pull());
        plane.register_worker("w0");
        plane.attach_wal(Arc::new(Wal::open(&path, 1_000).unwrap()));
        let done = plane.enqueue("f-1", "{}", Some("a")).unwrap();
        let leased = plane.enqueue("f-2", "{}", Some("a")).unwrap();
        let queued = plane.enqueue("f-3", "{}", Some("b")).unwrap();
        // Complete one, lease-but-don't-complete the second, leave the third.
        let mut done_lease = None;
        let mut seen = 0;
        while seen < 2 {
            for l in plane.pull("w0", 1) {
                seen += 1;
                if l.task.id == done {
                    done_lease = Some(l.lease_id);
                }
            }
        }
        plane.complete(done_lease.expect("f-1 leased first (FIFO)"), true, "", 0);
        drop(plane); // crash the plane

        let st = wal::replay(&path).unwrap();
        assert_eq!(st.pending.len(), 2);
        let (plane2, _) = plane_with(DispatchConfig::pull());
        plane2.register_worker("w0");
        let wal2 = Arc::new(Wal::open(&path, 1_000).unwrap());
        wal2.prime_pending(&st.pending);
        plane2.attach_wal(wal2);
        plane2.recover(&st);
        assert_eq!(plane2.depth(), 2, "leased + queued both came back");
        let mut ids = Vec::new();
        loop {
            let leases = plane2.pull("w0", 4);
            if leases.is_empty() {
                break;
            }
            for l in leases {
                ids.push(l.task.id);
                assert!(plane2.complete(l.lease_id, true, "", 0));
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![leased, queued]);
        // Fresh ids mint above everything the log ever saw.
        let fresh = plane2.enqueue("f-9", "{}", None).unwrap();
        assert!(fresh > queued);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hybrid_warm_window_tracks_completions() {
        let mut cfg = DispatchConfig::hybrid();
        cfg.warm_window_ms = 1_000;
        let (plane, clock) = plane_with(cfg);
        plane.register_worker("w0");
        assert_eq!(plane.warm_target("f-1"), None, "never seen: spill to pull");
        let id = plane.enqueue("f-1", "{}", None).unwrap();
        let l = plane.pull("w0", 1).remove(0);
        plane.complete(l.lease_id, true, "", 0);
        let _ = plane.wait(id, 10);
        assert_eq!(plane.warm_target("f-1").as_deref(), Some("w0"));
        clock.advance(1_000);
        assert_eq!(plane.warm_target("f-1"), None, "window lapsed");
        plane.note_warm("f-2", "w9");
        assert_eq!(plane.warm_target("f-2").as_deref(), Some("w9"));
    }

    #[test]
    fn pull_loop_executes_and_kill_abandons_leases() {
        use iluvatar_sync::SystemClock;
        let mut cfg = DispatchConfig::pull();
        cfg.lease_ttl_ms = 150;
        let plane = Arc::new(PullPlane::new(cfg, SystemClock::shared()));
        plane.register_worker("w0");
        plane.register_worker("w1");
        let exec: Arc<TaskExecutor> = Arc::new(|t: &PullTask| (true, format!("ran:{}", t.fqdn), 1));
        let lp0 = PullLoop::spawn(
            Arc::clone(&plane) as Arc<dyn LeaseSource>,
            "w0".into(),
            2,
            Duration::from_millis(5),
            Arc::clone(&exec),
        );
        let id = plane.enqueue("f-1", "{}", None).unwrap();
        let r = plane.wait(id, 5_000).expect("loop completes the task");
        assert_eq!(r.body, "ran:f-1");
        lp0.stop();

        // A killed loop abandons its lease; the TTL recovers the task and a
        // healthy sibling serves it.
        let slow: Arc<TaskExecutor> = Arc::new(|_t: &PullTask| {
            std::thread::sleep(Duration::from_millis(400));
            (true, "slow".into(), 1)
        });
        let lp_dead = PullLoop::spawn(
            Arc::clone(&plane) as Arc<dyn LeaseSource>,
            "w0".into(),
            1,
            Duration::from_millis(5),
            slow,
        );
        let id2 = plane.enqueue("f-1", "{}", None).unwrap();
        // Let the doomed loop take the lease, then kill it mid-execution.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while plane.live_leases() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        lp_dead.kill();
        let lp1 = PullLoop::spawn(
            Arc::clone(&plane) as Arc<dyn LeaseSource>,
            "w1".into(),
            1,
            Duration::from_millis(5),
            exec,
        );
        let r2 = plane.wait(id2, 5_000).expect("sibling serves after expiry");
        assert_eq!(r2.worker, "w1");
        lp1.stop();
        let c = plane.counters();
        assert!(c.expired >= 1 && c.requeued >= 1);
    }

    #[test]
    fn long_poll_wakes_on_enqueue() {
        use iluvatar_sync::SystemClock;
        let plane = Arc::new(PullPlane::new(
            DispatchConfig::pull(),
            SystemClock::shared(),
        ));
        plane.register_worker("w0");
        let p2 = Arc::clone(&plane);
        let waiter = std::thread::spawn(move || p2.pull_wait("w0", 1, 5_000));
        std::thread::sleep(Duration::from_millis(30));
        plane.enqueue("f-1", "{}", None).unwrap();
        let got = waiter.join().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn config_serde_defaults_to_push() {
        let cfg: DispatchConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg.mode, DispatchMode::Push);
        assert!(cfg.steal_enabled());
        assert_eq!(cfg.effective_lease_ttl_ms(), 2_000);
        assert_eq!(cfg.effective_max_batch(), 4);
        assert_eq!(cfg.effective_warm_window_ms(), 30_000);
        let json = serde_json::to_string(&DispatchConfig::pull()).unwrap();
        let back: DispatchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mode, DispatchMode::Pull);
    }
}
