//! The canonical event: one tagged enum for every subsystem's telemetry.

use iluvatar_sync::TimeMs;
use serde::{Deserialize, Serialize};

/// What happened. One tagged enum across the whole control plane; each
/// variant carries only the fields that are not correlation metadata
/// (those live on [`TelemetryEvent`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TelemetryKind {
    /// A worker hot-path trace stage; `stage` is the stable
    /// `TraceEventKind::label()` string (`ingested`, `enqueued`,
    /// `container_acquired(true)`, `result_returned(false)`, …).
    Trace { stage: String },
    /// A record appended to the queue write-ahead log; `op` is the
    /// record's tag (`enqueued`, `dequeued`, `completed`, `shed`,
    /// `snapshot`). The optional fields mirror the record payload so a
    /// conformance checker can drive reference models (DRR, WAL) from the
    /// event stream alone: `cost_ms`/`weight` ride `enqueued`, `ok` rides
    /// `completed`, `throttled` rides `shed`.
    Wal {
        op: String,
        #[serde(default)]
        cost_ms: Option<f64>,
        #[serde(default)]
        weight: Option<f64>,
        #[serde(default)]
        ok: Option<bool>,
        #[serde(default)]
        throttled: Option<bool>,
    },
    /// The write-ahead log was poisoned (crash simulation / kill).
    WalPoisoned,
    /// A WAL I/O health transition: `op` is `retry`, `rotate`, `compact`,
    /// `fsync_error`, `stall_shed`, `degraded`, or `rearmed`. Distinct
    /// from [`TelemetryKind::Wal`], which mirrors logical records — this
    /// stream reports how the disk underneath them is behaving.
    WalIo { op: String },
    /// A worker lifecycle transition: `running`, `draining`, `stopped`,
    /// `killed`, `recovered`.
    Lifecycle { state: String },
    /// The balancer dispatched an invocation to `target`.
    Dispatch { target: String },
    /// The balancer re-dispatched after a mid-call failure.
    Reroute { from: String, to: String },
    /// A circuit-breaker transition for `target`: `closed`, `open`,
    /// `half_open`.
    Breaker { target: String, state: String },
    /// Cluster membership changed: `change` is `attach`, `detach`, or
    /// `draining`.
    Membership { target: String, change: String },
    /// The fleet applied a scaling decision.
    Scale {
        direction: String,
        reason: String,
        from: u64,
        to: u64,
    },
    /// A result-cache operation: `op` is `hit`, `miss`, `fill`, `evict`,
    /// `expire`, or `invalidate`; `key` is the idempotency key
    /// (`fqdn@tenant#arghash`). `expires_at_ms` rides `fill` so stream
    /// consumers (the conformance checker) can audit TTL legality of later
    /// hits without the cache's internal state.
    Cache {
        op: String,
        key: String,
        #[serde(default)]
        expires_at_ms: Option<u64>,
    },
    /// A pull-dispatch lease transition: `op` is `queued`, `issued`,
    /// `stolen`, `completed`, `expired`, or `requeued`; `worker` is the
    /// holder (the victim shard for `stolen`, empty for `queued` and
    /// `requeued`). `expires_at_ms` rides `issued` so stream consumers can
    /// audit expiry legality; `class` (priority-class name) rides `queued`
    /// and `issued` so the conformance model can bound starvation.
    Lease {
        op: String,
        worker: String,
        #[serde(default)]
        expires_at_ms: Option<u64>,
        #[serde(default)]
        class: Option<String>,
    },
    /// The chaos harness fired an injected fault at `site`.
    Fault { site: String },
    /// A flight-recorder snapshot was frozen (`reason`: `kill`, `drain`,
    /// `fault:<site>`, …).
    RecorderSnapshot { reason: String },
}

impl TelemetryKind {
    /// A WAL event with no payload mirror (tests, emitters that only need
    /// the op tag).
    pub fn wal(op: impl Into<String>) -> Self {
        TelemetryKind::Wal {
            op: op.into(),
            cost_ms: None,
            weight: None,
            ok: None,
            throttled: None,
        }
    }

    /// Stable, timestamp-free label — the unit of deterministic digests
    /// and of the [`crate::CounterBridge`] counter keys.
    pub fn label(&self) -> String {
        match self {
            TelemetryKind::Trace { stage } => format!("trace:{stage}"),
            TelemetryKind::Wal { op, .. } => format!("wal:{op}"),
            TelemetryKind::WalPoisoned => "wal_poisoned".into(),
            TelemetryKind::WalIo { op } => format!("wal_io:{op}"),
            TelemetryKind::Lifecycle { state } => format!("lifecycle:{state}"),
            TelemetryKind::Dispatch { .. } => "dispatch".into(),
            TelemetryKind::Reroute { .. } => "reroute".into(),
            TelemetryKind::Breaker { state, .. } => format!("breaker:{state}"),
            TelemetryKind::Membership { change, .. } => format!("membership:{change}"),
            TelemetryKind::Scale { direction, .. } => format!("scale:{direction}"),
            TelemetryKind::Cache { op, .. } => format!("cache:{op}"),
            TelemetryKind::Lease { op, .. } => format!("lease:{op}"),
            TelemetryKind::Fault { site } => format!("fault:{site}"),
            TelemetryKind::RecorderSnapshot { .. } => "recorder_snapshot".into(),
        }
    }
}

/// One canonical telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Monotone per-source sequence number, starting at 1.
    pub seq: u64,
    /// Injected-clock timestamp, ms.
    pub at_ms: TimeMs,
    /// The emitting source (worker name, `lb`, `fleet`, `chaos`, …).
    pub source: String,
    /// The invocation this event belongs to, when there is one.
    #[serde(default)]
    pub trace_id: Option<u64>,
    /// The tenant label, when known at the emission site.
    #[serde(default)]
    pub tenant: Option<String>,
    #[serde(flatten)]
    pub kind: TelemetryKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
            TelemetryKind::wal("enqueued"),
            TelemetryKind::WalPoisoned,
            TelemetryKind::Lifecycle {
                state: "draining".into(),
            },
            TelemetryKind::Dispatch {
                target: "w0".into(),
            },
            TelemetryKind::Reroute {
                from: "w0".into(),
                to: "w1".into(),
            },
            TelemetryKind::Breaker {
                target: "w0".into(),
                state: "open".into(),
            },
            TelemetryKind::Membership {
                target: "w2".into(),
                change: "attach".into(),
            },
            TelemetryKind::Scale {
                direction: "up".into(),
                reason: "burst".into(),
                from: 1,
                to: 3,
            },
            TelemetryKind::Cache {
                op: "hit".into(),
                key: "f-1@gold#00".into(),
                expires_at_ms: None,
            },
            TelemetryKind::Fault {
                site: "invoke_error".into(),
            },
            TelemetryKind::RecorderSnapshot {
                reason: "kill".into(),
            },
            TelemetryKind::WalIo {
                op: "rotate".into(),
            },
            TelemetryKind::Lease {
                op: "issued".into(),
                worker: "w0".into(),
                expires_at_ms: Some(2_000),
                class: Some("best_effort".into()),
            },
        ];
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels collide: {labels:?}");
        assert_eq!(labels[0], "trace:ingested");
        assert_eq!(labels[9], "cache:hit");
        assert_eq!(labels[10], "fault:invoke_error");
        assert_eq!(labels[12], "wal_io:rotate");
        assert_eq!(labels[13], "lease:issued");
    }

    #[test]
    fn event_serde_roundtrip() {
        let ev = TelemetryEvent {
            seq: 42,
            at_ms: 1234,
            source: "w0".into(),
            trace_id: Some(99),
            tenant: Some("gold".into()),
            kind: TelemetryKind::Breaker {
                target: "w1".into(),
                state: "half_open".into(),
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"kind\":\"breaker\""), "json: {json}");
        let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn optional_correlation_fields_default() {
        let ev = TelemetryEvent {
            seq: 1,
            at_ms: 0,
            source: "lb".into(),
            trace_id: None,
            tenant: None,
            kind: TelemetryKind::Dispatch {
                target: "w0".into(),
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace_id, None);
        assert_eq!(back.tenant, None);
    }
}
