//! The flight recorder: a lock-sharded bounded ring of recent events.
//!
//! Kept always-on (recording is one shard lock plus a ring push), the
//! recorder answers "what were the last N things this component did?"
//! at the moment something went wrong. [`FlightRecorder::dump`] returns
//! the live tail; [`FlightRecorder::snapshot`] freezes a copy — the
//! worker snapshots on kill/drain, and the chaos harness snapshots on
//! every injected fault so post-mortems see the events *leading up to*
//! the fault, not the state minutes later.

use crate::event::TelemetryEvent;
use crate::sink::TelemetrySink;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Shards for the recorder's rings (power of two). Sharding by sequence
/// number keeps concurrent emitters off each other's locks; the dump
/// re-sorts, so shard assignment never leaks into what callers see.
const SHARDS: usize = 8;

/// Most frozen snapshots retained; older ones age out first.
const MAX_SNAPSHOTS: usize = 16;

/// A frozen copy of the recorder's tail at an interesting moment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Why the snapshot was taken (`kill`, `drain`, `fault:<site>`, …).
    pub reason: String,
    /// The recorder tail at freeze time, oldest first.
    pub events: Vec<TelemetryEvent>,
}

/// Wire form of `GET /debug/flightrecorder`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightDump {
    /// Ring capacity (events retained per source at most).
    pub capacity: usize,
    /// The live tail, oldest first.
    pub events: Vec<TelemetryEvent>,
    /// Frozen snapshots, oldest first.
    pub snapshots: Vec<FlightSnapshot>,
}

struct Shard {
    ring: Mutex<VecDeque<TelemetryEvent>>,
}

/// Lock-sharded bounded ring of the last ~`capacity` events.
pub struct FlightRecorder {
    shards: Vec<Shard>,
    per_shard: usize,
    snapshots: Mutex<VecDeque<FlightSnapshot>>,
}

impl FlightRecorder {
    /// A recorder retaining roughly `capacity` recent events.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    ring: Mutex::new(VecDeque::with_capacity(per_shard)),
                })
                .collect(),
            per_shard,
            snapshots: Mutex::new(VecDeque::new()),
        }
    }

    /// Events retained at most (across all shards).
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// The live tail, globally ordered oldest-first by `(at_ms, source,
    /// seq)` — shard assignment never shows.
    pub fn dump(&self) -> Vec<TelemetryEvent> {
        let mut out: Vec<TelemetryEvent> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.ring.lock().iter().cloned());
        }
        out.sort_by(|a, b| (a.at_ms, &a.source, a.seq).cmp(&(b.at_ms, &b.source, b.seq)));
        out
    }

    /// Freeze the current tail under `reason`. Callers that own a bus
    /// should follow up with a `RecorderSnapshot` marker event so the
    /// stream itself records when dumps happened.
    pub fn snapshot(&self, reason: &str) -> FlightSnapshot {
        let snap = FlightSnapshot {
            reason: reason.to_string(),
            events: self.dump(),
        };
        let mut snaps = self.snapshots.lock();
        if snaps.len() == MAX_SNAPSHOTS {
            snaps.pop_front();
        }
        snaps.push_back(snap.clone());
        snap
    }

    /// Frozen snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<FlightSnapshot> {
        self.snapshots.lock().iter().cloned().collect()
    }

    /// The full wire dump for `GET /debug/flightrecorder`.
    pub fn wire_dump(&self) -> FlightDump {
        FlightDump {
            capacity: self.capacity(),
            events: self.dump(),
            snapshots: self.snapshots(),
        }
    }
}

impl TelemetrySink for FlightRecorder {
    fn emit(&self, ev: &TelemetryEvent) {
        let shard = &self.shards[(ev.seq as usize) & (SHARDS - 1)];
        let mut ring = shard.ring.lock();
        if ring.len() == self.per_shard {
            ring.pop_front();
        }
        ring.push_back(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryKind;

    fn ev(seq: u64, at_ms: u64) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            at_ms,
            source: "w0".into(),
            trace_id: None,
            tenant: None,
            kind: TelemetryKind::Trace {
                stage: format!("s{seq}"),
            },
        }
    }

    #[test]
    fn dump_is_globally_ordered_across_shards() {
        let r = FlightRecorder::new(64);
        // Emit out of timestamp order; seqs hit different shards.
        for (seq, at) in [(3u64, 30u64), (1, 10), (8, 80), (2, 20), (5, 50)] {
            r.emit(&ev(seq, at));
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 5);
        let times: Vec<u64> = dump.iter().map(|e| e.at_ms).collect();
        assert_eq!(times, vec![10, 20, 30, 50, 80]);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let r = FlightRecorder::new(16);
        for seq in 1..=1000u64 {
            r.emit(&ev(seq, seq));
        }
        let dump = r.dump();
        assert!(dump.len() <= r.capacity(), "len {}", dump.len());
        // The most recent event always survives.
        assert!(dump.iter().any(|e| e.seq == 1000));
        // Ancient ones have aged out.
        assert!(!dump.iter().any(|e| e.seq == 1));
    }

    #[test]
    fn snapshots_freeze_the_tail_and_age_out() {
        let r = FlightRecorder::new(32);
        r.emit(&ev(1, 1));
        let snap = r.snapshot("fault:invoke_error");
        assert_eq!(snap.reason, "fault:invoke_error");
        assert_eq!(snap.events.len(), 1);
        // Later events do not rewrite the frozen copy.
        r.emit(&ev(2, 2));
        assert_eq!(r.snapshots()[0].events.len(), 1);
        for i in 0..(MAX_SNAPSHOTS + 5) {
            r.snapshot(&format!("s{i}"));
        }
        assert_eq!(r.snapshots().len(), MAX_SNAPSHOTS);
        let dump = r.wire_dump();
        assert_eq!(dump.capacity, r.capacity());
        let json = serde_json::to_string(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back.snapshots.len(), MAX_SNAPSHOTS);
        assert_eq!(back.events.len(), 2);
    }
}
