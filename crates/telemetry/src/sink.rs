//! Pluggable sinks: where the canonical stream lands.

use crate::event::TelemetryEvent;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;

/// A consumer of the canonical stream. Implementations must be cheap and
/// non-blocking: `emit` runs on the hot path of whatever emitted.
pub trait TelemetrySink: Send + Sync {
    fn emit(&self, ev: &TelemetryEvent);
}

/// An unbounded in-memory collector, for tests and deterministic session
/// digests.
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl VecSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything collected so far, in arrival order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TelemetrySink for VecSink {
    fn emit(&self, ev: &TelemetryEvent) {
        self.events.lock().push(ev.clone());
    }
}

/// JSON-lines to any writer — one `TelemetryEvent` per line, the offline
/// replay format the ROADMAP's conformance checking consumes.
pub struct JsonlSink<W: Write + Send + 'static> {
    out: Mutex<W>,
}

impl<W: Write + Send + 'static> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Flush and hand back the writer (for tests inspecting a buffer).
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write + Send + 'static> TelemetrySink for JsonlSink<W> {
    fn emit(&self, ev: &TelemetryEvent) {
        let line = serde_json::to_string(ev).unwrap_or_default();
        let mut out = self.out.lock();
        // Telemetry must never take down the component it observes:
        // swallow write errors (disk full, closed pipe).
        let _ = writeln!(out, "{line}");
    }
}

/// Per-kind (and per-tenant) event counters, bridged into the Prometheus
/// exposition as `iluvatar_telemetry_events_total{kind,tenant}`.
#[derive(Default)]
pub struct CounterBridge {
    /// `(kind label, tenant-or-empty) → count`. BTreeMap for a stable
    /// render order.
    counts: Mutex<BTreeMap<(String, String), u64>>,
}

impl CounterBridge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorted `(kind, tenant, count)` tuples for exposition.
    pub fn counts(&self) -> Vec<(String, String, u64)> {
        self.counts
            .lock()
            .iter()
            .map(|((k, t), &c)| (k.clone(), t.clone(), c))
            .collect()
    }

    /// Total events seen across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.lock().values().sum()
    }
}

impl TelemetrySink for CounterBridge {
    fn emit(&self, ev: &TelemetryEvent) {
        let tenant = ev.tenant.clone().unwrap_or_default();
        *self
            .counts
            .lock()
            .entry((ev.kind.label(), tenant))
            .or_default() += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryKind;

    fn ev(seq: u64, tenant: Option<&str>, kind: TelemetryKind) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            at_ms: seq * 10,
            source: "w0".into(),
            trace_id: Some(seq),
            tenant: tenant.map(str::to_string),
            kind,
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.emit(&ev(
            1,
            None,
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        ));
        sink.emit(&ev(2, Some("t"), TelemetryKind::wal("enqueued")));
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: TelemetryEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back.seq, 1);
        let back: TelemetryEvent = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back.tenant.as_deref(), Some("t"));
    }

    #[test]
    fn counter_bridge_counts_by_kind_and_tenant() {
        let b = CounterBridge::new();
        b.emit(&ev(
            1,
            Some("a"),
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        ));
        b.emit(&ev(
            2,
            Some("a"),
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        ));
        b.emit(&ev(
            3,
            Some("b"),
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        ));
        b.emit(&ev(4, None, TelemetryKind::WalPoisoned));
        let counts = b.counts();
        assert_eq!(
            counts,
            vec![
                ("trace:ingested".to_string(), "a".to_string(), 2),
                ("trace:ingested".to_string(), "b".to_string(), 1),
                ("wal_poisoned".to_string(), String::new(), 1),
            ]
        );
        assert_eq!(b.total(), 4);
    }
}
