//! Canonical telemetry event stream for the Ilúvatar control plane.
//!
//! §5 of the paper asks for "a single consistent view of the system
//! performance". Before this crate existed the repo had four disjoint
//! event streams — the worker's `TraceJournal`, the queue write-ahead log,
//! the load balancer's dispatch/fleet journals, and the chaos injector's
//! fault log — none of which could be correlated or replayed together.
//!
//! This crate defines the one event type they all now emit:
//! [`TelemetryEvent`], a tagged enum ([`TelemetryKind`]) stamped with a
//! monotone per-source sequence number, an injected-clock timestamp, and
//! `trace_id`/`tenant`/`worker` correlation fields. Components publish
//! through a [`TelemetryBus`], which fans events out to pluggable
//! [`TelemetrySink`]s:
//!
//! * [`FlightRecorder`] — a lock-sharded bounded ring of the last N
//!   events, dumpable on crash/drain/fault (`GET /debug/flightrecorder`),
//!   with frozen [`FlightSnapshot`]s taken automatically by the chaos
//!   harness on every injected fault;
//! * [`JsonlSink`] — JSON-lines to any `io::Write`, for offline replay;
//! * [`CounterBridge`] — per-kind (and per-tenant) counters bridged into
//!   the Prometheus exposition;
//! * [`VecSink`] — an unbounded collector for tests and the deterministic
//!   `telemetry_session` digest.
//!
//! Ordering contract: `seq` is strictly monotone *per source* (per bus).
//! Events from different sources — or from different threads of one
//! source — interleave nondeterministically; deterministic digests must
//! therefore fold per-trace event sequences (ordered, keyed by
//! `trace_id`) and per-kind counts, never the raw cross-trace order.

pub mod event;
pub mod recorder;
pub mod sink;

pub use event::{TelemetryEvent, TelemetryKind};
pub use recorder::{FlightDump, FlightRecorder, FlightSnapshot};
pub use sink::{CounterBridge, JsonlSink, TelemetrySink, VecSink};

use iluvatar_sync::Clock;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A per-source publication point: stamps events with a monotone sequence
/// number and the injected clock, then fans them out to every attached
/// sink.
///
/// One bus per source (worker, balancer, fleet, chaos harness). Emitting
/// with no sinks attached costs one atomic increment and one `RwLock`
/// read, so components keep their bus always-on.
pub struct TelemetryBus {
    source: String,
    clock: Arc<dyn Clock>,
    seq: AtomicU64,
    sinks: RwLock<Vec<Arc<dyn TelemetrySink>>>,
}

impl TelemetryBus {
    pub fn new(source: impl Into<String>, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            source: source.into(),
            clock,
            seq: AtomicU64::new(0),
            sinks: RwLock::new(Vec::new()),
        })
    }

    /// The source label stamped on every event from this bus.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Attach a sink; it receives every event emitted from now on.
    pub fn add_sink(&self, sink: Arc<dyn TelemetrySink>) {
        self.sinks.write().push(sink);
    }

    /// The sequence number of the most recently emitted event (0 before
    /// the first emit). This is what crosses HTTP hops in the
    /// `X-Iluvatar-Seq` header, letting a client order its observation
    /// against the source's stream.
    pub fn latest_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Stamp and publish one event.
    pub fn emit(&self, trace_id: Option<u64>, tenant: Option<&str>, kind: TelemetryKind) {
        let ev = TelemetryEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            at_ms: self.clock.now_ms(),
            source: self.source.clone(),
            trace_id,
            tenant: tenant.map(str::to_string),
            kind,
        };
        for sink in self.sinks.read().iter() {
            sink.emit(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::ManualClock;

    fn bus() -> (Arc<TelemetryBus>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::starting_at(100));
        let b = TelemetryBus::new("w0", Arc::clone(&clock) as Arc<dyn Clock>);
        (b, clock)
    }

    #[test]
    fn seq_is_monotone_and_clock_stamped() {
        let (b, clock) = bus();
        let sink = Arc::new(VecSink::new());
        b.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        b.emit(
            Some(7),
            None,
            TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        );
        clock.advance(5);
        b.emit(
            Some(7),
            Some("t0"),
            TelemetryKind::Trace {
                stage: "enqueued".into(),
            },
        );
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[1].seq), (1, 2));
        assert_eq!((evs[0].at_ms, evs[1].at_ms), (100, 105));
        assert_eq!(evs[0].source, "w0");
        assert_eq!(evs[1].tenant.as_deref(), Some("t0"));
        assert_eq!(b.latest_seq(), 2);
    }

    #[test]
    fn emit_without_sinks_is_a_cheap_noop() {
        let (b, _) = bus();
        for _ in 0..1000 {
            b.emit(
                None,
                None,
                TelemetryKind::Lifecycle {
                    state: "running".into(),
                },
            );
        }
        assert_eq!(b.latest_seq(), 1000);
    }

    #[test]
    fn sinks_attached_late_miss_earlier_events() {
        let (b, _) = bus();
        b.emit(
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "running".into(),
            },
        );
        let sink = Arc::new(VecSink::new());
        b.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        b.emit(
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "draining".into(),
            },
        );
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].seq, 2);
    }
}
