//! The reactive and concurrency-target controllers, plus the shared
//! cooldown bookkeeping every controller uses.

use crate::{FleetObservation, ScalingDecision, ScalingPolicy};
use iluvatar_sync::MovingWindow;
use serde::{Deserialize, Serialize};

/// Asymmetric scale-up / scale-down cooldowns on observation time.
///
/// Scale-down is additionally gated on the *scale-up* timestamp: a fleet
/// that just grew must age `down_ms` before any shrink, which is the
/// classic anti-flap guard (grow fast, shrink slow).
#[derive(Debug, Clone)]
pub struct Cooldowns {
    up_ms: u64,
    down_ms: u64,
    last_up: Option<u64>,
    last_down: Option<u64>,
}

impl Cooldowns {
    pub fn new(up_ms: u64, down_ms: u64) -> Self {
        Self {
            up_ms,
            down_ms,
            last_up: None,
            last_down: None,
        }
    }

    pub fn allow_up(&self, now_ms: u64) -> bool {
        self.last_up
            .map(|t| now_ms.saturating_sub(t) >= self.up_ms)
            .unwrap_or(true)
    }

    pub fn allow_down(&self, now_ms: u64) -> bool {
        let since_down = self
            .last_down
            .map(|t| now_ms.saturating_sub(t) >= self.down_ms)
            .unwrap_or(true);
        let since_up = self
            .last_up
            .map(|t| now_ms.saturating_sub(t) >= self.down_ms)
            .unwrap_or(true);
        since_down && since_up
    }

    pub fn note_up(&mut self, now_ms: u64) {
        self.last_up = Some(now_ms);
    }

    pub fn note_down(&mut self, now_ms: u64) {
        self.last_down = Some(now_ms);
    }
}

/// Reactive queue-delay controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// Queue-delay setpoint, ms.
    pub target_queue_delay_ms: f64,
    /// Hysteresis band as a fraction of the target: no decision while the
    /// signal sits inside `target × [1 − band, 1 + band]`.
    pub hysteresis_band: f64,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        Self {
            target_queue_delay_ms: 100.0,
            hysteresis_band: 0.5,
        }
    }
}

/// (a) Reactive queue-delay target with hysteresis bands and cooldowns.
///
/// The signal is the mean per-worker queue delay. Above the upper band the
/// fleet grows proportionally to the overshoot; below the lower band it
/// shrinks by one. Inside the band: hold. Both directions respect their
/// cooldowns, and a shrink never follows a grow within the down cooldown.
pub struct ReactiveQueueDelayPolicy {
    cfg: ReactiveConfig,
    cooldowns: Cooldowns,
    max_step: usize,
}

impl ReactiveQueueDelayPolicy {
    pub fn new(cfg: ReactiveConfig, cooldowns: Cooldowns, max_step: usize) -> Self {
        Self {
            cfg,
            cooldowns,
            max_step: max_step.max(1),
        }
    }
}

impl ScalingPolicy for ReactiveQueueDelayPolicy {
    fn name(&self) -> &'static str {
        "reactive-queue-delay"
    }

    fn evaluate(&mut self, obs: &FleetObservation) -> ScalingDecision {
        let target = self.cfg.target_queue_delay_ms.max(1.0);
        let band = self.cfg.hysteresis_band.clamp(0.0, 1.0);
        let signal = obs.mean_queue_delay_ms;
        let upper = target * (1.0 + band);
        let lower = target * (1.0 - band);
        if signal > upper {
            if !self.cooldowns.allow_up(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            // Proportional overshoot: delay at 2× the upper band asks for
            // one extra worker per live worker, clamped to the step bound.
            let overshoot = (signal / upper - 1.0).max(0.0);
            let add =
                ((obs.live.max(1) as f64 * overshoot).ceil() as usize).clamp(1, self.max_step);
            self.cooldowns.note_up(obs.now_ms);
            return ScalingDecision::ScaleUp {
                add,
                reason: "queue_delay_high",
            };
        }
        if signal < lower {
            // Never shrink while a queue is still standing: a draining
            // backlog with a momentarily idle dequeue path is not idleness.
            if obs.total_queued() > 0 || !self.cooldowns.allow_down(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            self.cooldowns.note_down(obs.now_ms);
            return ScalingDecision::ScaleDown {
                remove: 1,
                reason: "queue_delay_low",
            };
        }
        ScalingDecision::Hold
    }
}

/// Concurrency-target controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencyTargetConfig {
    /// Desired average in-flight invocations per worker.
    pub target_per_worker: f64,
    /// Sliding window length, in observations, that the in-flight average
    /// smooths over.
    pub window: usize,
}

impl Default for ConcurrencyTargetConfig {
    fn default() -> Self {
        Self {
            target_per_worker: 8.0,
            window: 6,
        }
    }
}

/// (b) Knative-style concurrency-target averaging over a sliding window.
///
/// Tracks total in-flight work (queued + running) in a [`MovingWindow`];
/// the desired fleet is `ceil(window mean ÷ target_per_worker)`. The fleet
/// steps toward the desired size at most `max_step` workers per decision,
/// growing on the raw desire but shrinking only when the desire has fallen
/// a *full worker* below the current size (implicit hysteresis: a desire
/// of `live − 0.2` never drains anyone).
pub struct ConcurrencyTargetPolicy {
    cfg: ConcurrencyTargetConfig,
    cooldowns: Cooldowns,
    max_step: usize,
    window: MovingWindow,
}

impl ConcurrencyTargetPolicy {
    pub fn new(cfg: ConcurrencyTargetConfig, cooldowns: Cooldowns, max_step: usize) -> Self {
        let window = MovingWindow::new(cfg.window.max(1));
        Self {
            cfg,
            cooldowns,
            max_step: max_step.max(1),
            window,
        }
    }
}

impl ScalingPolicy for ConcurrencyTargetPolicy {
    fn name(&self) -> &'static str {
        "concurrency-target"
    }

    fn evaluate(&mut self, obs: &FleetObservation) -> ScalingDecision {
        self.window.push(obs.in_flight() as f64);
        let target = self.cfg.target_per_worker.max(0.001);
        let desired_raw = self.window.mean() / target;
        let desired = desired_raw.ceil().max(1.0) as usize;
        let live = obs.live.max(1);
        if desired > live {
            if !self.cooldowns.allow_up(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            let add = (desired - live).min(self.max_step);
            self.cooldowns.note_up(obs.now_ms);
            return ScalingDecision::ScaleUp {
                add,
                reason: "concurrency_high",
            };
        }
        // Hysteresis on the way down: require the *raw* desire to sit a
        // full worker under the current size, so sizes straddling a
        // ceil() boundary don't flap.
        if desired_raw < (live - 1) as f64 && live > 1 {
            if obs.total_queued() > 0 || !self.cooldowns.allow_down(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            let remove = (live - desired.max(1)).min(self.max_step).max(1);
            self.cooldowns.note_down(obs.now_ms);
            return ScalingDecision::ScaleDown {
                remove,
                reason: "concurrency_low",
            };
        }
        ScalingDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScalingDecision as D;

    fn obs(now_ms: u64, live: usize, delay: f64, queued: u64) -> FleetObservation {
        FleetObservation {
            now_ms,
            live,
            mean_queue_delay_ms: delay,
            max_queue_delay_ms: delay as u64,
            queued,
            running: 0,
            concurrency_limit: 8,
            ..Default::default()
        }
    }

    #[test]
    fn reactive_holds_inside_the_band() {
        let mut p = ReactiveQueueDelayPolicy::new(
            ReactiveConfig {
                target_queue_delay_ms: 100.0,
                hysteresis_band: 0.5,
            },
            Cooldowns::new(0, 0),
            2,
        );
        for d in [51.0, 100.0, 149.0] {
            assert_eq!(
                p.evaluate(&obs(0, 2, d, 0)),
                D::Hold,
                "delay {d} is in-band"
            );
        }
    }

    #[test]
    fn reactive_scales_up_proportionally_and_down_by_one() {
        let mut p = ReactiveQueueDelayPolicy::new(
            ReactiveConfig {
                target_queue_delay_ms: 100.0,
                hysteresis_band: 0.5,
            },
            Cooldowns::new(0, 0),
            4,
        );
        match p.evaluate(&obs(0, 2, 400.0, 9)) {
            D::ScaleUp { add, reason } => {
                assert!(add >= 2, "2.7× overshoot with 2 live asks ≥2, got {add}");
                assert_eq!(reason, "queue_delay_high");
            }
            other => panic!("expected ScaleUp, got {other:?}"),
        }
        match p.evaluate(&obs(1_000, 4, 1.0, 0)) {
            D::ScaleDown { remove: 1, reason } => assert_eq!(reason, "queue_delay_low"),
            other => panic!("expected ScaleDown, got {other:?}"),
        }
    }

    #[test]
    fn reactive_never_shrinks_over_a_standing_queue() {
        let mut p =
            ReactiveQueueDelayPolicy::new(ReactiveConfig::default(), Cooldowns::new(0, 0), 2);
        assert_eq!(p.evaluate(&obs(0, 3, 0.0, 5)), D::Hold);
    }

    #[test]
    fn cooldowns_gate_both_directions() {
        let mut cd = Cooldowns::new(1_000, 5_000);
        assert!(cd.allow_up(0));
        cd.note_up(0);
        assert!(!cd.allow_up(500));
        assert!(cd.allow_up(1_000));
        // The up at t=0 also delays the first down to t=5000.
        assert!(!cd.allow_down(4_999));
        assert!(cd.allow_down(5_000));
        cd.note_down(5_000);
        assert!(!cd.allow_down(9_999));
        assert!(cd.allow_down(10_000));
    }

    fn cobs(now_ms: u64, live: usize, in_flight: u64) -> FleetObservation {
        FleetObservation {
            now_ms,
            live,
            running: in_flight,
            concurrency_limit: 8,
            ..Default::default()
        }
    }

    #[test]
    fn concurrency_target_steps_toward_desired() {
        let mut p = ConcurrencyTargetPolicy::new(
            ConcurrencyTargetConfig {
                target_per_worker: 10.0,
                window: 1,
            },
            Cooldowns::new(0, 0),
            2,
        );
        // 45 in flight at 10/worker wants 5 workers; from 1, step-bound 2.
        match p.evaluate(&cobs(0, 1, 45)) {
            D::ScaleUp { add: 2, .. } => {}
            other => panic!("expected ScaleUp by 2, got {other:?}"),
        }
        // Idle long enough for the window to drain → shrink.
        let mut shrank = false;
        for i in 1..=6 {
            if let D::ScaleDown { .. } = p.evaluate(&cobs(i * 1_000, 5, 0)) {
                shrank = true;
                break;
            }
        }
        assert!(shrank, "idle fleet must eventually shrink");
    }

    #[test]
    fn concurrency_target_has_downward_hysteresis() {
        let mut p = ConcurrencyTargetPolicy::new(
            ConcurrencyTargetConfig {
                target_per_worker: 10.0,
                window: 1,
            },
            Cooldowns::new(0, 0),
            2,
        );
        // Desire 2.1 workers with 3 live: under by less than a full
        // worker → hold, not flap.
        assert_eq!(p.evaluate(&cobs(0, 3, 21)), D::Hold);
        // Desire 1.0 with 3 live: a full worker under → shrink.
        match p.evaluate(&cobs(1_000, 3, 10)) {
            D::ScaleDown { .. } => {}
            other => panic!("expected ScaleDown, got {other:?}"),
        }
    }
}
