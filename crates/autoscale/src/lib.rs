//! Elastic-fleet scaling policies.
//!
//! Ilúvatar's worker-centric control plane (§3) keeps per-worker overhead
//! flat, but a *fixed* fleet still overflows queues under bursts and burns
//! idle memory in quiet periods. This crate decides, from live load
//! observations, when the fleet should grow or shrink; the load balancer's
//! `Fleet` manager applies those decisions (spawn + HalfOpen probe on the
//! way up, graceful drain on the way down — never a kill).
//!
//! Three pluggable controllers implement [`ScalingPolicy`]:
//!
//! * [`ReactiveQueueDelayPolicy`] — classic threshold control on the
//!   cluster queue delay, with a hysteresis band and asymmetric
//!   scale-up/scale-down cooldowns (the off-by-default default).
//! * [`ConcurrencyTargetPolicy`] — Knative-style: average total in-flight
//!   work over a sliding window, divide by a per-worker concurrency
//!   target, and step the fleet toward that desired size.
//! * [`MpcPolicy`] — an MPC-lite receding-horizon controller: per-function
//!   arrival forecasts (the [`iluvatar_sync::ArrivalForecaster`]
//!   least-squares trend) are rolled a short horizon forward through a
//!   backlog model, and the smallest fleet that keeps predicted queue
//!   delay under target is chosen — pre-provisioning *ahead* of a ramp
//!   instead of after the queue has already built ("Taming Cold Starts
//!   with Model Predictive Control", arXiv:2508.07640).
//!
//! Every policy is a pure function of its [`FleetObservation`] stream —
//! time arrives *in* the observation, never from a wall clock — so
//! decision sequences replay bit-identically and are proptest-able.

mod mpc;
mod policy;

pub use mpc::{MpcConfig, MpcPolicy};
pub use policy::{
    ConcurrencyTargetConfig, ConcurrencyTargetPolicy, Cooldowns, ReactiveConfig,
    ReactiveQueueDelayPolicy,
};

use serde::{Deserialize, Serialize};

/// Which controller drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingPolicyKind {
    /// Reactive queue-delay target with hysteresis + cooldowns.
    ReactiveQueueDelay,
    /// Knative-style concurrency-target averaging over a sliding window.
    ConcurrencyTarget,
    /// MPC-lite predictive controller over per-function arrival forecasts.
    PredictiveMpc,
}

impl ScalingPolicyKind {
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPolicyKind::ReactiveQueueDelay => "reactive-queue-delay",
            ScalingPolicyKind::ConcurrencyTarget => "concurrency-target",
            ScalingPolicyKind::PredictiveMpc => "predictive-mpc",
        }
    }

    pub fn all() -> [ScalingPolicyKind; 3] {
        [
            ScalingPolicyKind::ReactiveQueueDelay,
            ScalingPolicyKind::ConcurrencyTarget,
            ScalingPolicyKind::PredictiveMpc,
        ]
    }
}

/// How the fleet picks which worker to drain on scale-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VictimPolicyKind {
    /// Drain the worker holding the least warm-container residency
    /// (GB·s) — retiring it forfeits the least keep-alive investment.
    /// Ties (including an all-zero fleet of stub handles) fall back to
    /// the highest slot index, i.e. LIFO.
    #[default]
    LeastWarm,
    /// Drain the most recently attached worker (the pre-warm-aware
    /// behaviour), ignoring residency.
    Lifo,
}

impl VictimPolicyKind {
    pub fn name(&self) -> &'static str {
        match self {
            VictimPolicyKind::LeastWarm => "least-warm",
            VictimPolicyKind::Lifo => "lifo",
        }
    }
}

/// Elastic-fleet configuration. Defaults to fully disabled so existing
/// deployments keep their fixed fleet; `reactive queue-delay` is the
/// default controller once enabled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Master switch; everything below is inert while false.
    #[serde(default)]
    pub enabled: bool,
    /// Which controller to run.
    pub policy: ScalingPolicyKind,
    /// Fleet size floor; the scaler never drains below it.
    pub min_workers: usize,
    /// Fleet size ceiling (also the cluster's slot capacity).
    pub max_workers: usize,
    /// Policy evaluation period, ms.
    pub interval_ms: u64,
    /// Minimum time between scale-up decisions, ms.
    pub scale_up_cooldown_ms: u64,
    /// Minimum time between scale-down decisions, ms — also the minimum
    /// time a scale-up must age before any scale-down (anti-flap).
    pub scale_down_cooldown_ms: u64,
    /// Most workers added or retired by a single decision.
    pub max_step: usize,
    /// Scale-down victim selection; least-warm-GB·s by default, `Lifo`
    /// restores the pre-residency behaviour.
    #[serde(default)]
    pub victim_policy: VictimPolicyKind,
    /// Hottest functions handed off from a drain victim to survivors
    /// before the reaper detaches it; 0 selects the built-in default.
    #[serde(default)]
    pub handoff_top_k: usize,
    pub reactive: ReactiveConfig,
    pub concurrency: ConcurrencyTargetConfig,
    pub mpc: MpcConfig,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            policy: ScalingPolicyKind::ReactiveQueueDelay,
            min_workers: 1,
            max_workers: 8,
            interval_ms: 500,
            scale_up_cooldown_ms: 1_000,
            scale_down_cooldown_ms: 5_000,
            max_step: 2,
            victim_policy: VictimPolicyKind::default(),
            handoff_top_k: 0,
            reactive: ReactiveConfig::default(),
            concurrency: ConcurrencyTargetConfig::default(),
            mpc: MpcConfig::default(),
        }
    }
}

impl AutoscaleConfig {
    /// Enabled with the given controller and everything else default.
    pub fn enabled_with(policy: ScalingPolicyKind) -> Self {
        Self {
            enabled: true,
            policy,
            ..Default::default()
        }
    }

    /// Instantiate the configured controller.
    pub fn build_policy(&self) -> Box<dyn ScalingPolicy> {
        match self.policy {
            ScalingPolicyKind::ReactiveQueueDelay => Box::new(ReactiveQueueDelayPolicy::new(
                self.reactive.clone(),
                self.cooldowns(),
                self.max_step,
            )),
            ScalingPolicyKind::ConcurrencyTarget => Box::new(ConcurrencyTargetPolicy::new(
                self.concurrency.clone(),
                self.cooldowns(),
                self.max_step,
            )),
            ScalingPolicyKind::PredictiveMpc => Box::new(MpcPolicy::new(
                self.mpc.clone(),
                self.cooldowns(),
                self.max_step,
                self.min_workers,
                self.max_workers,
            )),
        }
    }

    pub fn cooldowns(&self) -> Cooldowns {
        Cooldowns::new(self.scale_up_cooldown_ms, self.scale_down_cooldown_ms)
    }

    /// Handoff breadth: 0 selects the built-in default of 4.
    pub fn effective_handoff_top_k(&self) -> usize {
        if self.handoff_top_k == 0 {
            4
        } else {
            self.handoff_top_k
        }
    }
}

/// One snapshot of the fleet's load, everything a controller may read.
/// Time is a field, not an ambient clock, so evaluation is deterministic.
#[derive(Debug, Clone, Default)]
pub struct FleetObservation {
    /// Observation time on the injected clock, ms.
    pub now_ms: u64,
    /// Workers currently live (routable).
    pub live: usize,
    /// Workers draining toward retirement (still finishing work).
    pub draining: usize,
    /// Invocations queued across live workers.
    pub queued: u64,
    /// Invocations executing across live workers.
    pub running: u64,
    /// Mean per-worker queue delay of recently dequeued work, ms.
    pub mean_queue_delay_ms: f64,
    /// Worst per-worker queue delay, ms.
    pub max_queue_delay_ms: u64,
    /// Per-worker concurrency limit (homogeneous fleet).
    pub concurrency_limit: usize,
    /// Invocations that arrived since the previous observation.
    pub arrivals: u64,
    /// Arrivals since the previous observation, per function, sorted by
    /// fqdn (determinism: stable iteration order for the forecasters).
    pub per_fn_arrivals: Vec<(String, u64)>,
    /// Invocations waiting in the balancer's pull-dispatch central queues
    /// (0 in push mode / with no pull plane attached). Backlog that has
    /// not reached any worker's queue yet, so it is invisible to `queued`
    /// — without it a pull-mode fleet would never scale up.
    pub pull_queue_depth: u64,
}

impl FleetObservation {
    /// Total in-flight work: queued plus running, plus backlog still
    /// parked in the pull-dispatch central queues.
    pub fn in_flight(&self) -> u64 {
        self.queued + self.running + self.pull_queue_depth
    }

    /// Work waiting in *some* queue — per-worker or central pull.
    pub fn total_queued(&self) -> u64 {
        self.queued + self.pull_queue_depth
    }
}

/// Scale directions, for event labels and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDirection {
    Up,
    Down,
}

impl ScaleDirection {
    pub fn label(&self) -> &'static str {
        match self {
            ScaleDirection::Up => "up",
            ScaleDirection::Down => "down",
        }
    }
}

/// What a controller wants done this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// No change.
    Hold,
    /// Add `add` workers.
    ScaleUp { add: usize, reason: &'static str },
    /// Drain `remove` workers.
    ScaleDown { remove: usize, reason: &'static str },
}

impl ScalingDecision {
    pub fn is_hold(&self) -> bool {
        matches!(self, ScalingDecision::Hold)
    }
}

/// A journaled scale event: one applied decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Decision time on the injected clock, ms.
    pub t_ms: u64,
    pub direction: ScaleDirection,
    /// The controller's reason label (stable across runs; feeds the
    /// `iluvatar_scale_events_total{direction,reason}` counter).
    pub reason: String,
    /// Live fleet size before and after the decision.
    pub from: usize,
    pub to: usize,
}

/// A fleet-scaling controller. Implementations must be pure functions of
/// the observation stream: same observations in, same decisions out.
pub trait ScalingPolicy: Send {
    fn name(&self) -> &'static str;

    /// Evaluate one observation. Returning a non-[`Hold`] decision implies
    /// the caller will apply it (clamped to `[min_workers, max_workers]`),
    /// and starts the matching cooldown.
    ///
    /// [`Hold`]: ScalingDecision::Hold
    fn evaluate(&mut self, obs: &FleetObservation) -> ScalingDecision;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_off_with_reactive_default() {
        let c = AutoscaleConfig::default();
        assert!(!c.enabled, "autoscaling must be opt-in");
        assert_eq!(c.policy, ScalingPolicyKind::ReactiveQueueDelay);
        assert!(c.min_workers >= 1);
        assert!(c.max_workers >= c.min_workers);
    }

    #[test]
    fn config_roundtrips_and_old_configs_parse() {
        let mut c = AutoscaleConfig::enabled_with(ScalingPolicyKind::PredictiveMpc);
        c.max_workers = 5;
        c.victim_policy = VictimPolicyKind::Lifo;
        let json = serde_json::to_string(&c).unwrap();
        let back: AutoscaleConfig = serde_json::from_str(&json).unwrap();
        assert!(back.enabled);
        assert_eq!(back.policy, ScalingPolicyKind::PredictiveMpc);
        assert_eq!(back.max_workers, 5);
        assert_eq!(back.victim_policy, VictimPolicyKind::Lifo);
    }

    #[test]
    fn victim_policy_defaults_and_handoff_floor() {
        let c = AutoscaleConfig::default();
        assert_eq!(c.victim_policy, VictimPolicyKind::LeastWarm);
        assert_eq!(c.victim_policy.name(), "least-warm");
        assert_eq!(VictimPolicyKind::Lifo.name(), "lifo");
        assert_eq!(c.handoff_top_k, 0, "0 selects the built-in default");
        assert_eq!(c.effective_handoff_top_k(), 4);
        let c = AutoscaleConfig {
            handoff_top_k: 2,
            ..Default::default()
        };
        assert_eq!(c.effective_handoff_top_k(), 2);
    }

    #[test]
    fn all_three_policies_build() {
        for kind in ScalingPolicyKind::all() {
            let cfg = AutoscaleConfig::enabled_with(kind);
            let p = cfg.build_policy();
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn scale_event_serializes_for_the_fleet_api() {
        let e = ScaleEvent {
            t_ms: 1_000,
            direction: ScaleDirection::Up,
            reason: "queue_delay_high".into(),
            from: 1,
            to: 2,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: ScaleEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.direction.label(), "up");
    }
}
