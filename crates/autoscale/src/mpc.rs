//! (c) The MPC-lite predictive controller.
//!
//! A receding-horizon controller: per-function arrival forecasters (the
//! least-squares trend of [`iluvatar_sync::ArrivalForecaster`]) predict
//! arrivals for each of the next `horizon_steps` intervals; a backlog
//! recursion rolls those predictions forward under a candidate fleet size,
//! and the smallest fleet whose predicted queue delay stays under target
//! wins. Because the forecast sees a ramp *while it is still ramping*, the
//! fleet is pre-provisioned ahead of the burst instead of after the queue
//! has already built — the core claim of arXiv:2508.07640.

use crate::policy::Cooldowns;
use crate::{FleetObservation, ScalingDecision, ScalingPolicy};
use iluvatar_sync::ArrivalForecaster;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// MPC-lite configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Prediction horizon, in evaluation intervals.
    pub horizon_steps: usize,
    /// Invocations one worker completes per evaluation interval — the
    /// service rate the backlog recursion drains at.
    pub service_rate_per_step: f64,
    /// Predicted-backlog ceiling, expressed in multiples of one interval's
    /// per-worker service: backlog ≤ target × fleet × service_rate keeps
    /// predicted queue delay under ~`target` intervals.
    pub target_backlog_intervals: f64,
    /// Forecaster window, in intervals, per function.
    pub forecast_window: usize,
}

impl Default for MpcConfig {
    fn default() -> Self {
        Self {
            horizon_steps: 4,
            service_rate_per_step: 8.0,
            target_backlog_intervals: 1.0,
            forecast_window: 8,
        }
    }
}

/// The predictive controller. Forecasters live in a BTreeMap so per-run
/// iteration order — and therefore every prediction — is deterministic.
pub struct MpcPolicy {
    cfg: MpcConfig,
    cooldowns: Cooldowns,
    max_step: usize,
    min_workers: usize,
    max_workers: usize,
    forecasters: BTreeMap<String, ArrivalForecaster>,
}

impl MpcPolicy {
    pub fn new(
        cfg: MpcConfig,
        cooldowns: Cooldowns,
        max_step: usize,
        min_workers: usize,
        max_workers: usize,
    ) -> Self {
        Self {
            cfg,
            cooldowns,
            max_step: max_step.max(1),
            min_workers: min_workers.max(1),
            max_workers: max_workers.max(1),
            forecasters: BTreeMap::new(),
        }
    }

    /// Total forecast arrivals `step` intervals ahead, summed across the
    /// per-function forecasters.
    fn forecast_arrivals(&self, step: usize) -> f64 {
        self.forecasters.values().map(|f| f.forecast(step)).sum()
    }

    /// Worst predicted backlog over the horizon if the fleet ran at size
    /// `m` the whole time.
    fn worst_backlog(&self, start_backlog: f64, m: usize) -> f64 {
        let drain = m as f64 * self.cfg.service_rate_per_step.max(0.001);
        let mut b = start_backlog;
        let mut worst: f64 = b;
        for k in 1..=self.cfg.horizon_steps.max(1) {
            b = (b + self.forecast_arrivals(k) - drain).max(0.0);
            worst = worst.max(b);
        }
        worst
    }

    /// The smallest fleet size in `[min, max]` whose worst predicted
    /// backlog stays under the target; `max` when none qualifies.
    fn plan(&self, obs: &FleetObservation) -> usize {
        let start = obs.in_flight() as f64;
        for m in self.min_workers..=self.max_workers {
            let ceiling = self.cfg.target_backlog_intervals.max(0.1)
                * m as f64
                * self.cfg.service_rate_per_step;
            if self.worst_backlog(start, m) <= ceiling {
                return m;
            }
        }
        self.max_workers
    }
}

impl ScalingPolicy for MpcPolicy {
    fn name(&self) -> &'static str {
        "predictive-mpc"
    }

    fn evaluate(&mut self, obs: &FleetObservation) -> ScalingDecision {
        // Feed this interval's arrivals into the per-function forecasters.
        // Functions absent from the observation saw zero arrivals.
        let window = self.cfg.forecast_window;
        for (fqdn, count) in &obs.per_fn_arrivals {
            self.forecasters
                .entry(fqdn.clone())
                .or_insert_with(|| ArrivalForecaster::new(window))
                .push_bucket(*count);
        }
        for (fqdn, f) in self.forecasters.iter_mut() {
            if !obs.per_fn_arrivals.iter().any(|(name, _)| name == fqdn) {
                f.push_bucket(0);
            }
        }

        let desired = self.plan(obs);
        let live = obs.live.max(1);
        if desired > live {
            if !self.cooldowns.allow_up(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            let add = (desired - live).min(self.max_step);
            self.cooldowns.note_up(obs.now_ms);
            return ScalingDecision::ScaleUp {
                add,
                reason: "forecast_backlog",
            };
        }
        if desired < live {
            if obs.total_queued() > 0 || !self.cooldowns.allow_down(obs.now_ms) {
                return ScalingDecision::Hold;
            }
            let remove = (live - desired).min(self.max_step).max(1);
            self.cooldowns.note_down(obs.now_ms);
            return ScalingDecision::ScaleDown {
                remove,
                reason: "forecast_idle",
            };
        }
        ScalingDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScalingDecision as D;

    fn mpc(max_workers: usize) -> MpcPolicy {
        MpcPolicy::new(
            MpcConfig {
                horizon_steps: 4,
                service_rate_per_step: 10.0,
                target_backlog_intervals: 1.0,
                forecast_window: 6,
            },
            Cooldowns::new(0, 0),
            8,
            1,
            max_workers,
        )
    }

    fn obs(now_ms: u64, live: usize, in_flight: u64, arrivals: &[(&str, u64)]) -> FleetObservation {
        FleetObservation {
            now_ms,
            live,
            running: in_flight,
            arrivals: arrivals.iter().map(|(_, c)| c).sum(),
            per_fn_arrivals: arrivals.iter().map(|(n, c)| (n.to_string(), *c)).collect(),
            concurrency_limit: 8,
            ..Default::default()
        }
    }

    #[test]
    fn preprovisions_ahead_of_a_ramp() {
        let mut p = mpc(8);
        // A steep ramp: 0, 10, 20, 30 arrivals per interval. The trend
        // forecasts ~40-70 per interval over the horizon, far beyond one
        // worker's 10/interval — the controller grows while the observed
        // in-flight load is still tiny.
        assert_eq!(p.evaluate(&obs(0, 1, 0, &[("f-1", 0)])), D::Hold);
        p.evaluate(&obs(500, 1, 0, &[("f-1", 10)]));
        p.evaluate(&obs(1_000, 1, 5, &[("f-1", 20)]));
        match p.evaluate(&obs(1_500, 1, 8, &[("f-1", 30)])) {
            D::ScaleUp { add, reason } => {
                assert!(
                    add >= 2,
                    "forecast should ask for several workers, got {add}"
                );
                assert_eq!(reason, "forecast_backlog");
            }
            other => panic!("expected proactive ScaleUp, got {other:?}"),
        }
    }

    #[test]
    fn shrinks_after_the_burst_decays() {
        let mut p = mpc(8);
        for i in 0..4 {
            p.evaluate(&obs(i * 500, 4, 40, &[("f-1", 40)]));
        }
        // Burst over: arrivals collapse, forecast decays, fleet shrinks.
        let mut shrank = false;
        for i in 4..16 {
            if let D::ScaleDown { reason, .. } = p.evaluate(&obs(i * 500, 4, 0, &[("f-1", 0)])) {
                assert_eq!(reason, "forecast_idle");
                shrank = true;
                break;
            }
        }
        assert!(shrank, "decayed forecast must shrink the fleet");
    }

    #[test]
    fn respects_max_workers() {
        let mut p = mpc(3);
        for i in 0..8 {
            let d = p.evaluate(&obs(i * 500, 3, 500, &[("f-1", 500)]));
            assert_eq!(d, D::Hold, "already at ceiling: plan clamps to max");
        }
    }

    #[test]
    fn functions_absent_from_an_interval_decay_to_zero() {
        let mut p = mpc(8);
        for i in 0..3 {
            p.evaluate(&obs(i * 500, 2, 10, &[("f-1", 30)]));
        }
        // f-1 vanishes from the stream; its forecaster must see zeros.
        for i in 3..9 {
            p.evaluate(&obs(i * 500, 2, 0, &[]));
        }
        assert!(
            p.forecast_arrivals(1) < 10.0,
            "stale function trends must decay"
        );
    }
}
