//! Property tests: controller stability.
//!
//! The three controllers are exercised as pure functions of observation
//! streams. The properties are the anti-flap contract of the crate:
//! monotone signals never shrink a fleet they just grew, a step load
//! settles instead of oscillating, and cooldown spacing survives
//! adversarial observation sequences.

use iluvatar_autoscale::{
    AutoscaleConfig, FleetObservation, ScaleDirection, ScalingDecision, ScalingPolicyKind,
};
use proptest::prelude::*;

const MAX_WORKERS: usize = 8;

fn cfg(kind: ScalingPolicyKind, up_ms: u64, down_ms: u64) -> AutoscaleConfig {
    let mut c = AutoscaleConfig::enabled_with(kind);
    c.min_workers = 1;
    c.max_workers = MAX_WORKERS;
    c.scale_up_cooldown_ms = up_ms;
    c.scale_down_cooldown_ms = down_ms;
    c.max_step = 2;
    c
}

fn obs(now_ms: u64, live: usize, delay_ms: f64, queued: u64, arrivals: u64) -> FleetObservation {
    FleetObservation {
        now_ms,
        live,
        queued,
        running: arrivals.min(live as u64 * 8),
        mean_queue_delay_ms: delay_ms,
        max_queue_delay_ms: delay_ms as u64,
        concurrency_limit: 8,
        arrivals,
        per_fn_arrivals: vec![("f-1".into(), arrivals)],
        ..Default::default()
    }
}

/// Apply a decision to a harness-tracked fleet size, clamped to
/// `[1, MAX_WORKERS]` the way `Fleet` clamps. Returns the direction when
/// the size actually changed.
fn apply(live: &mut usize, d: &ScalingDecision) -> Option<ScaleDirection> {
    match d {
        ScalingDecision::Hold => None,
        ScalingDecision::ScaleUp { add, .. } => {
            let next = (*live + add).min(MAX_WORKERS);
            let grew = next > *live;
            *live = next;
            grew.then_some(ScaleDirection::Up)
        }
        ScalingDecision::ScaleDown { remove, .. } => {
            let next = live.saturating_sub(*remove).max(1);
            let shrank = next < *live;
            *live = next;
            shrank.then_some(ScaleDirection::Down)
        }
    }
}

proptest! {
    /// Hysteresis controllers are monotone in their signal: while the
    /// offered load never decreases, a fleet that has grown is never
    /// shrunk — no ScaleDown may follow a ScaleUp.
    #[test]
    fn monotone_load_never_shrinks_after_growth(
        kind_idx in 0usize..2,
        increments in proptest::collection::vec(0u64..40, 4..60),
    ) {
        let kind =
            [ScalingPolicyKind::ReactiveQueueDelay, ScalingPolicyKind::ConcurrencyTarget][kind_idx];
        let mut policy = cfg(kind, 500, 2_000).build_policy();
        let mut live = 1usize;
        let mut signal = 0u64;
        let mut grew = false;
        for (tick, inc) in increments.into_iter().enumerate() {
            signal += inc; // nondecreasing load
            let o = obs(tick as u64 * 500, live, signal as f64, signal / 4, signal);
            let d = policy.evaluate(&o);
            match apply(&mut live, &d) {
                Some(ScaleDirection::Up) => grew = true,
                Some(ScaleDirection::Down) => {
                    prop_assert!(!grew, "shrank a fleet the monotone load had grown");
                    prop_assert!(false, "shrank under nondecreasing load from size 1");
                }
                None => {}
            }
        }
    }

    /// A step load settles: the reactive controller ramps to a fixed
    /// point and stops issuing decisions — bounded oscillation, quiet
    /// tail, at most one reversal of direction over the whole run.
    #[test]
    fn step_load_settles_without_flapping(
        quiet in 0u64..5,
        burst in 20u64..200,
        step_at in 5usize..15,
    ) {
        let interval = 500u64;
        let mut policy = cfg(ScalingPolicyKind::ReactiveQueueDelay, 500, 2_000).build_policy();
        let mut live = 1usize;
        let mut events: Vec<(usize, ScaleDirection)> = Vec::new();
        let ticks = 80usize;
        for tick in 0..ticks {
            let arrivals = if tick >= step_at { burst } else { quiet };
            // Utilization-proportional delay: each worker retires 10
            // invocations per interval.
            let capacity = live as f64 * 10.0;
            let delay = arrivals as f64 / capacity * interval as f64;
            let queued = arrivals.saturating_sub(capacity as u64);
            let o = obs(tick as u64 * interval, live, delay, queued, arrivals);
            let d = policy.evaluate(&o);
            if let Some(dir) = apply(&mut live, &d) {
                events.push((tick, dir));
            }
        }
        let reversals = events.windows(2).filter(|w| w[0].1 != w[1].1).count();
        prop_assert!(reversals <= 1, "fleet flapped: {events:?}");
        prop_assert!(
            events.iter().all(|(t, _)| *t < ticks - 10),
            "still scaling in the settled tail: {events:?}"
        );
    }

    /// Cooldown spacing holds for every controller under adversarial
    /// observation streams: consecutive scale-ups are at least the up
    /// cooldown apart, and any scale-down is at least the down cooldown
    /// after both the previous down *and* the previous up (anti-flap).
    #[test]
    fn cooldowns_respected_under_adversarial_sequences(
        kind_idx in 0usize..3,
        up_ms in 100u64..3_000,
        down_ms in 100u64..3_000,
        steps in proptest::collection::vec((1u64..1_500, 0.0f64..1_000.0, 0u64..2, 0u64..120), 4..80),
    ) {
        let kind = ScalingPolicyKind::all()[kind_idx];
        let mut policy = cfg(kind, up_ms, down_ms).build_policy();
        let mut live = 1usize;
        let mut now = 0u64;
        let mut last_up: Option<u64> = None;
        let mut last_down: Option<u64> = None;
        for (dt, delay, queued, arrivals) in steps {
            now += dt;
            let o = obs(now, live, delay, queued, arrivals);
            let d = policy.evaluate(&o);
            match d {
                ScalingDecision::ScaleUp { .. } => {
                    if let Some(t) = last_up {
                        prop_assert!(now - t >= up_ms, "ups {t} and {now} violate {up_ms}ms cooldown");
                    }
                    last_up = Some(now);
                }
                ScalingDecision::ScaleDown { .. } => {
                    if let Some(t) = last_down {
                        prop_assert!(now - t >= down_ms, "downs {t} and {now} violate {down_ms}ms cooldown");
                    }
                    if let Some(t) = last_up {
                        prop_assert!(now - t >= down_ms, "down at {now} follows up at {t} within {down_ms}ms");
                    }
                    last_down = Some(now);
                }
                ScalingDecision::Hold => {}
            }
            apply(&mut live, &d);
        }
    }
}
