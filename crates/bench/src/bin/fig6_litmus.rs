//! Figure 6 — litmus tests: warm and cold invocations served by FaasCache
//! (OpenWhisk + Greedy-Dual keep-alive) vs vanilla OpenWhisk (10-minute
//! TTL) under three *skewed* workloads: single-function frequency skew, a
//! cyclic access pattern, and a two-size skew.
//!
//! §6.2: "FaasCache's keep-alive can increase the number of warm
//! invocations by between 50 to 100% compared to OpenWhisk's TTL. ... with
//! FaasCache, the total number of requests that are served also increases
//! by 2×" (OpenWhisk drops requests under its cold-start-driven load).
//!
//! Both systems are the *same* threaded OpenWhisk-architecture model; only
//! the keep-alive policy differs — exactly the paper's FaasCache setup.

use iluvatar::prelude::*;
use iluvatar::OpenWhiskTarget;
use iluvatar_baseline::{OpenWhiskConfig, OpenWhiskModel};
use iluvatar_bench::{env_f64, env_u64, print_table};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_trace::loadgen::{FireOutcome, InvokerTarget, OpenLoopRunner, ScheduledInvocation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Poisson schedule for (app, IAT) pairs over `duration_ms` virtual time.
fn poisson_schedule(
    apps: &[(FbApp, u64)],
    duration_ms: u64,
    scale: f64,
    seed: u64,
) -> Vec<ScheduledInvocation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (app, iat) in apps {
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -(*iat as f64) * u.ln();
            if t >= duration_ms as f64 {
                break;
            }
            out.push(ScheduledInvocation {
                at_ms: (t * scale) as u64,
                fqdn: format!("{}-1", app.name()),
                args: "{}".into(),
                tenant: None,
            });
        }
    }
    out
}

/// Cyclic schedule: hotness rotates between the apps phase by phase.
fn cyclic_schedule(
    apps: &[(FbApp, u64, u64)], // (app, hot IAT, cold IAT)
    phase_ms: u64,
    duration_ms: u64,
    scale: f64,
) -> Vec<ScheduledInvocation> {
    let mut out = Vec::new();
    let n = apps.len() as u64;
    for (idx, &(app, hot, cold)) in apps.iter().enumerate() {
        let mut t = 0u64;
        while t < duration_ms {
            let phase = (t / phase_ms) % n;
            let iat = if phase == idx as u64 { hot } else { cold };
            out.push(ScheduledInvocation {
                at_ms: (t as f64 * scale) as u64,
                fqdn: format!("{}-1", app.name()),
                args: "{}".into(),
                tenant: None,
            });
            t += iat;
        }
    }
    out
}

fn run(
    schedule: Vec<ScheduledInvocation>,
    apps: &[FbApp],
    policy: KeepalivePolicyKind,
    scale: f64,
    memory_mb: u64,
) -> Vec<FireOutcome> {
    let cfg = OpenWhiskConfig {
        cores: env_u64("ILU_CORES", 4) as usize,
        invoker_slots: env_u64("ILU_SLOTS", 16) as usize,
        memory_mb,
        ttl_ms: (600_000.0 * scale) as u64,
        placement_timeout_ms: (3_000.0 * scale / 0.05).max(50.0) as u64,
        gc_period_ms: 2_500,
        gc_pause_ms: 60,
        time_scale: scale,
        keepalive: policy,
        ..Default::default()
    };
    let ow = Arc::new(OpenWhiskModel::new(cfg, SystemClock::shared()));
    for app in apps {
        ow.register(app.spec());
    }
    OpenLoopRunner::new(schedule)
        .run(Arc::new(OpenWhiskTarget(Arc::clone(&ow))) as Arc<dyn InvokerTarget>)
}

fn summarize(name: &str, label: &str, out: &[FireOutcome], rows: &mut Vec<Vec<String>>) {
    let warm = out.iter().filter(|o| !o.dropped && !o.cold).count();
    let cold = out.iter().filter(|o| o.cold).count();
    let dropped = out.iter().filter(|o| o.dropped).count();
    rows.push(vec![
        name.to_string(),
        label.to_string(),
        warm.to_string(),
        cold.to_string(),
        (warm + cold).to_string(),
        dropped.to_string(),
    ]);
}

fn main() {
    let duration = env_u64("ILU_DURATION_MS", 15 * 60_000); // virtual
    let scale = env_f64("ILU_SCALE", 0.05);
    let memory_mb = env_u64("ILU_CACHE_MB", 3_000);
    let mut rows = Vec::new();

    // (a) Frequency skew: one hot small function among three slower ones.
    let apps = [
        (FbApp::FloatingPoint, 400u64),
        (FbApp::MlInference, 1_500),
        (FbApp::DiskBench, 1_500),
        (FbApp::WebServing, 1_500),
    ];
    let app_list: Vec<FbApp> = apps.iter().map(|(a, _)| *a).collect();
    eprintln!("litmus freq-skew...");
    for (label, policy) in [
        ("OpenWhisk (TTL)", KeepalivePolicyKind::Ttl),
        ("FaasCache (GD)", KeepalivePolicyKind::Gdsf),
    ] {
        let out = run(
            poisson_schedule(&apps, duration, scale, 0x6A),
            &app_list,
            policy,
            scale,
            memory_mb,
        );
        summarize("freq-skew", label, &out, &mut rows);
    }

    // (b) Cyclic access pattern: hotness rotates every ~4 virtual minutes.
    let capps = [
        (FbApp::FloatingPoint, 400u64, 8_000u64),
        (FbApp::MatrixMultiply, 400, 8_000),
        (FbApp::DiskBench, 400, 8_000),
        (FbApp::WebServing, 400, 8_000),
    ];
    let capp_list: Vec<FbApp> = capps.iter().map(|(a, _, _)| *a).collect();
    eprintln!("litmus cyclic...");
    for (label, policy) in [
        ("OpenWhisk (TTL)", KeepalivePolicyKind::Ttl),
        ("FaasCache (GD)", KeepalivePolicyKind::Gdsf),
    ] {
        let out = run(
            cyclic_schedule(&capps, 4 * 60_000, duration, scale),
            &capp_list,
            policy,
            scale,
            memory_mb,
        );
        summarize("cyclic", label, &out, &mut rows);
    }

    // (c) Two-size skew: frequent small + rare large functions.
    let sapps = [
        (FbApp::WebServing, 500u64),
        (FbApp::FloatingPoint, 500),
        (FbApp::MlInference, 4_000),
        (FbApp::VideoEncoding, 12_000),
    ];
    let sapp_list: Vec<FbApp> = sapps.iter().map(|(a, _)| *a).collect();
    eprintln!("litmus two-size...");
    for (label, policy) in [
        ("OpenWhisk (TTL)", KeepalivePolicyKind::Ttl),
        ("FaasCache (GD)", KeepalivePolicyKind::Gdsf),
    ] {
        let out = run(
            poisson_schedule(&sapps, duration, scale, 0x6B),
            &sapp_list,
            policy,
            scale,
            memory_mb,
        );
        summarize("two-size", label, &out, &mut rows);
    }

    print_table(
        &format!("Figure 6: litmus workloads on the OpenWhisk architecture, {memory_mb}MB pool"),
        &["workload", "system", "warm", "cold", "served", "dropped"],
        &rows,
    );
    println!("\nExpected shape: FaasCache serves more warm (and total) invocations on every skewed workload; vanilla OpenWhisk drops more.");
}
