//! Ablation — concurrency regulation (§4.1): fixed limits vs the AIMD
//! dynamic limit under a load the server cannot fully absorb.
//!
//! A too-low fixed limit wastes capacity (queueing inflates latency); a
//! too-high one admits everything immediately (fine for the null backend,
//! harmful with real CPU contention). AIMD should converge near the knee.

use iluvatar::prelude::*;
use iluvatar::WorkerTarget;
use iluvatar_bench::{env_u64, pctl, print_table};
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_trace::loadgen::{closed_loop, ClosedLoopConfig, InvokerTarget};
use std::sync::Arc;
use std::time::Instant;

fn run(limit: usize, dynamic: bool, clients: usize, per_client: usize) -> Vec<String> {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 1.0,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "abl-c".into(),
        cores: 8,
        memory_mb: 32 * 1024,
        concurrency: ConcurrencyConfig {
            limit,
            dynamic,
            congestion_load: 3.0,
            interval_ms: 50,
            max_limit: 256,
            ..Default::default()
        },
        ..Default::default()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    worker
        .register(FunctionSpec::new("f", "1").with_timing(40, 100))
        .unwrap();
    worker.invoke("f-1", "{}").unwrap();

    let start = Instant::now();
    let out = closed_loop(
        Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>,
        "f-1",
        &ClosedLoopConfig {
            clients,
            invocations_per_client: per_client,
            warmup_per_client: 2,
        },
    );
    let wall_s = start.elapsed().as_secs_f64();
    let lat: Vec<f64> = out
        .iter()
        .filter(|o| !o.dropped)
        .map(|o| o.e2e_ms as f64)
        .collect();
    let served = lat.len();
    let final_limit = worker.status().concurrency_limit;
    vec![
        if dynamic {
            format!("AIMD (start {limit})")
        } else {
            format!("fixed {limit}")
        },
        format!("{:.0}", served as f64 / wall_s),
        format!("{:.0}", pctl(&lat, 0.5)),
        format!("{:.0}", pctl(&lat, 0.99)),
        final_limit.to_string(),
    ]
}

fn main() {
    let clients = env_u64("ILU_CLIENTS", 32) as usize;
    let per_client = env_u64("ILU_PER_CLIENT", 40) as usize;
    let mut rows = Vec::new();
    for limit in [2usize, 8, 32] {
        rows.push(run(limit, false, clients, per_client));
    }
    rows.push(run(2, true, clients, per_client));
    print_table(
        &format!("Ablation: concurrency limit under {clients} closed-loop clients (40ms warm fn)"),
        &[
            "regulator",
            "throughput/s",
            "e2e p50 ms",
            "e2e p99 ms",
            "final limit",
        ],
        &rows,
    );
    println!("\nExpected shape: tiny fixed limits throttle throughput and inflate latency; AIMD grows its limit from 2 toward the load and approaches the large-fixed-limit throughput.");
}
