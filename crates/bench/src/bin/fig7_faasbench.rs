//! Figure 7 — per-function breakdown of warm/cold/dropped invocations for
//! the faasbench workload (CNN, disk-bench, web-serving at 1500 ms IAT; the
//! floating-point function at 400 ms): vanilla OpenWhisk (10-minute TTL)
//! vs FaasCache ("modified OpenWhisk" — the same system with Greedy-Dual
//! keep-alive installed).
//!
//! §6.2: "FaasCache increases the warm requests by more than 2×. ...
//! Because the floating-point function has a high initialization overhead,
//! it sees a 3× increase in hit-ratio compared to OpenWhisk. ...
//! OpenWhisk drops a significant number (50%) of requests due to its high
//! cold start overheads" — cold starts hold memory and CPU longer, load
//! amplifies, placements time out.
//!
//! This harness runs the *threaded* OpenWhisk-architecture model (shared
//! queue, invoker slots, CPU-overcommit inflation, placement timeouts) with
//! the two keep-alive policies under identical open-loop load, compressed
//! in time (`ILU_SCALE`, default 0.05).

use iluvatar::prelude::*;
use iluvatar::OpenWhiskTarget;
use iluvatar_baseline::{OpenWhiskConfig, OpenWhiskModel};
use iluvatar_bench::{env_f64, env_u64, print_table};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_trace::loadgen::{FireOutcome, InvokerTarget, OpenLoopRunner, ScheduledInvocation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const APPS: [(FbApp, u64); 4] = [
    (FbApp::MlInference, 1_500),
    (FbApp::DiskBench, 1_500),
    (FbApp::WebServing, 1_500),
    (FbApp::FloatingPoint, 400),
];

/// Poisson open-loop schedule over the four functions, virtual ms.
fn schedule(duration_ms: u64, scale: f64) -> Vec<ScheduledInvocation> {
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut out = Vec::new();
    for (app, iat) in APPS {
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -(iat as f64) * u.ln();
            if t >= duration_ms as f64 {
                break;
            }
            out.push(ScheduledInvocation {
                at_ms: (t * scale) as u64,
                fqdn: format!("{}-1", app.name()),
                args: "{}".into(),
                tenant: None,
            });
        }
    }
    out
}

fn run(
    policy: KeepalivePolicyKind,
    duration_ms: u64,
    scale: f64,
    memory_mb: u64,
) -> Vec<FireOutcome> {
    let cfg = OpenWhiskConfig {
        cores: env_u64("ILU_CORES", 4) as usize,
        invoker_slots: env_u64("ILU_SLOTS", 16) as usize,
        memory_mb,
        // All virtual-time knobs pre-scaled to wall time.
        ttl_ms: (600_000.0 * scale) as u64,
        placement_timeout_ms: (3_000.0 * scale / 0.05).max(50.0) as u64,
        gc_period_ms: 2_500,
        gc_pause_ms: 60,
        time_scale: scale,
        keepalive: policy,
        ..Default::default()
    };
    let ow = Arc::new(OpenWhiskModel::new(cfg, SystemClock::shared()));
    for (app, _) in APPS {
        ow.register(app.spec());
    }
    let runner = OpenLoopRunner::new(schedule(duration_ms, scale));
    runner.run(Arc::new(OpenWhiskTarget(Arc::clone(&ow))) as Arc<dyn InvokerTarget>)
}

fn main() {
    let duration = env_u64("ILU_DURATION_MS", 20 * 60_000); // virtual
    let scale = env_f64("ILU_SCALE", 0.05);
    let memory_mb = env_u64("ILU_CACHE_MB", 3_000);
    eprintln!(
        "faasbench: {}min virtual at {scale}x on a {memory_mb}MB pool...",
        duration / 60_000
    );
    let ow = run(KeepalivePolicyKind::Ttl, duration, scale, memory_mb);
    let fc = run(KeepalivePolicyKind::Gdsf, duration, scale, memory_mb);

    let mut rows = Vec::new();
    let mut fp_ratio = [0.0f64; 2];
    for (app, iat) in APPS {
        let fqdn = format!("{}-1", app.name());
        for (k, (label, out)) in [("OpenWhisk", &ow), ("FaasCache", &fc)].iter().enumerate() {
            let mine: Vec<&FireOutcome> = out.iter().filter(|o| o.fqdn == fqdn).collect();
            let warm = mine.iter().filter(|o| !o.dropped && !o.cold).count();
            let cold = mine.iter().filter(|o| o.cold).count();
            let dropped = mine.iter().filter(|o| o.dropped).count();
            let hit = warm as f64 / (warm + cold).max(1) as f64;
            if app == FbApp::FloatingPoint {
                fp_ratio[k] = hit;
            }
            rows.push(vec![
                format!("{} ({iat}ms)", app.name()),
                label.to_string(),
                warm.to_string(),
                cold.to_string(),
                dropped.to_string(),
                format!("{hit:.3}"),
            ]);
        }
    }
    print_table(
        &format!("Figure 7: faasbench on the OpenWhisk architecture, {memory_mb}MB pool"),
        &["function", "system", "warm", "cold", "dropped", "hit ratio"],
        &rows,
    );
    let count =
        |out: &[FireOutcome], f: fn(&FireOutcome) -> bool| out.iter().filter(|o| f(o)).count();
    println!(
        "\nTotals: OpenWhisk warm {} / dropped {}; FaasCache warm {} / dropped {}",
        count(&ow, |o| !o.dropped && !o.cold),
        count(&ow, |o| o.dropped),
        count(&fc, |o| !o.dropped && !o.cold),
        count(&fc, |o| o.dropped),
    );
    println!(
        "floating-point hit-ratio: OpenWhisk {:.3} vs FaasCache {:.3} ({:.2}x; paper ~3x)",
        fp_ratio[0],
        fp_ratio[1],
        fp_ratio[1] / fp_ratio[0].max(1e-9)
    );
    println!("Expected shape: FaasCache more warm requests and fewer drops; FP (high init, small memory) gains most under GD.");
}
