//! Appendix figures — invocations/second timeseries for the full synthetic
//! Azure trace and the three samples (the diurnal wave of the full trace
//! should be visible in the Representative sample too).

use iluvatar_bench::full_run;
use iluvatar_trace::samples::base_population_config;
use iluvatar_trace::{SampleKind, SyntheticAzureTrace, TraceSample};

fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    series
        .iter()
        .map(|&v| BARS[((v / max) * 7.0).round().clamp(0.0, 7.0) as usize])
        .collect()
}

fn downsample(series: &[f64], points: usize) -> Vec<f64> {
    if series.len() <= points {
        return series.to_vec();
    }
    let chunk = series.len() / points;
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

fn print_series(name: &str, trace: &SyntheticAzureTrace) {
    let per_min = trace.rate_timeseries(60_000);
    let ds = downsample(&per_min, 72);
    let mean = per_min.iter().sum::<f64>() / per_min.len() as f64;
    let peak = per_min.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\n{name}: mean {mean:.1}/s, peak {peak:.1}/s, {} invocations",
        trace.events.len()
    );
    println!("  {}", sparkline(&ds));
}

fn main() {
    let full = full_run();
    let mut cfg = base_population_config(0xA22E);
    if !full {
        cfg.apps = 400;
        cfg.duration_ms = 24 * 3600 * 1000; // keep a full day: diurnality
    }
    eprintln!("generating traces...");
    let base = SyntheticAzureTrace::generate(&cfg);
    println!("== Appendix: invocation-rate timeseries (one day) ==");
    print_series("Full trace", &base);
    for kind in SampleKind::all() {
        let s = TraceSample::draw(kind, &base, 7);
        print_series(kind.name(), &s.trace);
    }
    println!("\nExpected shape: a diurnal wave in the full trace, echoed by the Representative sample; Rare is sparse and flat by comparison.");
}
