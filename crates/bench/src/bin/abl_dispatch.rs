//! Ablation — push vs pull vs hybrid dispatch.
//!
//! One seeded heavy-tailed workload (Zipf function popularity, 90% short /
//! 10% long service times) replayed through three dispatch planes in a
//! discrete-event simulation:
//!
//! * **push** — CH-BL as the balancer runs it today: hash affinity plus
//!   bounded-load forwarding, but the load signal is a *stale* snapshot
//!   (refreshed every 250 ms), so long jobs pile up behind routing
//!   decisions made on old information.
//! * **pull** — the real [`iluvatar_dispatch::PullPlane`]: invocations land
//!   in central per-class queues and idle workers pull (stealing from
//!   sibling shards when their own is empty). No stale signal exists —
//!   a worker that pulls is idle by construction.
//! * **hybrid** — warm-hit-likely invocations (a worker ran the function
//!   inside the warm window) push straight to that worker; everything
//!   else spills to the pull queues.
//!
//! The claim under test (§"Let the workers pull"): with heavy-tailed
//! service times and stale load signals, pull-based dispatch bounds tail
//! latency — push's p99 suffers head-of-line blocking that pull cannot
//! have. The binary asserts `pull p99 <= push p99` and
//! `hybrid p99 <= push p99` and exits non-zero otherwise.

use iluvatar_bench::{env_u64, pctl, print_table};
use iluvatar_dispatch::{DispatchConfig, DispatchMode, PullPlane};
use iluvatar_sync::clock::{Clock, ManualClock};
use rand::{Rng, SeedableRng, StdRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

/// One invocation of the shared workload.
struct Job {
    arrival_ms: u64,
    fqdn: usize,
    service_ms: u64,
}

/// Cold penalty added the first time a function runs on a given worker.
const COLD_MS: u64 = 60;
/// Push mode's load snapshot refresh period: routing decisions between
/// refreshes act on stale queue lengths, exactly like a scraped signal.
const STALE_MS: u64 = 250;

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Zipf-popular functions, Poisson arrivals, bimodal service times.
fn workload(seed: u64, n_jobs: usize, n_fns: usize, mean_iat_ms: f64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n_fns).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut t = 0.0f64;
    (0..n_jobs)
        .map(|_| {
            let u: f64 = rng.gen();
            t += -mean_iat_ms * (1.0 - u).max(1e-12).ln();
            let mut pick: f64 = rng.gen_range(0.0..total);
            let mut fqdn = n_fns - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    fqdn = i;
                    break;
                }
                pick -= w;
            }
            let service_ms = if rng.gen_bool(0.10) {
                rng.gen_range(300u64..=700)
            } else {
                rng.gen_range(8u64..=12)
            };
            Job {
                arrival_ms: t as u64,
                fqdn,
                service_ms,
            }
        })
        .collect()
}

struct Outcome {
    e2e: Vec<f64>,
    colds: u64,
    steals: u64,
}

/// Runtime of `job` on `worker`, charging the cold penalty on the first
/// (worker, function) encounter.
fn runtime(job: &Job, worker: usize, seen: &mut BTreeSet<(usize, usize)>, colds: &mut u64) -> u64 {
    if seen.insert((worker, job.fqdn)) {
        *colds += 1;
        job.service_ms + COLD_MS
    } else {
        job.service_ms
    }
}

/// CH-BL push with a stale load signal: hash affinity, bounded-load
/// forwarding, per-worker FIFO execution.
fn run_push(jobs: &[Job], n_workers: usize) -> Outcome {
    let mut completions: Vec<Vec<u64>> = vec![Vec::new(); n_workers];
    let mut busy_until = vec![0u64; n_workers];
    let mut stale_loads = vec![0u64; n_workers];
    let mut next_snapshot = 0u64;
    let mut seen = BTreeSet::new();
    let mut colds = 0u64;
    let mut e2e = Vec::with_capacity(jobs.len());
    for job in jobs {
        let now = job.arrival_ms;
        while now >= next_snapshot {
            for (w, c) in completions.iter().enumerate() {
                stale_loads[w] = c.iter().filter(|&&t| t > next_snapshot).count() as u64;
            }
            next_snapshot += STALE_MS;
        }
        // Bounded load relative to the (stale) mean, as CH-BL specifies.
        let mean = stale_loads.iter().sum::<u64>() as f64 / n_workers as f64;
        let bound = (1.2 * mean).ceil().max(1.0) as u64;
        let home = (fnv64(&format!("fn-{}", job.fqdn)) % n_workers as u64) as usize;
        let mut target = (0..n_workers)
            .map(|k| (home + k) % n_workers)
            .find(|&w| stale_loads[w] < bound);
        if target.is_none() {
            target = (0..n_workers).min_by_key(|&w| (stale_loads[w], w));
        }
        let w = target.expect("worker");
        let dur = runtime(job, w, &mut seen, &mut colds);
        let done = busy_until[w].max(now) + dur;
        busy_until[w] = done;
        completions[w].push(done);
        e2e.push((done - now) as f64);
    }
    Outcome {
        e2e,
        colds,
        steals: 0,
    }
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Worker `w` finished lease `lease_id` on the job at `job_idx`.
    Free {
        w: usize,
        lease_id: u64,
        job_idx: usize,
    },
    Arrival(usize),
}

/// Pull and hybrid modes against the real [`PullPlane`] on a manual clock.
fn run_plane(jobs: &[Job], n_workers: usize, mode: DispatchMode) -> Outcome {
    let clock = Arc::new(ManualClock::new());
    let mut cfg = match mode {
        DispatchMode::Pull => DispatchConfig::pull(),
        DispatchMode::Hybrid => DispatchConfig::hybrid(),
        DispatchMode::Push => unreachable!("push runs in run_push"),
    };
    // No worker ever dies in the ablation: a TTL past the trace end keeps
    // requeues out of the latency comparison.
    cfg.lease_ttl_ms = 3_600_000;
    cfg.max_batch = 1;
    let plane = PullPlane::new(cfg, clock.clone() as Arc<dyn Clock>);
    let names: Vec<String> = (0..n_workers).map(|w| format!("w{w}")).collect();
    for n in &names {
        plane.register_worker(n);
    }

    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, j) in jobs.iter().enumerate() {
        heap.push(Reverse((j.arrival_ms, seq, Event::Arrival(i))));
        seq += 1;
    }
    let mut idle: BTreeSet<usize> = (0..n_workers).collect();
    // Plane task id -> workload index, recorded at enqueue time.
    let mut task_job: HashMap<u64, usize> = HashMap::new();
    let mut seen = BTreeSet::new();
    let mut colds = 0u64;
    let mut e2e = vec![0f64; jobs.len()];

    // Start `job_idx` on `w` at `now`; returns the Free event time.
    let start =
        |w: usize,
         job_idx: usize,
         started: u64,
         seen: &mut BTreeSet<(usize, usize)>,
         colds: &mut u64| { started + runtime(&jobs[job_idx], w, seen, colds) };

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        clock.set(now);
        match ev {
            Event::Arrival(job_idx) => {
                let job = &jobs[job_idx];
                let fqdn = format!("fn-{}", job.fqdn);
                // Hybrid pushes warm-hit-likely work straight to the warm
                // worker — but only through the bounded-load gate: a busy
                // target spills the invocation to the pull queues instead
                // (the real balancer's CH-BL bound plays this role).
                let pushed = if mode == DispatchMode::Hybrid {
                    plane.warm_target(&fqdn).and_then(|name| {
                        let w = names.iter().position(|n| *n == name).expect("known worker");
                        idle.contains(&w).then_some(w)
                    })
                } else {
                    None
                };
                match pushed {
                    Some(w) => {
                        idle.remove(&w);
                        let done = start(w, job_idx, now, &mut seen, &mut colds);
                        e2e[job_idx] = (done - now) as f64;
                        plane.note_warm(&fqdn, &names[w]);
                        heap.push(Reverse((
                            done,
                            seq,
                            Event::Free {
                                w,
                                lease_id: 0,
                                job_idx: usize::MAX,
                            },
                        )));
                        seq += 1;
                    }
                    None => {
                        let id = plane
                            .enqueue(
                                &fqdn,
                                "{}",
                                Some(if job.fqdn.is_multiple_of(3) {
                                    "beta"
                                } else {
                                    "acme"
                                }),
                            )
                            .expect("enqueue");
                        task_job.insert(id, job_idx);
                        // Hand the backlog to any idle worker (lowest index
                        // first for determinism); pulls steal across shards
                        // when a worker's own shard is empty.
                        while let Some(&w) = idle.iter().next() {
                            let leases = plane.pull(&names[w], 1);
                            if leases.is_empty() {
                                break;
                            }
                            idle.remove(&w);
                            for lease in leases {
                                let ji = task_job[&lease.task.id];
                                let done = start(w, ji, now, &mut seen, &mut colds);
                                e2e[ji] = (done - lease.task.enqueued_at_ms) as f64;
                                heap.push(Reverse((
                                    done,
                                    seq,
                                    Event::Free {
                                        w,
                                        lease_id: lease.lease_id,
                                        job_idx: ji,
                                    },
                                )));
                                seq += 1;
                            }
                        }
                    }
                }
            }
            Event::Free {
                w,
                lease_id,
                job_idx,
            } => {
                if job_idx != usize::MAX {
                    let job = &jobs[job_idx];
                    plane.complete(lease_id, true, "", job.service_ms);
                }
                let leases = plane.pull(&names[w], 1);
                if leases.is_empty() {
                    idle.insert(w);
                    continue;
                }
                for lease in leases {
                    let ji = task_job[&lease.task.id];
                    let done = start(w, ji, now, &mut seen, &mut colds);
                    e2e[ji] = (done - lease.task.enqueued_at_ms) as f64;
                    heap.push(Reverse((
                        done,
                        seq,
                        Event::Free {
                            w,
                            lease_id: lease.lease_id,
                            job_idx: ji,
                        },
                    )));
                    seq += 1;
                }
            }
        }
    }
    assert_eq!(plane.depth(), 0, "trace drained");
    let c = plane.counters();
    Outcome {
        e2e,
        colds,
        steals: c.stolen,
    }
}

fn row(label: &str, out: &Outcome) -> Vec<String> {
    let mean = out.e2e.iter().sum::<f64>() / out.e2e.len() as f64;
    vec![
        label.to_string(),
        format!("{:.1}", pctl(&out.e2e, 0.50)),
        format!("{:.1}", pctl(&out.e2e, 0.99)),
        format!("{mean:.1}"),
        out.colds.to_string(),
        out.steals.to_string(),
    ]
}

fn main() {
    let n_workers = env_u64("ILU_DISPATCH_WORKERS", 6) as usize;
    let n_jobs = env_u64("ILU_DISPATCH_JOBS", 6_000) as usize;
    let seed = env_u64("ILU_DISPATCH_SEED", 0xD15C);
    // ~70% utilization: mean service 0.9*10 + 0.1*500 = 59 ms across the
    // fleet, so queues form behind the long jobs without saturating.
    let mean_service = 0.9 * 10.0 + 0.1 * 500.0;
    let mean_iat = mean_service / (0.7 * n_workers as f64);
    let jobs = workload(seed, n_jobs, 40, mean_iat);
    eprintln!(
        "dispatch ablation: {n_jobs} jobs / 40 fns / {n_workers} workers, mean iat {mean_iat:.1}ms, seed {seed:#x}"
    );

    let push = run_push(&jobs, n_workers);
    let pull = run_plane(&jobs, n_workers, DispatchMode::Pull);
    let hybrid = run_plane(&jobs, n_workers, DispatchMode::Hybrid);

    print_table(
        "Ablation: dispatch mode — heavy-tailed mix, stale push signal",
        &["mode", "p50 ms", "p99 ms", "mean ms", "colds", "steals"],
        &[
            row("push (ch-bl, stale)", &push),
            row("pull", &pull),
            row("hybrid", &hybrid),
        ],
    );

    let (push99, pull99, hybrid99) = (
        pctl(&push.e2e, 0.99),
        pctl(&pull.e2e, 0.99),
        pctl(&hybrid.e2e, 0.99),
    );
    assert!(
        pull99 <= push99,
        "pull p99 {pull99:.1}ms must not exceed push p99 {push99:.1}ms"
    );
    assert!(
        hybrid99 <= push99,
        "hybrid p99 {hybrid99:.1}ms must not exceed push p99 {push99:.1}ms"
    );
    println!(
        "\nOK: pull p99 {pull99:.1}ms <= push p99 {push99:.1}ms; hybrid p99 {hybrid99:.1}ms <= push p99 {push99:.1}ms"
    );
}
