//! Table 1 — latency of the worker components for a single warm invocation.
//!
//! Runs the real hot path end-to-end over HTTP: the worker serves its API on
//! loopback, invocations arrive through the typed client, and in-process
//! containers serve the genuine agent protocol. Afterwards the span
//! distributions are scraped back over `GET /spans` — the same mergeable
//! histograms a load balancer aggregates — and printed in the paper's
//! Table 1 grouping (mean/p50/p99 per component).

use iluvatar::prelude::*;
use iluvatar_bench::{env_u64, print_table};
use iluvatar_containers::NamespacePool;
use iluvatar_core::api::{WorkerApi, WorkerApiClient};
use iluvatar_core::spans::names;
use iluvatar_core::SpanExport;
use std::sync::Arc;

fn main() {
    let iterations = env_u64("ILU_ITERS", 500);
    let clock = SystemClock::shared();
    let netns = Arc::new(NamespacePool::new(4, 0, Arc::clone(&clock)));
    netns.prefill();
    let backend = Arc::new(InProcessBackend::new(netns));
    backend.register_behavior("pyaes-1", FbApp::PyAes.behavior());
    let worker = Arc::new(Worker::new(WorkerConfig::default(), backend, clock));
    let api = WorkerApi::serve(Arc::clone(&worker)).expect("serve worker API");
    let client = WorkerApiClient::new(api.addr());
    client
        .register(&FbApp::PyAes.spec())
        .expect("register over HTTP");

    // One cold start, then measure pure warm invocations.
    client.invoke("pyaes-1", "{}").expect("cold start");
    for _ in 0..iterations {
        let r = client.invoke("pyaes-1", "{}").expect("warm invoke");
        assert!(!r.cold, "Table 1 measures warm invocations");
    }

    // Scrape the span distributions back over the wire, as a balancer would.
    let exports: Vec<SpanExport> = client.spans().expect("scrape /spans");
    let find = |name: &str| exports.iter().find(|e| e.name == name);

    let mut rows = Vec::new();
    for (group, spans) in names::GROUPS {
        for (i, span) in spans.iter().enumerate() {
            let (mean, p50, p99) = find(span)
                .map(|e| (e.mean_ms(), e.percentile_ms(0.50), e.percentile_ms(0.99)))
                .unwrap_or((0.0, 0.0, 0.0));
            rows.push(vec![
                if i == 0 {
                    group.to_string()
                } else {
                    String::new()
                },
                span.to_string(),
                format!("{:.3}", mean),
                format!("{:.3}", p50),
                format!("{:.3}", p99),
            ]);
        }
    }
    print_table(
        &format!("Table 1: worker component latency over {iterations} warm invocations (scraped from GET /spans)"),
        &["group", "component", "mean ms", "p50 ms", "p99 ms"],
        &rows,
    );

    let trace = client
        .traces(1)
        .ok()
        .and_then(|mut t| t.pop())
        .expect("journal holds the last invocation");
    println!(
        "\nLast trace {} ({}): {} events, cold={:?}",
        trace.trace_id,
        trace.fqdn,
        trace.events.len(),
        trace.cold()
    );
    let metrics = client.metrics_text().expect("scrape /metrics");
    let hist_lines = metrics
        .lines()
        .filter(|l| l.starts_with("iluvatar_span_seconds_bucket"))
        .count();
    println!(
        "GET /metrics: {} bytes, {hist_lines} span histogram bucket lines",
        metrics.len()
    );
    println!("\nExpected shape: agent communication (call_container) dominates at ~1-2ms; queuing/container ops each well under 0.1ms.");
}
