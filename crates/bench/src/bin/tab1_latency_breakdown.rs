//! Table 1 — latency of the worker components for a single warm invocation.
//!
//! Runs the real hot path: in-process containers serving the genuine agent
//! HTTP protocol over loopback, per-component spans recorded by the worker.
//! Prints the same grouping and rows as the paper's Table 1.

use iluvatar::prelude::*;
use iluvatar_bench::{env_u64, print_table};
use iluvatar_containers::NamespacePool;
use iluvatar_core::spans::names;
use std::sync::Arc;

fn main() {
    let iterations = env_u64("ILU_ITERS", 500);
    let clock = SystemClock::shared();
    let netns = Arc::new(NamespacePool::new(4, 0, Arc::clone(&clock)));
    netns.prefill();
    let backend = Arc::new(InProcessBackend::new(netns));
    backend.register_behavior("pyaes-1", FbApp::PyAes.behavior());
    let worker = Arc::new(Worker::new(WorkerConfig::default(), backend, clock));
    worker.register(FbApp::PyAes.spec()).unwrap();

    // One cold start, then measure pure warm invocations.
    worker.invoke("pyaes-1", "{}").unwrap();
    for _ in 0..iterations {
        let r = worker.invoke("pyaes-1", "{}").unwrap();
        assert!(!r.cold, "Table 1 measures warm invocations");
    }

    let mut rows = Vec::new();
    for (group, spans) in names::GROUPS {
        for (i, span) in spans.iter().enumerate() {
            let s = worker.spans().summary(span);
            let (mean, p99) = s.map(|s| (s.mean_ms, s.p99_ms)).unwrap_or((0.0, 0.0));
            rows.push(vec![
                if i == 0 { group.to_string() } else { String::new() },
                span.to_string(),
                format!("{:.3}", mean),
                format!("{:.3}", p99),
            ]);
        }
    }
    print_table(
        &format!("Table 1: worker component latency over {iterations} warm invocations"),
        &["group", "component", "mean ms", "p99 ms"],
        &rows,
    );
    println!("\nExpected shape: agent communication (call_container) dominates at ~1-2ms; queuing/container ops each well under 0.1ms.");
}
