//! Table 3 — the FunctionBench applications driving the OpenWhisk-vs-
//! FaasCache litmus experiments, with their memory, run, and init times.

use iluvatar_bench::print_table;
use iluvatar_trace::functionbench::FbApp;

fn main() {
    let mut rows = Vec::new();
    for app in FbApp::all() {
        let (mem, run, init) = app.table3();
        rows.push(vec![
            app.name().to_string(),
            format!("{mem} MB"),
            format!("{:.1} s", run as f64 / 1000.0),
            format!("{:.1} s", init as f64 / 1000.0),
            format!("{:.1} s", (run - init) as f64 / 1000.0),
        ]);
    }
    print_table(
        "Table 3: FunctionBench application characteristics",
        &[
            "Application",
            "Mem size",
            "Run time",
            "Init time",
            "Warm time",
        ],
        &rows,
    );
    println!("\n(The seven Table 3 rows match the paper; pyaes is the additional Figure 1 microbenchmark function.)");
}
