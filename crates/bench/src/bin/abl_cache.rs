//! Ablation — the invocation result cache.
//!
//! The tentpole's claim is that the cheapest invocation is the one that
//! never reaches a worker: a cache hit is a map lookup on the control
//! plane, with no queue, no container, no agent round-trip. This harness
//! measures that gap on the real in-process hot path and gates on it:
//!
//! * hit p50 must beat the warm dispatch p50,
//! * the repeated phase must serve >=80% from cache,
//! * interleaved tenants sharing fqdn+args must see zero cross-tenant
//!   serves.
//!
//! Exits non-zero on any breach (`check.sh` runs this as a gate).

use iluvatar_bench::{env_u64, pctl, print_table};
use iluvatar_cache::{CacheConfig, CacheStatus};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::{Worker, WorkerConfig};
use iluvatar_sync::SystemClock;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: [&str; 2] = ["acme", "umbra"];

fn main() {
    let samples = env_u64("ILU_CACHE_SAMPLES", 200) as usize;
    let unique = env_u64("ILU_CACHE_UNIQUE", 8);

    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        cache: CacheConfig::enabled_default(),
        ..WorkerConfig::for_testing()
    };
    let worker = Worker::new(cfg, backend, clock);
    worker
        .register(
            FunctionSpec::new("f", "1")
                .with_timing(40, 150)
                .with_idempotent(),
        )
        .expect("register");

    // Warm phase: first sight of every (tenant, arg) pair — containers go
    // warm and the cache fills. Not measured.
    for tenant in TENANTS {
        for a in 0..unique {
            let (_, status) = worker
                .invoke_tenant_cached("f-1", &format!("{{\"k\":{a}}}"), Some(tenant))
                .expect("warm invoke");
            assert_eq!(status, CacheStatus::Miss, "first sight must miss");
        }
    }

    // Dispatch p50: fresh arguments every time — warm containers, full
    // queue + acquire + agent path.
    let mut dispatch_ms = Vec::with_capacity(samples);
    for i in 0..samples {
        let args = format!("{{\"fresh\":{i}}}");
        let t0 = Instant::now();
        let (_, status) = worker
            .invoke_tenant_cached("f-1", &args, Some("acme"))
            .expect("dispatch invoke");
        dispatch_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, CacheStatus::Miss);
    }

    // Hit phase: repeated arguments, tenants interleaved on identical
    // fqdn+args. Every serve must carry the requesting tenant's label.
    let (mut hits, mut misses, mut cross_tenant) = (0u64, 0u64, 0u64);
    let mut hit_ms = Vec::with_capacity(samples);
    for i in 0..samples {
        let tenant = TENANTS[i % TENANTS.len()];
        let args = format!("{{\"k\":{}}}", i as u64 % unique);
        let t0 = Instant::now();
        let (r, status) = worker
            .invoke_tenant_cached("f-1", &args, Some(tenant))
            .expect("repeat invoke");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        match status {
            CacheStatus::Hit => {
                hit_ms.push(dt);
                hits += 1;
                if r.tenant.as_deref() != Some(tenant) {
                    cross_tenant += 1;
                }
            }
            CacheStatus::Miss => misses += 1,
            CacheStatus::Bypass => unreachable!("idempotent function never bypasses"),
        }
    }
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let hit_p50 = pctl(&hit_ms, 0.50);
    let hit_p99 = pctl(&hit_ms, 0.99);
    let disp_p50 = pctl(&dispatch_ms, 0.50);
    let disp_p99 = pctl(&dispatch_ms, 0.99);

    print_table(
        "Ablation: result cache vs warm dispatch",
        &["path", "p50 ms", "p99 ms", "samples"],
        &[
            vec![
                "warm dispatch".into(),
                format!("{disp_p50:.4}"),
                format!("{disp_p99:.4}"),
                dispatch_ms.len().to_string(),
            ],
            vec![
                "cache hit".into(),
                format!("{hit_p50:.4}"),
                format!("{hit_p99:.4}"),
                hit_ms.len().to_string(),
            ],
        ],
    );
    println!("repeated-phase hit rate: {hit_rate:.3} ({hits} hits / {misses} misses)");
    println!("cross-tenant serves: {cross_tenant}");

    let mut failed = false;
    if hit_p50 >= disp_p50 {
        eprintln!("FAIL: hit p50 {hit_p50:.4}ms must beat dispatch p50 {disp_p50:.4}ms");
        failed = true;
    }
    if hit_rate < 0.8 {
        eprintln!("FAIL: repeated-phase hit rate {hit_rate:.3} < 0.80");
        failed = true;
    }
    if cross_tenant > 0 {
        eprintln!("FAIL: {cross_tenant} cross-tenant serves");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("cache ablation gates passed");
}
