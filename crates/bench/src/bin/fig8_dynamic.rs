//! Figure 8 — dynamic cache-size adjustment: the proportional controller
//! holds the cold-start ("miss") speed near a target while shrinking the
//! provisioned cache ~30% below a conservative static allocation.

use iluvatar_bench::{env_f64, env_u64, full_run, print_table};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_sim::provisioning::{DynamicScaler, ProvisioningConfig};
use iluvatar_sim::{KeepaliveSim, SimConfig};
use iluvatar_trace::samples::base_population_config;
use iluvatar_trace::{SampleKind, SyntheticAzureTrace, TraceSample};

fn main() {
    let full = full_run();
    let mut cfg = base_population_config(0xA22E);
    if !full {
        cfg.apps = 400;
        cfg.duration_ms = 8 * 3600 * 1000;
    }
    eprintln!("generating representative trace...");
    let base = SyntheticAzureTrace::generate(&cfg);
    let sample = TraceSample::draw(SampleKind::Representative, &base, 7);
    let trace = &sample.trace;

    let static_mb = env_u64("ILU_STATIC_MB", 10_000);
    // Calibrate the target against the static provision's own miss speed:
    // tolerate 3x its misses and let the controller find the smallest cache
    // that sustains that — the paper pins 0.0015 misses/s for its trace.
    let stat = KeepaliveSim::run(
        trace.profiles.clone(),
        &trace.events,
        SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
    );
    let duration_s = trace.duration_ms as f64 / 1000.0;
    let static_miss_speed = stat.cold as f64 / duration_s;
    let target = env_f64("ILU_TARGET_MISS_PER_SEC", static_miss_speed * 3.0);

    let prov = ProvisioningConfig {
        target_miss_per_sec: target,
        error_tolerance: 0.30,
        gain: env_f64("ILU_GAIN", 0.15),
        max_rel_err: 3.0,
        interval_ms: 5 * 60_000,
        min_mb: 1_000,
        max_mb: static_mb * 2,
        initial_mb: static_mb,
    };
    let run = DynamicScaler::new(prov.clone()).run(
        trace.profiles.clone(),
        &trace.events,
        SimConfig::new(KeepalivePolicyKind::Gdsf, static_mb),
    );

    // Timeseries, downsampled to ~24 printed rows.
    let step = (run.samples.len() / 24).max(1);
    let rows: Vec<Vec<String>> = run
        .samples
        .iter()
        .step_by(step)
        .map(|s| {
            vec![
                format!("{:.1} h", s.t_ms as f64 / 3_600_000.0),
                s.cache_mb.to_string(),
                format!("{:.4}", s.miss_per_sec),
                if s.resized { "*".into() } else { String::new() },
            ]
        })
        .collect();
    print_table(
        &format!("Figure 8: dynamic cache sizing (target {target:.4} misses/s, 30% band)"),
        &["time", "cache MB", "miss/s", "resized"],
        &rows,
    );

    let mean = run.mean_cache_mb();
    println!("\nStatic provision: {static_mb} MB; its miss speed {static_miss_speed:.4}/s; cold ratio {:.4}", stat.cold_ratio());
    println!(
        "Dynamic: mean cache {:.0} MB ({:.0}% below static), cold ratio {:.4}",
        mean,
        (1.0 - mean / static_mb as f64) * 100.0,
        run.outcome.cold_ratio()
    );
    println!("Expected shape: cache tracks miss speed, mean size ≈30% under static, service quality comparable.");
}
