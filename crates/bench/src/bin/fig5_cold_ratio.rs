//! Figure 5 (a–c) — fraction of cold starts per trace sample, keep-alive
//! policy, and cache size (the miss-ratio-curve view of Figure 4).
//!
//! §6.2 notes the cold-start *ratio* differences diverge from the
//! cold-start *overhead* differences because miss-ratio curves ignore the
//! per-function miss cost that Greedy-Dual optimizes.

use iluvatar_bench::{cache_sizes_gb, full_run, print_table, sweep_cell};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_trace::samples::base_population_config;
use iluvatar_trace::{SampleKind, SyntheticAzureTrace, TraceSample};

fn main() {
    let full = full_run();
    let mut cfg = base_population_config(0xA22E);
    if !full {
        cfg.apps = 400;
        cfg.duration_ms = 6 * 3600 * 1000;
    }
    eprintln!("generating base population...");
    let base = SyntheticAzureTrace::generate(&cfg);
    let sizes = cache_sizes_gb(full);
    let policies = KeepalivePolicyKind::all();

    for kind in SampleKind::all() {
        let sample = TraceSample::draw(kind, &base, 7);
        let trace = &sample.trace;
        let mut rows = Vec::new();
        for &gb in &sizes {
            let mut row = vec![format!("{gb:.0} GB")];
            for &p in &policies {
                let out = sweep_cell(&trace.profiles, &trace.events, p, gb);
                row.push(format!("{:.3}", out.cold_ratio()));
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("cache".to_string())
            .chain(policies.iter().map(|p| p.name().to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 5 ({}): cold-start fraction vs cache size",
                kind.name()
            ),
            &header_refs,
            &rows,
        );
    }
    println!("\nExpected shape: all caching policies monotonically improve with cache size; TTL flattens early (non-work-conserving); ranking differences vs Figure 4 reflect miss-cost weighting.");
}
