//! Overhead budget gate: dispatch overhead percentiles per Table-1 group.
//!
//! Replays a fixed warm-dominated trace through the real HTTP hot path (a
//! worker serving its API on loopback over a simulated backend, with the
//! write-ahead log enabled under `wal.fsync = group` so durability rides
//! the measured path), fetches
//! the critical-path breakdown from `GET /breakdown`, and checks the
//! p50/p99 of each Table-1 component group against a fixed budget. The
//! budgets carry wide headroom over the expected values — the gate exists
//! to catch order-of-magnitude regressions in control-plane overhead (a
//! lock on the hot path, an accidental sync round-trip), not to flake on
//! scheduler jitter. `check.sh` fails when any group breaches.
//!
//! Exit status: 0 when every group is within budget, 1 on any breach.

use iluvatar_bench::{env_u64, print_table};
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::api::{WorkerApi, WorkerApiClient};
use iluvatar_core::breakdown::stages;
use iluvatar_core::{BreakdownReport, LifecycleConfig, WalConfig, Worker, WorkerConfig};
use iluvatar_sync::SystemClock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `(group, p50 budget ms, p99 budget ms)`. The simulated agent call is
/// ~2 ms warm (100 ms × 0.02 time scale), so genuine values sit one to two
/// orders of magnitude below these ceilings.
const GROUP_BUDGETS_MS: &[(&str, f64, f64)] = &[
    ("Ingestion & Queuing", 50.0, 250.0),
    ("Container Operations", 50.0, 250.0),
    ("Agent Communication", 50.0, 250.0),
    ("Returning", 50.0, 250.0),
];

/// End-to-end critical path budget (ms): queue wait + acquire + agent at
/// the simulated time scale, with the same headroom rationale.
const E2E_BUDGET_P50_MS: f64 = 100.0;
const E2E_BUDGET_P99_MS: f64 = 500.0;

fn main() {
    let iterations = env_u64("ILU_ITERS", 200);
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ));
    // The budget must hold with durability on: WAL enabled, group commit
    // batching fsyncs off the hot path (`wal.fsync = group`).
    let wal_dir = std::env::temp_dir().join(format!("iluvatar-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal temp dir");
    let wal_path = wal_dir
        .join("queue.wal")
        .to_str()
        .expect("utf8 path")
        .to_string();
    let cfg = WorkerConfig {
        lifecycle: LifecycleConfig {
            wal: WalConfig {
                fsync: "group".into(),
                group_ms: 2,
                ..Default::default()
            },
            ..LifecycleConfig::with_wal(&wal_path)
        },
        ..WorkerConfig::for_testing()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    let api = WorkerApi::serve(Arc::clone(&worker)).expect("serve worker API");
    let client = WorkerApiClient::new(api.addr());
    client
        .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
        .expect("register over HTTP");

    // One cold start, then the warm replay the budgets are written for.
    client.invoke("f-1", "{}").expect("cold start");
    for _ in 0..iterations {
        client.invoke("f-1", "{}").expect("warm invoke");
    }

    // `ResultReturned` lands in the journal just after the result reaches
    // the caller: poll until the breakdown covers the full replay.
    let want = iterations + 1;
    let deadline = Instant::now() + Duration::from_secs(10);
    let report: BreakdownReport = loop {
        let r = client.breakdown().expect("scrape /breakdown");
        if r.invocations >= want || Instant::now() > deadline {
            break r;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        report.invocations >= want,
        "breakdown covers {} of {want} invocations",
        report.invocations
    );

    let mut rows = Vec::new();
    let mut breaches = Vec::new();
    for &(group, p50_budget, p99_budget) in GROUP_BUDGETS_MS {
        let g = report
            .group(group)
            .unwrap_or_else(|| panic!("group {group} missing from breakdown"));
        if g.count == 0 && group == "Agent Communication" {
            breaches.push(format!("{group}: no samples — the replay never ran"));
        }
        let p50 = g.hist_us.percentile(0.50) / 1000.0;
        let p99 = g.hist_us.percentile(0.99) / 1000.0;
        let ok = p50 <= p50_budget && p99 <= p99_budget;
        if !ok {
            breaches.push(format!(
                "{group}: p50 {p50:.3} ms (budget {p50_budget}) p99 {p99:.3} ms (budget {p99_budget})"
            ));
        }
        rows.push(vec![
            group.to_string(),
            format!("{}", g.count),
            format!("{p50:.3}"),
            format!("{p50_budget:.0}"),
            format!("{p99:.3}"),
            format!("{p99_budget:.0}"),
            if ok { "ok".into() } else { "BREACH".into() },
        ]);
    }
    let e2e = report
        .stage(stages::E2E)
        .expect("e2e stage present in breakdown");
    let e2e_p50 = e2e.hist_ms.percentile(0.50);
    let e2e_p99 = e2e.hist_ms.percentile(0.99);
    let e2e_ok = e2e_p50 <= E2E_BUDGET_P50_MS && e2e_p99 <= E2E_BUDGET_P99_MS;
    if !e2e_ok {
        breaches.push(format!(
            "e2e: p50 {e2e_p50:.3} ms (budget {E2E_BUDGET_P50_MS}) p99 {e2e_p99:.3} ms (budget {E2E_BUDGET_P99_MS})"
        ));
    }
    rows.push(vec![
        "e2e (critical path)".into(),
        format!("{}", e2e.count),
        format!("{e2e_p50:.3}"),
        format!("{E2E_BUDGET_P50_MS:.0}"),
        format!("{e2e_p99:.3}"),
        format!("{E2E_BUDGET_P99_MS:.0}"),
        if e2e_ok { "ok".into() } else { "BREACH".into() },
    ]);

    print_table(
        &format!(
            "Overhead budget over {iterations} warm invocations ({} cold, {} warm, from GET /breakdown)",
            report.cold, report.warm
        ),
        &[
            "group", "samples", "p50 ms", "budget", "p99 ms", "budget", "status",
        ],
        &rows,
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
    if breaches.is_empty() {
        println!("overhead budget: PASS");
    } else {
        eprintln!("overhead budget: FAIL");
        for b in &breaches {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
}
