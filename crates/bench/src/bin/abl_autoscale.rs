//! Ablation — elastic-fleet scaling policies.
//!
//! Sweeps the three `iluvatar-autoscale` controllers (reactive queue-delay,
//! concurrency-target, MPC-lite) plus fixed-fleet baselines over an
//! Azure-style synthetic trace, in the elastic discrete-event simulator.
//! The trade-off under test: a bigger (or faster-growing) fleet lowers the
//! cold-start ratio but burns more warm memory while idle — reported here
//! as cold ratio vs wasted warm GB·seconds.

use iluvatar_autoscale::{AutoscaleConfig, ScalingPolicyKind};
use iluvatar_bench::{env_u64, print_table};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_sim::{ElasticClusterSim, ElasticOutcome, SimConfig};
use iluvatar_trace::azure::{AzureTraceConfig, SyntheticAzureTrace};

fn worker_cfg(cache_mb: u64) -> SimConfig {
    let mut c = SimConfig::new(KeepalivePolicyKind::Gdsf, cache_mb);
    // Invoker slots per worker: queues form when a worker saturates, which
    // is exactly the signal the controllers act on.
    c.concurrency = Some(8);
    c.backlog_cap = 100_000;
    c
}

fn scale_cfg(kind: ScalingPolicyKind, max_workers: usize) -> AutoscaleConfig {
    let mut c = AutoscaleConfig::enabled_with(kind);
    c.min_workers = 1;
    c.max_workers = max_workers;
    c.interval_ms = 2_000;
    c.scale_up_cooldown_ms = 2_000;
    c.scale_down_cooldown_ms = 30_000;
    c.max_step = 2;
    c
}

/// A fixed fleet expressed as a degenerate autoscale config (min == max).
fn fixed_cfg(n: usize) -> AutoscaleConfig {
    let mut c = scale_cfg(ScalingPolicyKind::ReactiveQueueDelay, n);
    c.min_workers = n;
    c
}

fn row(label: String, out: &ElasticOutcome) -> Vec<String> {
    // Scale-down eviction recovery: how long evicted tenants stay cold
    // after a drain destroys their only warm residency. `n` counts
    // recovered evictions; `+k` counts functions still cold at trace end.
    let recov = if out.evicted_recovery_ms.is_empty() && out.evicted_unrecovered == 0 {
        "-".to_string()
    } else {
        format!(
            "{:.0}/{:.0} (n={}{})",
            out.mean_recovery_ms(),
            out.max_recovery_ms(),
            out.evicted_recovery_ms.len(),
            if out.evicted_unrecovered > 0 {
                format!("+{}", out.evicted_unrecovered)
            } else {
                String::new()
            }
        )
    };
    vec![
        label,
        format!("{:.4}", out.cold_ratio()),
        format!("{:.1}", out.warm_gb_seconds),
        format!("{:.2}", out.mean_fleet),
        out.peak_fleet.to_string(),
        out.events.len().to_string(),
        out.total_dropped().to_string(),
        recov,
    ]
}

fn main() {
    let max_workers = env_u64("ILU_MAX_WORKERS", 8) as usize;
    let cache_mb = env_u64("ILU_CACHE_MB", 2_048);
    let trace = SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 120,
        duration_ms: 4 * 3600 * 1000,
        seed: 0xE1A5,
        diurnal_fraction: 0.5,
        rate_scale: 1.0,
    });
    eprintln!(
        "elastic fleet 1..{max_workers} x {cache_mb}MB; trace {} functions / {} invocations",
        trace.profiles.len(),
        trace.events.len()
    );

    let mut rows = Vec::new();
    for kind in ScalingPolicyKind::all() {
        let out = ElasticClusterSim::run(
            trace.profiles.clone(),
            &trace.events,
            worker_cfg(cache_mb),
            scale_cfg(kind, max_workers),
        );
        rows.push(row(kind.name().to_string(), &out));
    }
    for n in [1, max_workers] {
        let out = ElasticClusterSim::run(
            trace.profiles.clone(),
            &trace.events,
            worker_cfg(cache_mb),
            fixed_cfg(n),
        );
        rows.push(row(format!("fixed-{n}"), &out));
    }
    print_table(
        "Ablation: autoscaling policy — cold starts vs wasted warm memory",
        &[
            "policy",
            "cold ratio",
            "warm GB*s",
            "mean fleet",
            "peak",
            "events",
            "dropped",
            "recov mean/max ms",
        ],
        &rows,
    );
    println!("\nExpected shape: every controller lands between the fixed fleets — near fixed-max cold ratio at a fraction of its warm GB*s, with MPC growing earliest on ramps.");
}
