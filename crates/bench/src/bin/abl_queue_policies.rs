//! Ablation — queue disciplines (§4.2): FCFS vs SJF vs EEDF vs RARE, with
//! and without short-function bypass, under a bursty heterogeneous load.
//!
//! The interesting number is the latency of *short* functions when long
//! functions clog the queue: SJF/EEDF should protect them; FCFS should not;
//! bypass should rescue them regardless of discipline.

use iluvatar::prelude::*;
use iluvatar::WorkerTarget;
use iluvatar_bench::{env_u64, pctl, print_table};
use iluvatar_core::config::{ConcurrencyConfig, QueueConfig};
use iluvatar_trace::loadgen::{InvokerTarget, OpenLoopRunner, ScheduledInvocation};
use std::sync::Arc;

fn build_schedule(duration_ms: u64) -> Vec<ScheduledInvocation> {
    let mut schedule = Vec::new();
    // Short function: every 40ms. Long functions: bursts of 6 every 800ms.
    let mut t = 0;
    while t < duration_ms {
        schedule.push(ScheduledInvocation {
            at_ms: t,
            fqdn: "short-1".into(),
            args: "{}".into(),
            tenant: None,
        });
        t += 40;
    }
    let mut t = 100;
    while t < duration_ms {
        for k in 0..6 {
            schedule.push(ScheduledInvocation {
                at_ms: t + k,
                fqdn: "long-1".into(),
                args: "{}".into(),
                tenant: None,
            });
        }
        t += 800;
    }
    schedule
}

fn run(policy: QueuePolicyKind, bypass: bool, duration_ms: u64) -> Vec<String> {
    let clock = SystemClock::shared();
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 1.0,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "abl-q".into(),
        cores: 4,
        memory_mb: 16 * 1024,
        queue: QueueConfig {
            policy,
            bypass_threshold_ms: if bypass { 50 } else { 0 },
            bypass_load_limit: 4.0,
            ..Default::default()
        },
        concurrency: ConcurrencyConfig {
            limit: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let worker = Arc::new(Worker::new(cfg, backend, clock));
    worker
        .register(FunctionSpec::new("short", "1").with_timing(15, 40))
        .unwrap();
    worker
        .register(FunctionSpec::new("long", "1").with_timing(300, 600))
        .unwrap();
    // Prime both so measurement is warm-dominated.
    worker.invoke("short-1", "{}").unwrap();
    worker.invoke("long-1", "{}").unwrap();

    let runner = OpenLoopRunner::new(build_schedule(duration_ms));
    let out = runner.run(Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>);
    let short_lat: Vec<f64> = out
        .iter()
        .filter(|o| o.fqdn == "short-1" && !o.dropped)
        .map(|o| o.e2e_ms as f64)
        .collect();
    let long_lat: Vec<f64> = out
        .iter()
        .filter(|o| o.fqdn == "long-1" && !o.dropped)
        .map(|o| o.e2e_ms as f64)
        .collect();
    vec![
        format!("{}{}", policy.name(), if bypass { "+bypass" } else { "" }),
        format!("{:.0}", pctl(&short_lat, 0.5)),
        format!("{:.0}", pctl(&short_lat, 0.99)),
        format!("{:.0}", pctl(&long_lat, 0.5)),
        format!("{:.0}", pctl(&long_lat, 0.99)),
    ]
}

fn main() {
    let duration = env_u64("ILU_DURATION_MS", 8_000);
    let mut rows = Vec::new();
    for policy in QueuePolicyKind::all() {
        rows.push(run(policy, false, duration));
    }
    rows.push(run(QueuePolicyKind::Fcfs, true, duration));
    rows.push(run(QueuePolicyKind::Eedf, true, duration));
    print_table(
        "Ablation: queue policy vs short/long function latency (ms, e2e)",
        &["policy", "short p50", "short p99", "long p50", "long p99"],
        &rows,
    );
    println!("\nExpected shape: SJF/EEDF cut short-function latency vs FCFS; RARE favours the long (rarer) function; bypass rescues shorts under any discipline.");
}
