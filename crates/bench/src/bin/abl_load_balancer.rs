//! Ablation — cluster load balancing (§3.1): CH-BL's locality against
//! round-robin and least-loaded, over a multi-worker discrete-event
//! simulation ("a large cluster can be simulated with multiple simulated
//! workers", §3.4).
//!
//! The paper's claim: CH-BL "runs functions on the same servers to maximize
//! warm starts, and forwards them to other servers only when the server's
//! load exceeds some pre-specified load-bound".

use iluvatar_bench::{env_u64, print_table};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_lb::chbl::ChBlConfig;
use iluvatar_sim::{ClusterSim, SimConfig, SimLbPolicy};
use iluvatar_trace::azure::{AzureTraceConfig, SyntheticAzureTrace};

fn main() {
    let workers = env_u64("ILU_WORKERS", 8) as usize;
    let cache_mb = env_u64("ILU_CACHE_MB", 4_096);
    let trace = SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 150,
        duration_ms: 4 * 3600 * 1000,
        seed: 0xC1,
        diurnal_fraction: 0.2,
        rate_scale: 1.0,
    });
    eprintln!(
        "cluster: {workers} workers x {cache_mb}MB; trace {} functions / {} invocations",
        trace.profiles.len(),
        trace.events.len()
    );

    let mut rows = Vec::new();
    for policy in [
        SimLbPolicy::ChBl(ChBlConfig::default()),
        SimLbPolicy::RoundRobin,
        SimLbPolicy::LeastLoaded,
    ] {
        let out = ClusterSim::run(
            workers,
            trace.profiles.clone(),
            &trace.events,
            SimConfig::new(KeepalivePolicyKind::Gdsf, cache_mb),
            policy,
        );
        rows.push(vec![
            out.policy.to_string(),
            format!("{:.4}", out.warm_ratio()),
            out.total_cold().to_string(),
            format!("{:.3}", out.dispatch_imbalance()),
            out.forwarded.to_string(),
        ]);
    }
    print_table(
        "Ablation: load-balancing policy over the simulated cluster",
        &[
            "policy",
            "warm ratio",
            "cold starts",
            "imbalance (CV)",
            "forwarded",
        ],
        &rows,
    );
    println!("\nExpected shape: CH-BL's warm ratio beats RoundRobin/LeastLoaded (locality); its imbalance is higher but bounded by the load-bound forwarding.");
}
