//! Figure 4 (a–c) — increase in execution time due to cold starts, per
//! trace sample, keep-alive policy, and cache size.
//!
//! §6.2: for the Representative trace, GD should cut the overhead >3× vs
//! TTL across 15–80 GB and reach ~TTL-at-50GB quality with a ~3× smaller
//! cache; LRU should win on Rare and Random, where recency dominates.

use iluvatar_bench::{cache_sizes_gb, full_run, print_table, sweep_cell};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_trace::samples::base_population_config;
use iluvatar_trace::{SampleKind, SyntheticAzureTrace, TraceSample};

fn main() {
    let full = full_run();
    let mut cfg = base_population_config(0xA22E);
    if !full {
        cfg.apps = 400;
        cfg.duration_ms = 6 * 3600 * 1000;
    }
    eprintln!("generating base population...");
    let base = SyntheticAzureTrace::generate(&cfg);
    let sizes = cache_sizes_gb(full);
    let policies = KeepalivePolicyKind::all();

    for kind in SampleKind::all() {
        let sample = TraceSample::draw(kind, &base, 7);
        let trace = &sample.trace;
        eprintln!(
            "fig4({}): {} functions, {} invocations",
            kind.name(),
            trace.profiles.len(),
            trace.events.len()
        );
        let mut rows = Vec::new();
        for &gb in &sizes {
            let mut row = vec![format!("{gb:.0} GB")];
            for &p in &policies {
                let out = sweep_cell(&trace.profiles, &trace.events, p, gb);
                row.push(format!("{:.2}%", out.exec_increase_pct()));
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("cache".to_string())
            .chain(policies.iter().map(|p| p.name().to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 4 ({}): increase in execution time vs cache size",
                kind.name()
            ),
            &header_refs,
            &rows,
        );
    }
    println!("\nExpected shape: GD lowest on Representative (≥3× below TTL mid-range); LRU best on Rare/Random; HIST between TTL and caching policies on Rare.");
}
