//! Figure 1 — control-plane latency overhead vs concurrent invocations.
//!
//! Methodology (§2.3): "we are invoking the function repeatedly in a
//! closed-loop, and concurrent invocations are achieved by using multiple
//! client threads. All invocations are warm starts" on a 48-core server.
//! Overhead = end-to-end latency − function execution time; the figure
//! plots p50 and p99 for OpenWhisk and Ilúvatar.
//!
//! Usage: `cargo run --release -p iluvatar-bench --bin fig1_overhead_scaling
//! [--full]`. Quick mode uses fewer invocations per point.

use iluvatar::prelude::*;
use iluvatar::{OpenWhiskTarget, WorkerTarget};
use iluvatar_bench::{full_run, pctl, print_table};
use iluvatar_core::config::ConcurrencyConfig;
use iluvatar_trace::loadgen::{closed_loop, ClosedLoopConfig, InvokerTarget};
use std::sync::Arc;

fn main() {
    let full = full_run();
    let clients_axis: Vec<usize> = if full {
        vec![1, 2, 4, 8, 16, 32, 48, 64, 96]
    } else {
        vec![1, 4, 16, 48]
    };
    let per_client = if full { 120 } else { 40 };
    // The Figure 1 workload: PyAES, a short warm function.
    let pyaes = FbApp::PyAes.spec(); // warm 20ms modelled

    let mut rows = Vec::new();
    for &clients in &clients_axis {
        // ---- Ilúvatar worker over the null backend, wall-clock time ----
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 1.0,
                ..Default::default()
            },
        ));
        let cfg = WorkerConfig {
            name: "fig1".into(),
            cores: 48,
            memory_mb: 64 * 1024,
            concurrency: ConcurrencyConfig {
                limit: 96,
                ..Default::default()
            },
            ..Default::default()
        };
        let worker = Arc::new(Worker::new(cfg, backend, clock));
        worker.register(pyaes.clone()).unwrap();
        // Prewarm one container per client so every measured run is warm.
        for _ in 0..clients {
            worker.prewarm("pyaes-1").unwrap();
        }
        let ilu_out = closed_loop(
            Arc::new(WorkerTarget(Arc::clone(&worker))) as Arc<dyn InvokerTarget>,
            "pyaes-1",
            &ClosedLoopConfig {
                clients,
                invocations_per_client: per_client,
                warmup_per_client: 5,
            },
        );
        let ilu_over: Vec<f64> = ilu_out
            .iter()
            .filter(|o| !o.dropped && !o.cold)
            .map(|o| o.overhead_ms() as f64)
            .collect();

        // ---- OpenWhisk model, same environment -------------------------
        let ow = Arc::new(OpenWhiskModel::new(
            OpenWhiskConfig {
                cores: 48,
                invoker_slots: 96,
                ..Default::default()
            },
            SystemClock::shared(),
        ));
        ow.register(pyaes.clone());
        // Warm the pool.
        for _ in 0..clients {
            ow.invoke("pyaes-1");
        }
        let ow_out = closed_loop(
            Arc::new(OpenWhiskTarget(Arc::clone(&ow))) as Arc<dyn InvokerTarget>,
            "pyaes-1",
            &ClosedLoopConfig {
                clients,
                invocations_per_client: per_client,
                warmup_per_client: 5,
            },
        );
        let ow_over: Vec<f64> = ow_out
            .iter()
            .filter(|o| !o.dropped && !o.cold)
            .map(|o| o.overhead_ms() as f64)
            .collect();

        rows.push(vec![
            clients.to_string(),
            format!("{:.2}", pctl(&ilu_over, 0.5)),
            format!("{:.2}", pctl(&ilu_over, 0.99)),
            format!("{:.2}", pctl(&ow_over, 0.5)),
            format!("{:.2}", pctl(&ow_over, 0.99)),
        ]);
    }

    print_table(
        "Figure 1: control-plane overhead (ms) vs concurrent clients (warm starts)",
        &[
            "clients",
            "iluvatar p50",
            "iluvatar p99",
            "openwhisk p50",
            "openwhisk p99",
        ],
        &rows,
    );
    println!("\nExpected shape: Ilúvatar ~1-3ms flat (≤10ms saturated); OpenWhisk ≥10ms median with 100s-of-ms p99 tails.");
}
