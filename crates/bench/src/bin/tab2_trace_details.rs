//! Table 2 — size and inter-arrival-time details of the three Azure-derived
//! workload samples (Representative / Rare / Random).

use iluvatar_bench::print_table;
use iluvatar_trace::samples::base_population_config;
use iluvatar_trace::{SampleKind, SyntheticAzureTrace, TraceSample};

fn main() {
    let full = iluvatar_bench::full_run();
    let mut cfg = base_population_config(0xA22E);
    if !full {
        cfg.apps = 400;
        cfg.duration_ms = 6 * 3600 * 1000;
    }
    eprintln!(
        "generating base population ({} apps, {}h)...",
        cfg.apps,
        cfg.duration_ms / 3_600_000
    );
    let base = SyntheticAzureTrace::generate(&cfg);

    let mut rows = Vec::new();
    for kind in SampleKind::all() {
        let sample = TraceSample::draw(kind, &base, 7);
        let st = sample.stats();
        rows.push(vec![
            kind.name().to_string(),
            st.functions.to_string(),
            st.invocations.to_string(),
            format!("{:.1} /s", st.reqs_per_sec),
            format!("{:.1} ms", st.avg_iat_ms),
        ]);
    }
    print_table(
        "Table 2: Azure-derived workload samples",
        &[
            "Trace",
            "Functions",
            "Num Invocations",
            "Reqs per sec",
            "Avg IAT",
        ],
        &rows,
    );
    println!(
        "\nPaper's values (their 24h sample of the real trace): Representative 392 fns / 1,348,162 invocations; Rare 1000 fns / 202,121; Random 200 fns / 4,291,250."
    );
    println!("Shape to hold: Representative ≫ Rare in per-function rate; Rare has the lowest aggregate rate.");
}
