//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper has a `src/bin/` harness that prints
//! the same rows or series the paper reports. The helpers here cover output
//! formatting, the policy/size sweep runner (Figs. 4–5), and the litmus
//! workload builders (Figs. 6–7).

use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_sim::{KeepaliveSim, SimConfig, SimOutcome};
use iluvatar_trace::azure::{FunctionProfile, TraceEvent};
use iluvatar_trace::functionbench::FbApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw exponential inter-arrivals with the given mean (Poisson process) —
/// bursts are what make keep-alive spare containers (and thus eviction
/// *choice*) matter in the litmus experiments.
fn poisson_arrivals(rng: &mut StdRng, mean_iat_ms: u64, duration_ms: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -(mean_iat_ms as f64) * u.ln();
        if t >= duration_ms as f64 {
            return out;
        }
        out.push(t as u64);
    }
}

/// Percentile over unsorted samples.
pub fn pctl(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    iluvatar_sync::stats::percentile(xs, q)
}

/// Read an env-var knob with default (harness scaling: `ILU_SCALE`, etc.).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `--full` was passed (paper-scale run; default is a quick run).
pub fn full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Print a header row followed by aligned numeric rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Run one (policy, cache size) cell of the Fig. 4/5 sweep.
pub fn sweep_cell(
    profiles: &[FunctionProfile],
    events: &[TraceEvent],
    policy: KeepalivePolicyKind,
    cache_gb: f64,
) -> SimOutcome {
    let cfg = SimConfig::new(policy, (cache_gb * 1024.0) as u64);
    KeepaliveSim::run(profiles.to_vec(), events, cfg)
}

/// The Fig. 4/5 cache-size x-axis, GB.
pub fn cache_sizes_gb(full: bool) -> Vec<f64> {
    if full {
        vec![5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0]
    } else {
        vec![5.0, 15.0, 30.0, 50.0, 80.0]
    }
}

/// A litmus workload: FunctionBench apps firing at fixed IATs for a given
/// duration, producing the merged time-sorted event stream (Figs. 6–7).
pub fn litmus_workload(
    apps: &[(FbApp, u64)], // (application, IAT ms)
    duration_ms: u64,
) -> (Vec<FunctionProfile>, Vec<TraceEvent>) {
    let profiles: Vec<FunctionProfile> = apps
        .iter()
        .map(|(app, iat)| {
            let (mem, run, init) = app.table3();
            FunctionProfile {
                fqdn: app.name().to_string(),
                app: 0,
                mean_iat_ms: *iat as f64,
                warm_ms: run - init,
                init_ms: init,
                memory_mb: mem,
                diurnal: false,
            }
        })
        .collect();
    let mut events = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x11707);
    for (idx, (_, iat)) in apps.iter().enumerate() {
        for t in poisson_arrivals(&mut rng, *iat, duration_ms) {
            events.push(TraceEvent {
                time_ms: t,
                func: idx as u32,
            });
        }
    }
    events.sort_by_key(|e| e.time_ms);
    (profiles, events)
}

/// A litmus workload with replicated applications: `groups` of
/// (app, copies, IAT ms) produce `copies` distinct functions each — larger
/// populations make eviction *choice* (not just pressure) matter.
pub fn replicated_litmus(
    groups: &[(FbApp, usize, u64)],
    duration_ms: u64,
) -> (Vec<FunctionProfile>, Vec<TraceEvent>) {
    let mut profiles = Vec::new();
    let mut events = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for (g, &(app, copies, iat)) in groups.iter().enumerate() {
        let (mem, run, init) = app.table3();
        for c in 0..copies {
            let idx = profiles.len() as u32;
            profiles.push(FunctionProfile {
                fqdn: format!("{}-{g}-{c}", app.name()),
                app: g as u32,
                mean_iat_ms: iat as f64,
                warm_ms: run - init,
                init_ms: init,
                memory_mb: mem,
                diurnal: false,
            });
            for t in poisson_arrivals(&mut rng, iat, duration_ms) {
                events.push(TraceEvent {
                    time_ms: t,
                    func: idx,
                });
            }
        }
    }
    events.sort_by_key(|e| e.time_ms);
    (profiles, events)
}

/// A cyclic litmus workload: phases rotate which function is hot.
pub fn cyclic_workload(
    apps: &[(FbApp, u64, u64)], // (app, hot IAT, cold IAT)
    phase_ms: u64,
    duration_ms: u64,
) -> (Vec<FunctionProfile>, Vec<TraceEvent>) {
    let base: Vec<(FbApp, u64)> = apps.iter().map(|&(a, hot, _)| (a, hot)).collect();
    let (profiles, _) = litmus_workload(&base, 0);
    let mut events = Vec::new();
    let n = apps.len() as u64;
    for (idx, &(_, hot, cold)) in apps.iter().enumerate() {
        let mut t = 0u64;
        while t < duration_ms {
            let phase = (t / phase_ms) % n;
            let iat = if phase == idx as u64 { hot } else { cold };
            events.push(TraceEvent {
                time_ms: t,
                func: idx as u32,
            });
            t += iat;
        }
    }
    events.sort_by_key(|e| e.time_ms);
    (profiles, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litmus_workload_paces_events() {
        let (profiles, events) = litmus_workload(
            &[(FbApp::FloatingPoint, 400), (FbApp::MlInference, 1500)],
            60_000,
        );
        assert_eq!(profiles.len(), 2);
        let fp_events = events.iter().filter(|e| e.func == 0).count();
        assert!(
            (100..=210).contains(&fp_events),
            "~150 expected, got {fp_events}"
        );
        let ml_events = events.iter().filter(|e| e.func == 1).count();
        assert!(
            (20..=65).contains(&ml_events),
            "~40 expected, got {ml_events}"
        );
        assert!(events.windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
    }

    #[test]
    fn cyclic_workload_rotates_hotness() {
        let (_, events) = cyclic_workload(
            &[
                (FbApp::WebServing, 100, 10_000),
                (FbApp::DiskBench, 100, 10_000),
            ],
            30_000,
            60_000,
        );
        // First phase: fn0 hot; second: fn1 hot.
        let first: Vec<_> = events.iter().filter(|e| e.time_ms < 30_000).collect();
        let second: Vec<_> = events.iter().filter(|e| e.time_ms >= 30_000).collect();
        let hot0 = first.iter().filter(|e| e.func == 0).count();
        let hot1 = second.iter().filter(|e| e.func == 1).count();
        assert!(hot0 > first.len() * 3 / 4);
        assert!(hot1 > second.len() * 3 / 4);
    }

    #[test]
    fn replicated_litmus_copies_functions() {
        let (profiles, events) = replicated_litmus(
            &[
                (FbApp::WebServing, 3, 2_000),
                (FbApp::MlInference, 2, 5_000),
            ],
            60_000,
        );
        assert_eq!(profiles.len(), 5);
        let f0 = events.iter().filter(|e| e.func == 0).count();
        assert!((15..=50).contains(&f0), "~30 expected, got {f0}");
        let names: std::collections::HashSet<_> = profiles.iter().map(|p| &p.fqdn).collect();
        assert_eq!(names.len(), 5, "distinct fqdns per copy");
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn sweep_cell_runs() {
        let (profiles, events) = litmus_workload(&[(FbApp::FloatingPoint, 5_000)], 10 * 60_000);
        let out = sweep_cell(&profiles, &events, KeepalivePolicyKind::Gdsf, 1.0);
        assert!(out.total > 0);
        assert!(out.cold >= 1);
    }
}
