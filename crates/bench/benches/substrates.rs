//! Criterion benchmarks of the concurrency substrates: the sharded map vs a
//! single-mutex map (the §5 claim that a concurrent associative map beats a
//! mutex for the container pool), queue operations, and CH-BL picks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use iluvatar_core::config::{QueueConfig, QueuePolicyKind};
use iluvatar_core::invocation::InvocationHandle;
use iluvatar_core::queue::{InvocationQueue, QueuedInvocation};
use iluvatar_lb::chbl::{ChBl, ChBlConfig};
use iluvatar_sync::ShardedMap;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

fn bench_shardmap_vs_mutex(c: &mut Criterion) {
    let mut g = c.benchmark_group("map_contention_8_threads");
    g.bench_function("sharded_map", |b| {
        b.iter_batched(
            || Arc::new(ShardedMap::<u64, u64>::new()),
            |m| {
                let threads: Vec<_> = (0..8)
                    .map(|t| {
                        let m = Arc::clone(&m);
                        thread::spawn(move || {
                            for i in 0..2_000u64 {
                                m.insert(t * 100_000 + i, i);
                                m.get(&(t * 100_000 + i));
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mutex_hashmap", |b| {
        b.iter_batched(
            || Arc::new(Mutex::new(HashMap::<u64, u64>::new())),
            |m| {
                let threads: Vec<_> = (0..8)
                    .map(|t| {
                        let m = Arc::clone(&m);
                        thread::spawn(move || {
                            for i in 0..2_000u64 {
                                m.lock().insert(t * 100_000 + i, i);
                                let _ = m.lock().get(&(t * 100_000 + i)).copied();
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    let q = InvocationQueue::new(QueueConfig {
        policy: QueuePolicyKind::Eedf,
        ..Default::default()
    });
    c.bench_function("queue/push_pop_eedf", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let (tx, _h) = InvocationHandle::pair();
            q.push(QueuedInvocation {
                fqdn: "f-1".into(),
                args: String::new(),
                trace_id: 0,
                arrived_at: t,
                expected_exec_ms: (t % 100) as f64,
                iat_ms: 10.0,
                expect_warm: true,
                tenant: None,
                tenant_weight: 1.0,
                result_tx: tx,
            })
            .unwrap();
            q.try_pop().unwrap()
        })
    });

    // The DRR fair queue: same push/pop cycle, alternating tenants, so the
    // cost of the sub-queue bookkeeping shows up next to the heap policies.
    let q = InvocationQueue::new(QueueConfig {
        policy: QueuePolicyKind::Drr,
        ..Default::default()
    });
    c.bench_function("queue/push_pop_drr", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let (tx, _h) = InvocationHandle::pair();
            q.push(QueuedInvocation {
                fqdn: "f-1".into(),
                args: String::new(),
                trace_id: 0,
                arrived_at: t,
                expected_exec_ms: (t % 100) as f64,
                iat_ms: 10.0,
                expect_warm: true,
                tenant: Some(if t.is_multiple_of(2) {
                    "gold".into()
                } else {
                    "bronze".into()
                }),
                tenant_weight: if t.is_multiple_of(2) { 3.0 } else { 1.0 },
                result_tx: tx,
            })
            .unwrap();
            q.try_pop().unwrap()
        })
    });
}

fn bench_chbl_pick(c: &mut Criterion) {
    let ring = ChBl::new(32, ChBlConfig::default());
    let loads: Vec<f64> = (0..32).map(|i| (i % 7) as f64).collect();
    let mut i = 0u64;
    c.bench_function("chbl/pick_32_workers", |b| {
        b.iter(|| {
            i += 1;
            ring.pick(&format!("fn-{}", i % 500), &loads)
        })
    });
}

criterion_group!(
    benches,
    bench_shardmap_vs_mutex,
    bench_queue_ops,
    bench_chbl_pick
);
criterion_main!(benches);
