//! Criterion benchmarks of keep-alive policy operations and the
//! discrete-event simulator's replay throughput — simulation speed is a
//! first-class feature (§3.4: "simulate large systems and workloads").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_core::policies::{make_policy, EntryMeta};
use iluvatar_sim::{KeepaliveSim, SimConfig};
use iluvatar_trace::azure::{AzureTraceConfig, SyntheticAzureTrace};

fn bench_policy_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_access_evict");
    for kind in KeepalivePolicyKind::all() {
        g.bench_function(kind.name(), |b| {
            let mut policy = make_policy(kind, 600_000);
            let mut entries: Vec<EntryMeta> = (0..64)
                .map(|i| {
                    let mut e = EntryMeta::new(format!("f{i}-1"), 64 + i * 8, 100.0 + i as f64, 0);
                    policy.on_insert(&mut e, 0);
                    e
                })
                .collect();
            let mut t = 1u64;
            b.iter(|| {
                t += 1;
                let i = (t % 64) as usize;
                policy.on_arrival(&entries[i].fqdn.clone(), t);
                policy.on_access(&mut entries[i], t);
                policy.priority(&entries[i], t)
            })
        });
    }
    g.finish();
}

fn bench_sim_replay(c: &mut Criterion) {
    // A small trace replayed end-to-end: events/second of simulation.
    let trace = SyntheticAzureTrace::generate(&AzureTraceConfig {
        apps: 100,
        duration_ms: 3_600_000,
        seed: 99,
        diurnal_fraction: 0.0,
        rate_scale: 1.0,
    });
    let mut g = c.benchmark_group("keepalive_sim_replay_1h_100apps");
    g.sample_size(10);
    for kind in [
        KeepalivePolicyKind::Gdsf,
        KeepalivePolicyKind::Ttl,
        KeepalivePolicyKind::Hist,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter_batched(
                || (trace.profiles.clone(), trace.events.clone()),
                |(profiles, events)| {
                    KeepaliveSim::run(profiles, &events, SimConfig::new(kind, 4_096))
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policy_ops, bench_sim_replay);
criterion_main!(benches);
