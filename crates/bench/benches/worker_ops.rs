//! Criterion microbenchmarks of the worker's invocation hot path — the
//! per-operation costs behind Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use iluvatar::prelude::*;
use iluvatar_core::config::ConcurrencyConfig;
use std::sync::Arc;

fn worker_with_sim() -> Arc<Worker> {
    let clock = SystemClock::shared();
    // Zero-latency backend: the benchmark isolates control-plane cost.
    let backend = Arc::new(SimBackend::new(
        Arc::clone(&clock),
        SimBackendConfig {
            time_scale: 0.0,
            ..Default::default()
        },
    ));
    let cfg = WorkerConfig {
        name: "bench".into(),
        cores: 8,
        memory_mb: 8 * 1024,
        concurrency: ConcurrencyConfig {
            limit: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    let w = Arc::new(Worker::new(cfg, backend, clock));
    w.register(FunctionSpec::new("f", "1").with_timing(0, 0))
        .unwrap();
    w.invoke("f-1", "{}").unwrap(); // prime the warm container
    w
}

fn bench_invoke(c: &mut Criterion) {
    let w = worker_with_sim();
    c.bench_function("worker/warm_invoke_e2e", |b| {
        b.iter(|| {
            let r = w.invoke("f-1", "{}").unwrap();
            assert!(!r.cold);
            r
        })
    });
}

fn bench_async_submit_and_wait(c: &mut Criterion) {
    let w = worker_with_sim();
    c.bench_function("worker/async_invoke", |b| {
        b.iter(|| w.async_invoke("f-1", "{}").unwrap().wait().unwrap())
    });
}

fn bench_registration(c: &mut Criterion) {
    let w = worker_with_sim();
    let mut i = 0u64;
    c.bench_function("worker/register", |b| {
        b.iter(|| {
            i += 1;
            w.register(FunctionSpec::new(format!("reg{i}"), "1"))
                .unwrap()
        })
    });
}

fn bench_status(c: &mut Criterion) {
    let w = worker_with_sim();
    c.bench_function("worker/status", |b| b.iter(|| w.status()));
}

criterion_group!(
    benches,
    bench_invoke,
    bench_async_submit_and_wait,
    bench_registration,
    bench_status
);
criterion_main!(benches);
