//! An OpenWhisk-architecture baseline control plane.
//!
//! §2.2 describes the architecture this crate models: "user requests ... go
//! through a reverse proxy (NGINX) to the central controller ... The
//! controller puts the function invocation request into a shared Apache
//! Kafka queue. Inside the worker, the invoker service pulls function
//! invocations from the Kafka queue ... OpenWhisk logs function results in a
//! CouchDB instance. Importantly, both Kafka and CouchDB are on the critical
//! path, and add 100s of ms to invocation latency. All of these, combined
//! with the JVM GC ... results in large and unpredictable latency spikes."
//!
//! The model is an executable latency/behaviour substitute for the real
//! Scala system (which cannot be vendored into a Rust workspace):
//!
//! * every invocation pays controller + Kafka costs, with the shared queue
//!   under one contended lock;
//! * a fixed pool of invoker slots pulls from the queue — CPU is
//!   overcommitted, so concurrent executions inflate each other
//!   (proportional-share interference);
//! * a CouchDB activation-record write (right-skewed, up to ~0.5 s under
//!   load) sits on the critical path;
//! * a JVM GC thread periodically stops the world;
//! * keep-alive is the classic 10-minute TTL with LRU-order eviction,
//!   reusing the identical [`iluvatar_core::pool::ContainerPool`] machinery
//!   so the *only* difference from FaasCache in keep-alive experiments is
//!   the policy;
//! * memory is never overcommitted; requests that cannot be placed are
//!   buffered briefly and then **dropped**, matching "OpenWhisk buffers and
//!   eventually drops requests if it cannot fulfill them".

pub mod model;

pub use model::{OpenWhiskConfig, OpenWhiskModel, OwResult, OwStats};
