//! The threaded OpenWhisk model.

use crossbeam::channel::{bounded, Sender};
use iluvatar_containers::types::{Container, SharedContainer};
use iluvatar_containers::FunctionSpec;
use iluvatar_core::config::KeepalivePolicyKind;
use iluvatar_core::policies::make_policy;
use iluvatar_core::pool::{ContainerPool, EvictSink};
use iluvatar_sync::{Clock, ShardedMap};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Model parameters, calibrated to the latencies §2–§3 report.
#[derive(Debug, Clone)]
pub struct OpenWhiskConfig {
    /// Server cores; interference inflates execution beyond this.
    pub cores: usize,
    /// Invoker slots (CPU overcommitment: slots > cores).
    pub invoker_slots: usize,
    /// Keep-alive cache memory, MB (never overcommitted).
    pub memory_mb: u64,
    /// Keep-alive TTL, ms (default 10 minutes).
    pub ttl_ms: u64,
    /// NGINX + controller median latency, ms.
    pub controller_ms: f64,
    /// Kafka enqueue/dequeue median latency, ms (paid under the shared
    /// queue lock — the contention bottleneck).
    pub kafka_ms: f64,
    /// CouchDB activation-record write median, ms. Right-skewed with a
    /// heavy tail ("up to half a second").
    pub couchdb_ms: f64,
    /// JVM GC: pause length and period, ms.
    pub gc_pause_ms: u64,
    pub gc_period_ms: u64,
    /// Shared queue capacity; beyond it requests are dropped.
    pub queue_capacity: usize,
    /// How long a request may wait for memory before being dropped, ms.
    pub placement_timeout_ms: u64,
    /// Multiplier applied to all modelled latencies (time compression).
    pub time_scale: f64,
    pub seed: u64,
    /// Keep-alive policy. Vanilla OpenWhisk is `Ttl`; installing `Gdsf`
    /// here yields FaasCache — "modified OpenWhisk" — which is exactly the
    /// paper's Figures 6–7 comparison.
    pub keepalive: KeepalivePolicyKind,
    /// Free-memory buffer the background sweep maintains, MB: the sweeper
    /// evicts idle containers until at least this much pool memory is
    /// free, mirroring the worker pool's eager-eviction headroom.
    pub free_buffer_mb: u64,
}

impl Default for OpenWhiskConfig {
    fn default() -> Self {
        Self {
            cores: 48,
            invoker_slots: 96,
            memory_mb: 48 * 1024,
            ttl_ms: 10 * 60 * 1000,
            controller_ms: 2.5,
            kafka_ms: 4.0,
            couchdb_ms: 18.0,
            gc_pause_ms: 120,
            gc_period_ms: 2_500,
            queue_capacity: 256,
            placement_timeout_ms: 2_000,
            time_scale: 1.0,
            seed: 0x0111,
            keepalive: KeepalivePolicyKind::Ttl,
            free_buffer_mb: 0,
        }
    }
}

/// Completed (or dropped) invocation as the model reports it.
#[derive(Debug, Clone)]
pub struct OwResult {
    pub e2e_ms: u64,
    pub exec_ms: u64,
    pub cold: bool,
    pub dropped: bool,
}

/// Aggregate counters.
#[derive(Debug, Clone, Default)]
pub struct OwStats {
    pub completed: u64,
    pub warm: u64,
    pub cold: u64,
    pub dropped: u64,
}

struct Work {
    fqdn: String,
    enqueued_at_ms: u64,
    tx: Sender<OwResult>,
}

struct SharedQueue {
    q: Mutex<VecDeque<Work>>,
    cv: Condvar,
}

struct Inner {
    cfg: OpenWhiskConfig,
    clock: Arc<dyn Clock>,
    registry: ShardedMap<String, FunctionSpec>,
    pool: ContainerPool,
    queue: SharedQueue,
    /// The JVM: GC takes the write lock, everyone else reads.
    jvm: RwLock<()>,
    rng: Mutex<StdRng>,
    running: AtomicUsize,
    warm: AtomicU64,
    cold: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
    stop: AtomicBool,
}

impl Inner {
    fn scaled(&self, ms: f64) -> u64 {
        (ms * self.cfg.time_scale).round().max(0.0) as u64
    }

    /// Right-skewed latency sample with the given median (log-normal,
    /// sigma≈0.8 gives the reported multi-hundred-ms tails).
    fn skewed(&self, median_ms: f64, sigma: f64) -> f64 {
        if median_ms <= 0.0 {
            return 0.0;
        }
        let mut rng = self.rng.lock();
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (median_ms.ln() + sigma * z).exp()
    }

    /// Pass through the JVM: GC stalls everyone.
    fn jvm_section(&self) {
        let _read = self.jvm.read();
    }
}

/// The runnable OpenWhisk model.
pub struct OpenWhiskModel {
    inner: Arc<Inner>,
    invokers: Vec<JoinHandle<()>>,
    gc: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl OpenWhiskModel {
    pub fn new(cfg: OpenWhiskConfig, clock: Arc<dyn Clock>) -> Self {
        let sink: EvictSink = Arc::new(|_c: SharedContainer| {});
        let pool = ContainerPool::new(
            cfg.memory_mb,
            make_policy(cfg.keepalive, cfg.ttl_ms),
            Arc::clone(&clock),
            sink,
        );
        let inner = Arc::new(Inner {
            registry: ShardedMap::new(),
            pool,
            queue: SharedQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            jvm: RwLock::new(()),
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            running: AtomicUsize::new(0),
            warm: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            clock,
            cfg,
        });

        // Background keep-alive expiry/eviction sweep (matches the pool's
        // expectations; vanilla OpenWhisk prunes its TTL pool periodically).
        let sweeper = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ow-keepalive-sweep".into())
                .spawn(move || {
                    let period = Duration::from_millis(inner.scaled(500.0).max(10));
                    while !inner.stop.load(Ordering::Relaxed) {
                        std::thread::sleep(period);
                        inner.pool.background_sweep(inner.cfg.free_buffer_mb);
                    }
                })
                .expect("spawn sweeper")
        };

        let invokers = (0..inner.cfg.invoker_slots)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ow-invoker-{i}"))
                    .spawn(move || invoker_loop(inner))
                    .expect("spawn invoker")
            })
            .collect();

        // JVM GC: periodic stop-the-world with jittered period.
        let gc = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ow-jvm-gc".into())
                .spawn(move || gc_loop(inner))
                .expect("spawn gc")
        };

        Self {
            inner,
            invokers,
            gc: Some(gc),
            sweeper: Some(sweeper),
        }
    }

    pub fn register(&self, spec: FunctionSpec) {
        self.inner.registry.insert(spec.fqdn.clone(), spec);
    }

    /// Blocking invocation through the whole modelled pipeline.
    pub fn invoke(&self, fqdn: &str) -> OwResult {
        let inner = &self.inner;
        let t0 = inner.clock.now_ms();
        // NGINX + controller (load-balancing) latency.
        inner.jvm_section();
        let controller = inner.skewed(inner.cfg.controller_ms, 0.4);
        inner.clock.sleep_ms(inner.scaled(controller));

        // Kafka enqueue: the shared, contended queue.
        let (tx, rx) = bounded(1);
        {
            let kafka = inner.skewed(inner.cfg.kafka_ms, 0.5);
            let mut q = inner.queue.q.lock();
            if q.len() >= inner.cfg.queue_capacity {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                return OwResult {
                    e2e_ms: inner.clock.elapsed_ms(t0),
                    exec_ms: 0,
                    cold: false,
                    dropped: true,
                };
            }
            // The enqueue cost is paid while HOLDING the queue lock — this
            // is the shared-queue bottleneck of §2.3.
            inner.clock.sleep_ms(inner.scaled(kafka));
            q.push_back(Work {
                fqdn: fqdn.to_string(),
                enqueued_at_ms: t0,
                tx,
            });
            inner.queue.cv.notify_one();
        }
        match rx.recv() {
            Ok(r) => r,
            Err(_) => OwResult {
                e2e_ms: inner.clock.elapsed_ms(t0),
                exec_ms: 0,
                cold: false,
                dropped: true,
            },
        }
    }

    pub fn stats(&self) -> OwStats {
        OwStats {
            completed: self.inner.completed.load(Ordering::Relaxed),
            warm: self.inner.warm.load(Ordering::Relaxed),
            cold: self.inner.cold.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
        }
    }

    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.queue.cv.notify_all();
        for h in self.invokers.drain(..) {
            let _ = h.join();
        }
        if let Some(g) = self.gc.take() {
            let _ = g.join();
        }
        if let Some(sw) = self.sweeper.take() {
            let _ = sw.join();
        }
    }
}

impl Drop for OpenWhiskModel {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn gc_loop(inner: Arc<Inner>) {
    let period = Duration::from_millis(inner.scaled(inner.cfg.gc_period_ms as f64).max(1));
    while !inner.stop.load(Ordering::Relaxed) {
        std::thread::sleep(period);
        if inner.stop.load(Ordering::Relaxed) {
            return;
        }
        let pause = inner.skewed(inner.cfg.gc_pause_ms as f64, 0.6);
        let _world = inner.jvm.write();
        std::thread::sleep(Duration::from_millis(inner.scaled(pause)));
    }
}

fn invoker_loop(inner: Arc<Inner>) {
    loop {
        let work = {
            let mut q = inner.queue.q.lock();
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                inner.queue.cv.wait_for(&mut q, Duration::from_millis(20));
            }
        };
        // Kafka fetch latency (invoker side).
        inner.jvm_section();
        inner
            .clock
            .sleep_ms(inner.scaled(inner.skewed(inner.cfg.kafka_ms * 0.5, 0.5)));
        execute(&inner, work);
    }
}

fn execute(inner: &Arc<Inner>, work: Work) {
    let spec = match inner.registry.get(&work.fqdn) {
        Some(s) => s,
        None => {
            let _ = work.tx.send(OwResult {
                e2e_ms: inner.clock.elapsed_ms(work.enqueued_at_ms),
                exec_ms: 0,
                cold: false,
                dropped: true,
            });
            return;
        }
    };

    // Container placement: warm hit, else cold start if memory permits.
    inner.pool.note_arrival(&work.fqdn);
    let (container, cold) = match inner.pool.acquire(&work.fqdn) {
        Some(c) => (c, false),
        None => {
            let mb = spec.limits.memory_mb;
            let deadline =
                inner.clock.now_ms() + inner.scaled(inner.cfg.placement_timeout_ms as f64);
            let mut placed = false;
            // Buffer the request, retrying placement until the timeout.
            while inner.clock.now_ms() <= deadline {
                if inner.pool.reserve(mb) {
                    placed = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !placed {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                let _ = work.tx.send(OwResult {
                    e2e_ms: inner.clock.elapsed_ms(work.enqueued_at_ms),
                    exec_ms: 0,
                    cold: false,
                    dropped: true,
                });
                return;
            }
            // Docker cold start (~400ms class, right-skewed).
            inner.clock.sleep_ms(inner.scaled(inner.skewed(400.0, 0.3)));
            (Arc::new(Container::new(&spec.fqdn, spec.limits)), true)
        }
    };

    // Execute with CPU-overcommit interference: running beyond the core
    // count proportionally inflates everyone (processor sharing).
    let running = inner.running.fetch_add(1, Ordering::SeqCst) + 1;
    let inflation = (running as f64 / inner.cfg.cores as f64).max(1.0);
    let base_exec = if cold {
        spec.cold_exec_ms()
    } else {
        spec.warm_exec_ms
    };
    // Report the time actually charged (post-scaling), keeping e2e − exec a
    // consistent overhead at any time compression.
    let exec = inner.scaled(base_exec as f64 * inflation);
    inner.clock.sleep_ms(exec);
    inner.running.fetch_sub(1, Ordering::SeqCst);

    // CouchDB activation-record write — on the critical path, long tail.
    inner.jvm_section();
    inner
        .clock
        .sleep_ms(inner.scaled(inner.skewed(inner.cfg.couchdb_ms, 0.9)));

    inner.pool.release(container, spec.init_ms as f64);
    if cold {
        inner.cold.fetch_add(1, Ordering::Relaxed);
    } else {
        inner.warm.fetch_add(1, Ordering::Relaxed);
    }
    inner.completed.fetch_add(1, Ordering::Relaxed);
    let _ = work.tx.send(OwResult {
        e2e_ms: inner.clock.elapsed_ms(work.enqueued_at_ms),
        exec_ms: exec,
        cold,
        dropped: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_containers::ResourceLimits;
    use iluvatar_sync::SystemClock;

    fn model(cfg: OpenWhiskConfig) -> OpenWhiskModel {
        OpenWhiskModel::new(cfg, SystemClock::shared())
    }

    fn fast_cfg() -> OpenWhiskConfig {
        OpenWhiskConfig {
            cores: 4,
            invoker_slots: 8,
            memory_mb: 1024,
            time_scale: 0.05,
            gc_period_ms: 500,
            gc_pause_ms: 40,
            ..Default::default()
        }
    }

    fn spec(name: &str, warm: u64, init: u64, mb: u64) -> FunctionSpec {
        FunctionSpec::new(name, "1")
            .with_timing(warm, init)
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: mb,
            })
    }

    #[test]
    fn cold_then_warm() {
        let m = model(fast_cfg());
        m.register(spec("f", 100, 400, 128));
        let r1 = m.invoke("f-1");
        assert!(!r1.dropped);
        assert!(r1.cold);
        let r2 = m.invoke("f-1");
        assert!(!r2.cold, "keep-alive made the second warm");
        let st = m.stats();
        assert_eq!(st.completed, 2);
        assert_eq!((st.warm, st.cold), (1, 1));
    }

    #[test]
    fn overhead_visibly_larger_than_iluvatar_class() {
        let m = model(fast_cfg());
        m.register(spec("f", 100, 0, 64));
        m.invoke("f-1"); // cold
        let r = m.invoke("f-1");
        // At time_scale 0.05, the controller+kafka+couch path still costs
        // >0 ms; at scale 1.0 this is the 10ms+ overhead of Figure 1.
        assert!(r.e2e_ms >= r.exec_ms);
        assert!(!r.dropped);
    }

    #[test]
    fn free_buffer_sweeps_idle_containers() {
        let mut cfg = fast_cfg();
        cfg.memory_mb = 256;
        // The buffer demands more free memory than one idle 128 MB
        // container leaves: the background sweep must evict it.
        cfg.free_buffer_mb = 200;
        let m = model(cfg);
        m.register(spec("f", 50, 100, 128));
        let r1 = m.invoke("f-1");
        assert!(r1.cold);
        // Give the sweeper (25 ms period at this time_scale) a few rounds.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let r2 = m.invoke("f-1");
        assert!(r2.cold, "buffer sweep evicted the idle container");
        assert_eq!(m.stats().cold, 2);
    }

    #[test]
    fn unregistered_function_dropped() {
        let m = model(fast_cfg());
        let r = m.invoke("ghost-1");
        assert!(r.dropped);
    }

    #[test]
    fn memory_pressure_drops_requests() {
        let mut cfg = fast_cfg();
        cfg.memory_mb = 128; // room for exactly one container
        cfg.placement_timeout_ms = 100;
        let m = model(cfg);
        m.register(spec("a", 400, 0, 128));
        m.register(spec("b", 400, 0, 128));
        // Run a and b concurrently: only one fits; the other must drop.
        let m = Arc::new(m);
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || m2.invoke("a-1"));
        std::thread::sleep(Duration::from_millis(10));
        let rb = m.invoke("b-1");
        let ra = t.join().unwrap();
        assert!(
            ra.dropped != rb.dropped || !ra.dropped,
            "at most one of the two can complete while the other holds all memory"
        );
        assert!(m.stats().dropped >= 1);
    }

    #[test]
    fn overcommit_inflates_execution() {
        let mut cfg = fast_cfg();
        cfg.cores = 1;
        cfg.invoker_slots = 4;
        cfg.memory_mb = 8192;
        let m = Arc::new(model(cfg));
        m.register(spec("f", 200, 0, 64));
        m.invoke("f-1"); // warm one container up
                         // Fire 4 concurrent invocations on 1 core: inflation ≥ 2 for some.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.invoke("f-1"))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Base exec at time_scale 0.05 is 10ms; interference must inflate
        // at least one concurrent run beyond it.
        let max_exec = results.iter().map(|r| r.exec_ms).max().unwrap();
        assert!(
            max_exec > 10,
            "interference must inflate exec beyond the 10ms scaled base, got {max_exec}"
        );
    }

    #[test]
    fn queue_capacity_drops() {
        let mut cfg = fast_cfg();
        cfg.queue_capacity = 0;
        let m = model(cfg);
        m.register(spec("f", 10, 0, 64));
        let r = m.invoke("f-1");
        assert!(r.dropped, "zero-capacity queue drops immediately");
    }
}
