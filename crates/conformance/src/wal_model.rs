//! Reference model for the write-ahead log / recovery contract.
//!
//! Per-invocation guarded state machine, keyed by trace id:
//!
//! ```text
//!            enqueued            dequeued            completed
//!   Absent ───────────▶ Pending ───────────▶ InFlight ─────────▶ Completed
//!      │                   │    (repeatable: at-least-once)          ▲
//!      │ shed              └──────────── completed ─────────────────┘
//!      ▼                        (push-full / shutdown retraction)
//!    Shed
//! ```
//!
//! Rules enforced (the names are the stable `ModelError::rule` strings):
//!
//! * `double-enqueue` — an id is accepted (Enqueued) at most once per
//!   snapshot epoch.
//! * `dequeue-of-unknown` / `complete-of-unknown` / `shed-of-known` — every
//!   record refers to an id in the legal prior state.
//! * `double-complete` — exactly-once accounting: one Completed per id.
//! * `append-after-poison` — a poisoned log accepts no further records.
//! * `degraded-reentry` / `rearm-without-degrade` — the degraded-mode
//!   gauge is a two-state machine: `wal_io:degraded` and `wal_io:rearmed`
//!   must strictly alternate per source.
//!
//! The model also keeps per-tenant books mirroring `wal::replay` (admitted /
//! served / throttled / shed) so callers can differentially compare the
//! model's accounting against `ReplayState` or live `tenant_stats()`.

use crate::ModelError;
use std::collections::{BTreeMap, BTreeSet};

/// Lifecycle of one invocation id, as far as the WAL can observe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvState {
    /// Accepted: `Enqueued` is durable, the invocation must eventually be
    /// completed or survive in the pending set.
    Pending,
    /// Dequeued at least once; execution may die and be re-driven
    /// (at-least-once), so `dequeued` from here is legal and idempotent.
    InFlight,
    /// Finished either way; terminal for accounting (exactly-once).
    Completed,
    /// Rejected at admission; never entered the pending set.
    Shed,
}

/// Per-tenant accounting mirror of `wal::replay`'s books.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBook {
    pub admitted: u64,
    pub served: u64,
    pub throttled: u64,
    pub shed: u64,
}

/// Metadata remembered from an `Enqueued` record, so downstream models
/// (DRR) can be driven from the event stream alone.
#[derive(Debug, Clone, Default)]
pub struct InvMeta {
    pub tenant: Option<String>,
    pub cost_ms: f64,
    pub weight: f64,
}

/// The executable WAL/recovery reference model.
#[derive(Debug, Default)]
pub struct WalModel {
    state: BTreeMap<u64, InvState>,
    meta: BTreeMap<u64, InvMeta>,
    books: BTreeMap<String, TenantBook>,
    poisoned: BTreeSet<String>,
    degraded: BTreeSet<String>,
    pub records: u64,
}

fn tenant_key(tenant: Option<&str>) -> String {
    tenant.unwrap_or("default").to_string()
}

impl WalModel {
    pub fn new() -> Self {
        Self::default()
    }

    fn guard_poison(&self, source: &str, op: &str) -> Result<(), ModelError> {
        if self.poisoned.contains(source) {
            return Err(ModelError::new(
                "append-after-poison",
                format!("source `{source}` appended `{op}` after its WAL was poisoned"),
            ));
        }
        Ok(())
    }

    /// `Enqueued { inv }` landed: Absent → Pending.
    pub fn enqueued(
        &mut self,
        source: &str,
        id: u64,
        tenant: Option<&str>,
        cost_ms: f64,
        weight: f64,
    ) -> Result<(), ModelError> {
        self.guard_poison(source, "enqueued")?;
        self.records += 1;
        match self.state.get(&id) {
            None => {
                self.state.insert(id, InvState::Pending);
                self.meta.insert(
                    id,
                    InvMeta {
                        tenant: tenant.map(str::to_string),
                        cost_ms,
                        weight,
                    },
                );
                self.books.entry(tenant_key(tenant)).or_default().admitted += 1;
                Ok(())
            }
            Some(s) => Err(ModelError::new(
                "double-enqueue",
                format!("id {id} enqueued while already {s:?}"),
            )),
        }
    }

    /// `Dequeued { id }` landed: Pending|InFlight → InFlight. Repeats are
    /// legal (at-least-once re-drive after recovery).
    pub fn dequeued(&mut self, source: &str, id: u64) -> Result<(), ModelError> {
        self.guard_poison(source, "dequeued")?;
        self.records += 1;
        match self.state.get(&id) {
            Some(InvState::Pending) | Some(InvState::InFlight) => {
                self.state.insert(id, InvState::InFlight);
                Ok(())
            }
            None => Err(ModelError::new(
                "dequeue-of-unknown",
                format!("id {id} dequeued but was never accepted (no durable Enqueued)"),
            )),
            Some(s) => Err(ModelError::new(
                "dequeue-of-terminal",
                format!("id {id} dequeued while already {s:?}"),
            )),
        }
    }

    /// `Completed { id, ok }` landed: Pending|InFlight → Completed, exactly
    /// once. (Pending → Completed covers push-full / shutdown retractions,
    /// which complete without ever dequeuing.)
    pub fn completed(
        &mut self,
        source: &str,
        id: u64,
        ok: bool,
        tenant: Option<&str>,
    ) -> Result<(), ModelError> {
        self.guard_poison(source, "completed")?;
        self.records += 1;
        match self.state.get(&id) {
            Some(InvState::Pending) | Some(InvState::InFlight) => {
                self.state.insert(id, InvState::Completed);
                if ok {
                    self.books.entry(tenant_key(tenant)).or_default().served += 1;
                }
                Ok(())
            }
            Some(InvState::Completed) => Err(ModelError::new(
                "double-complete",
                format!("id {id} completed twice — exactly-once accounting broken"),
            )),
            Some(InvState::Shed) => Err(ModelError::new(
                "complete-of-shed",
                format!("id {id} completed but was shed at admission"),
            )),
            None => Err(ModelError::new(
                "complete-of-unknown",
                format!("id {id} completed but was never accepted (no durable Enqueued)"),
            )),
        }
    }

    /// `Shed { id, throttled }` landed: Absent → Shed. A shed id never
    /// entered the pending set, so any prior state is a violation.
    pub fn shed(
        &mut self,
        source: &str,
        id: u64,
        tenant: Option<&str>,
        throttled: bool,
    ) -> Result<(), ModelError> {
        self.guard_poison(source, "shed")?;
        self.records += 1;
        match self.state.get(&id) {
            None => {
                self.state.insert(id, InvState::Shed);
                let book = self.books.entry(tenant_key(tenant)).or_default();
                if throttled {
                    book.throttled += 1;
                } else {
                    book.shed += 1;
                }
                Ok(())
            }
            Some(s) => Err(ModelError::new(
                "shed-of-known",
                format!("id {id} shed while already {s:?}"),
            )),
        }
    }

    /// A `Snapshot` record: authoritative reset of the pending set (replay
    /// restarts from here, so the model does too). Ids in `pending` become
    /// Pending/InFlight; everything else is forgotten, matching
    /// `wal::replay`'s epoch reset of its dedup sets.
    pub fn snapshot(&mut self, source: &str, pending: &[(u64, bool)]) -> Result<(), ModelError> {
        self.guard_poison(source, "snapshot")?;
        self.records += 1;
        self.state.clear();
        for &(id, dequeued) in pending {
            self.state.insert(
                id,
                if dequeued {
                    InvState::InFlight
                } else {
                    InvState::Pending
                },
            );
        }
        Ok(())
    }

    /// The WAL for `source` was poisoned (kill). Later records from that
    /// source are `append-after-poison` violations.
    pub fn poison(&mut self, source: &str) {
        self.poisoned.insert(source.to_string());
    }

    /// Clear the poison for `source` — a recovered incarnation reopens the
    /// log legitimately.
    pub fn unpoison(&mut self, source: &str) {
        self.poisoned.remove(source);
        // A recovered incarnation reopens on a fresh segment, never
        // degraded.
        self.degraded.remove(source);
    }

    pub fn is_poisoned(&self, source: &str) -> bool {
        self.poisoned.contains(source)
    }

    /// `wal_io:degraded`: the source's WAL entered degraded (non-durable)
    /// mode. The Wal emits this only on the transition, so seeing it while
    /// already degraded means the emitter's state machine is broken.
    pub fn enter_degraded(&mut self, source: &str) -> Result<(), ModelError> {
        if !self.degraded.insert(source.to_string()) {
            return Err(ModelError::new(
                "degraded-reentry",
                format!("source `{source}` entered degraded mode while already degraded"),
            ));
        }
        Ok(())
    }

    /// `wal_io:rearmed`: the source's WAL re-armed onto a fresh segment.
    pub fn rearmed(&mut self, source: &str) -> Result<(), ModelError> {
        if !self.degraded.remove(source) {
            return Err(ModelError::new(
                "rearm-without-degrade",
                format!("source `{source}` re-armed without being degraded"),
            ));
        }
        Ok(())
    }

    /// Is the source currently serving non-durably? Stream rules that
    /// demand durable records (`accepted-not-durable`,
    /// `result-before-durable`) are relaxed inside this window — that is
    /// exactly what degraded mode advertises.
    pub fn is_degraded(&self, source: &str) -> bool {
        self.degraded.contains(source)
    }

    pub fn state_of(&self, id: u64) -> Option<InvState> {
        self.state.get(&id).copied()
    }

    pub fn meta_of(&self, id: u64) -> Option<&InvMeta> {
        self.meta.get(&id)
    }

    /// Ids accepted but not yet terminal — must match `ReplayState::pending`
    /// after replaying the same log.
    pub fn pending_ids(&self) -> Vec<u64> {
        self.state
            .iter()
            .filter(|(_, s)| matches!(s, InvState::Pending | InvState::InFlight))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Per-tenant accounting books accumulated from transitions (tail
    /// mutations only — snapshot baselines are the caller's business).
    pub fn books(&self) -> &BTreeMap<String, TenantBook> {
        &self.books
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_and_at_least_once() {
        let mut m = WalModel::new();
        m.enqueued("w", 1, Some("a"), 10.0, 1.0).unwrap();
        m.dequeued("w", 1).unwrap();
        // Re-drive after a crash: a second dequeue is legal.
        m.dequeued("w", 1).unwrap();
        m.completed("w", 1, true, Some("a")).unwrap();
        assert_eq!(m.state_of(1), Some(InvState::Completed));
        assert_eq!(
            m.books()["a"],
            TenantBook {
                admitted: 1,
                served: 1,
                throttled: 0,
                shed: 0
            }
        );
    }

    #[test]
    fn exactly_once_accounting() {
        let mut m = WalModel::new();
        m.enqueued("w", 1, None, 1.0, 1.0).unwrap();
        m.dequeued("w", 1).unwrap();
        m.completed("w", 1, true, None).unwrap();
        let err = m.completed("w", 1, true, None).unwrap_err();
        assert_eq!(err.rule, "double-complete");
    }

    #[test]
    fn accepted_means_durable() {
        let mut m = WalModel::new();
        assert_eq!(m.dequeued("w", 7).unwrap_err().rule, "dequeue-of-unknown");
        assert_eq!(
            m.completed("w", 7, false, None).unwrap_err().rule,
            "complete-of-unknown"
        );
    }

    #[test]
    fn push_full_retraction_completes_from_pending() {
        let mut m = WalModel::new();
        m.enqueued("w", 3, Some("b"), 5.0, 2.0).unwrap();
        // Queue rejected the push: Completed(false) without a Dequeued.
        m.completed("w", 3, false, Some("b")).unwrap();
        assert_eq!(m.books()["b"].served, 0);
    }

    #[test]
    fn poison_blocks_appends_until_recovery() {
        let mut m = WalModel::new();
        m.enqueued("w", 1, None, 1.0, 1.0).unwrap();
        m.poison("w");
        assert_eq!(
            m.completed("w", 1, true, None).unwrap_err().rule,
            "append-after-poison"
        );
        m.unpoison("w");
        m.completed("w", 1, true, None).unwrap();
    }

    #[test]
    fn snapshot_resets_the_epoch() {
        let mut m = WalModel::new();
        m.enqueued("w", 1, None, 1.0, 1.0).unwrap();
        m.completed("w", 1, true, None).unwrap();
        m.snapshot("w", &[(2, false), (3, true)]).unwrap();
        assert_eq!(m.pending_ids(), vec![2, 3]);
        assert_eq!(m.state_of(3), Some(InvState::InFlight));
        // Id 1 is forgotten — a fresh epoch may reuse nothing about it.
        assert_eq!(m.state_of(1), None);
    }
}
