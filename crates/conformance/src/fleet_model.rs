//! Reference model for cluster membership, the scaling trajectory, and
//! per-worker lifecycle legality.
//!
//! Membership is a CAS-guarded slot machine per target:
//!
//! ```text
//!        attach           draining            detach
//!  Empty ───────▶ Attached ───────▶ Draining ───────▶ Empty
//! ```
//!
//! Rules: `slot-cas` (attach only lands on an empty slot), `drain-never-kill`
//! (detach only after an observed drain — the reaper must never remove a
//! worker that was not drained first), `draining-unattached` /
//! `detach-empty-slot` (events must refer to occupied slots).
//!
//! Scale events must describe a continuous trajectory: `scale:up` strictly
//! grows, `scale:down` strictly shrinks, never below one worker, and each
//! event's `from` equals the previous event's `to`
//! (`scale-trajectory`).
//!
//! Worker lifecycle (`lifecycle:{draining,stopped,killed,recovered}`) is a
//! per-source machine: a worker is implicitly Running, may drain, must not
//! emit anything after `stopped`/`killed` except `recovered` (a new
//! incarnation), and never stops twice (`lifecycle-legality`).

use crate::ModelError;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    Attached,
    Draining,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeState {
    Running,
    Draining,
    Stopped,
    Killed,
}

/// The executable fleet/membership/lifecycle reference model.
#[derive(Debug, Default)]
pub struct FleetModel {
    slots: BTreeMap<String, SlotState>,
    life: BTreeMap<String, LifeState>,
    last_to: Option<u64>,
    pub attaches: u64,
    pub detaches: u64,
    pub scale_events: u64,
}

impl FleetModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// A worker present before the stream began (constructor-seeded slot).
    pub fn seed(&mut self, target: &str) {
        self.slots.insert(target.to_string(), SlotState::Attached);
    }

    pub fn slot_of(&self, target: &str) -> Option<SlotState> {
        self.slots.get(target).copied()
    }

    pub fn attached_count(&self) -> usize {
        self.slots.len()
    }

    /// `membership:attach`.
    pub fn attach(&mut self, target: &str) -> Result<(), ModelError> {
        if self.slots.contains_key(target) {
            return Err(ModelError::new(
                "slot-cas",
                format!("target `{target}` attached to an occupied slot"),
            ));
        }
        self.slots.insert(target.to_string(), SlotState::Attached);
        self.attaches += 1;
        Ok(())
    }

    /// `membership:draining`. Idempotent (scale-down re-marking a worker it
    /// already drains is legal).
    pub fn draining(&mut self, target: &str) -> Result<(), ModelError> {
        match self.slots.get_mut(target) {
            Some(s) => {
                *s = SlotState::Draining;
                Ok(())
            }
            None => Err(ModelError::new(
                "draining-unattached",
                format!("target `{target}` marked draining but holds no slot"),
            )),
        }
    }

    /// `membership:detach` — the reaper's kill. Only legal after draining.
    pub fn detach(&mut self, target: &str) -> Result<(), ModelError> {
        match self.slots.get(target) {
            Some(SlotState::Draining) => {
                self.slots.remove(target);
                self.detaches += 1;
                Ok(())
            }
            Some(SlotState::Attached) => Err(ModelError::new(
                "drain-never-kill",
                format!("target `{target}` detached without ever being marked draining"),
            )),
            None => Err(ModelError::new(
                "detach-empty-slot",
                format!("target `{target}` detached from an empty slot"),
            )),
        }
    }

    /// A `scale:{up,down}` event with its `from`/`to` worker counts.
    pub fn scale(&mut self, direction: &str, from: u64, to: u64) -> Result<(), ModelError> {
        self.scale_events += 1;
        // Adopt the event's `to` as the new baseline even on a violation,
        // so one bad event does not cascade into spurious follow-ups.
        let prev = self.last_to.replace(to);
        if let Some(prev) = prev {
            if from != prev {
                return Err(ModelError::new(
                    "scale-trajectory",
                    format!(
                        "scale event starts at {from} workers but the fleet last reported {prev}"
                    ),
                ));
            }
        }
        if to == 0 {
            return Err(ModelError::new(
                "scale-trajectory",
                "fleet scaled to zero workers".to_string(),
            ));
        }
        match direction {
            "up" if to > from => Ok(()),
            "down" if to < from => Ok(()),
            "up" | "down" => Err(ModelError::new(
                "scale-trajectory",
                format!("scale:{direction} moved {from} → {to}"),
            )),
            other => Err(ModelError::new(
                "scale-trajectory",
                format!("unknown scale direction `{other}`"),
            )),
        }
    }

    /// A `lifecycle:{state}` event from worker `source`.
    pub fn lifecycle(&mut self, source: &str, state: &str) -> Result<(), ModelError> {
        let cur = self.life.get(source).copied().unwrap_or(LifeState::Running);
        let next = match (cur, state) {
            // `running` is implicit; an explicit event is tolerated as a
            // no-op from Running only.
            (LifeState::Running, "running") => LifeState::Running,
            (LifeState::Running | LifeState::Draining, "draining") => LifeState::Draining,
            (LifeState::Running | LifeState::Draining, "stopped") => LifeState::Stopped,
            (LifeState::Running | LifeState::Draining, "killed") => LifeState::Killed,
            // A new incarnation may announce recovery from any prior fate.
            (_, "recovered") => LifeState::Running,
            (terminal, other) => {
                return Err(ModelError::new(
                    "lifecycle-legality",
                    format!("worker `{source}` emitted `{other}` while {terminal:?}"),
                ));
            }
        };
        self.life.insert(source.to_string(), next);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_cas_and_drain_never_kill() {
        let mut f = FleetModel::new();
        f.attach("w1").unwrap();
        assert_eq!(f.attach("w1").unwrap_err().rule, "slot-cas");
        assert_eq!(f.detach("w1").unwrap_err().rule, "drain-never-kill");
        f.draining("w1").unwrap();
        f.draining("w1").unwrap(); // idempotent
        f.detach("w1").unwrap();
        assert_eq!(f.detach("w1").unwrap_err().rule, "detach-empty-slot");
        // Slot is free again.
        f.attach("w1").unwrap();
    }

    #[test]
    fn seeded_workers_hold_their_slot() {
        let mut f = FleetModel::new();
        f.seed("w0");
        assert_eq!(f.attach("w0").unwrap_err().rule, "slot-cas");
        f.draining("w0").unwrap();
        f.detach("w0").unwrap();
    }

    #[test]
    fn scale_trajectory_is_continuous() {
        let mut f = FleetModel::new();
        f.scale("up", 1, 3).unwrap();
        f.scale("up", 3, 4).unwrap();
        assert_eq!(f.scale("down", 3, 2).unwrap_err().rule, "scale-trajectory");
        f.scale("down", 2, 1).unwrap();
        assert_eq!(f.scale("down", 1, 0).unwrap_err().rule, "scale-trajectory");
    }

    #[test]
    fn lifecycle_terminal_states_are_terminal() {
        let mut f = FleetModel::new();
        f.lifecycle("w0", "draining").unwrap();
        f.lifecycle("w0", "stopped").unwrap();
        assert_eq!(
            f.lifecycle("w0", "draining").unwrap_err().rule,
            "lifecycle-legality"
        );
        // But a recovered incarnation starts a fresh machine.
        f.lifecycle("w0", "recovered").unwrap();
        f.lifecycle("w0", "stopped").unwrap();
    }

    #[test]
    fn kill_then_recover_is_the_crash_path() {
        let mut f = FleetModel::new();
        f.lifecycle("w0", "killed").unwrap();
        assert_eq!(
            f.lifecycle("w0", "stopped").unwrap_err().rule,
            "lifecycle-legality"
        );
        f.lifecycle("w0", "recovered").unwrap();
    }
}
