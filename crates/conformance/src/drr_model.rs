//! Reference model for deficit-weighted round robin.
//!
//! An independent re-statement of the `DrrQueue` serving discipline: each
//! backlogged tenant is visited in rotation; a visit credits
//! `quantum × weight` milliseconds of deficit once; the head item is served
//! while the deficit covers its cost (`expected_exec_ms`, floored at 1 ms);
//! a drained tenant forfeits its credit; an uncredited tenant rotates.
//!
//! Three checkable claims come out of this:
//!
//! * **Refinement** (`drr-refinement`) — driven single-threaded with the
//!   same push/pop sequence, the implementation must pop exactly the ids
//!   the model pops.
//! * **Deficit bound** (`deficit-bound`) — every tenant's deficit stays
//!   below `quantum × weight + max_cost`, and an idle tenant's deficit is
//!   exactly 0.
//! * **Weighted fairness** (`weighted-fairness`) — over any window where
//!   the set of backlogged tenants is stable and long enough, per-tenant
//!   service normalised by weight is equal within a tolerance.
//!
//! Live multi-threaded workers cannot be checked against the strict
//! refinement (the WAL `enqueued` append and the queue push are not atomic,
//! so the stream's order is not the queue's order); for those the model
//! offers a race-immune FIFO-within-tenant mode.

use crate::ModelError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

#[derive(Debug, Default)]
struct Sub {
    items: VecDeque<(u64, f64)>, // (id, cost_ms)
    deficit: f64,
    weight: f64,
    credited: bool,
}

/// One fairness-accounting window: a maximal run of pops during which the
/// set of backlogged tenants did not change.
#[derive(Debug, Clone)]
pub struct Window {
    pub tenants: BTreeSet<String>,
    /// Per-tenant served cost normalised by weight (ms of service ÷ weight).
    pub norm_served: BTreeMap<String, f64>,
}

/// How pops are checked against the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrrMode {
    /// Full refinement: the model simulates the rotation and the observed
    /// pop must match the model's pop exactly. Requires a single-threaded
    /// driver (push order in the stream == push order into the queue).
    Strict,
    /// Race-immune: only FIFO order *within* each tenant is enforced.
    FifoWithinTenant,
}

/// The executable DRR reference model.
#[derive(Debug)]
pub struct DrrModel {
    mode: DrrMode,
    quantum_ms: f64,
    subs: BTreeMap<String, Sub>,
    active: VecDeque<String>,
    len: usize,
    max_cost: f64,
    min_weight: f64,
    window: Option<Window>,
    pub closed_windows: Vec<Window>,
    pub pops: u64,
}

fn key_of(tenant: Option<&str>) -> String {
    tenant.unwrap_or("default").to_string()
}

impl DrrModel {
    pub fn new(mode: DrrMode, quantum_ms: f64) -> Self {
        Self {
            mode,
            quantum_ms: if quantum_ms > 0.0 { quantum_ms } else { 50.0 },
            subs: BTreeMap::new(),
            active: VecDeque::new(),
            len: 0,
            max_cost: 1.0,
            min_weight: f64::INFINITY,
            window: None,
            closed_windows: Vec::new(),
            pops: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mirror of `DrrQueue::push`.
    pub fn push(&mut self, id: u64, tenant: Option<&str>, cost_ms: f64, weight: f64) {
        let key = key_of(tenant);
        let weight = if weight > 0.0 { weight } else { 1.0 };
        self.max_cost = self.max_cost.max(cost_ms.max(1.0));
        self.min_weight = self.min_weight.min(weight);
        let sub = self.subs.entry(key.clone()).or_default();
        sub.weight = weight;
        if sub.items.is_empty() {
            self.active.push_back(key);
        }
        sub.items.push_back((id, cost_ms));
        self.len += 1;
    }

    /// Mirror of `DrrQueue::pop`: simulate the rotation and return the id
    /// the discipline must serve next.
    pub fn pop(&mut self) -> Option<(u64, String)> {
        if self.len == 0 {
            return None;
        }
        self.account_window_boundary();
        loop {
            let key = self.active.front()?.clone();
            let sub = self.subs.get_mut(&key).expect("active tenant has a sub");
            if !sub.credited {
                sub.deficit += self.quantum_ms * sub.weight;
                sub.credited = true;
            }
            let cost = sub
                .items
                .front()
                .map(|(_, c)| c.max(1.0))
                .expect("non-empty");
            if sub.deficit >= cost {
                let (id, raw_cost) = sub.items.pop_front().expect("non-empty");
                sub.deficit -= cost;
                self.len -= 1;
                if sub.items.is_empty() {
                    sub.deficit = 0.0;
                    sub.credited = false;
                    self.active.pop_front();
                }
                self.pops += 1;
                if let Some(w) = self.window.as_mut() {
                    *w.norm_served.entry(key.clone()).or_default() +=
                        raw_cost.max(1.0) / self.subs[&key].weight.max(f64::MIN_POSITIVE);
                }
                return Some((id, key));
            }
            sub.credited = false;
            let k = self.active.pop_front().expect("checked front above");
            self.active.push_back(k);
        }
    }

    /// The observed stream dequeued `id` (tenant label from the event).
    /// Strict mode replays the model's own pop and demands identity; FIFO
    /// mode demands `id` be the oldest queued item of its tenant.
    pub fn expect_pop(&mut self, id: u64, tenant: Option<&str>) -> Result<(), ModelError> {
        match self.mode {
            DrrMode::Strict => match self.pop() {
                Some((got, _)) if got == id => Ok(()),
                Some((got, t)) => Err(ModelError::new(
                    "drr-refinement",
                    format!("implementation popped id {id}, model pops id {got} (tenant `{t}`)"),
                )),
                None => Err(ModelError::new(
                    "drr-refinement",
                    format!("implementation popped id {id} from a queue the model holds empty"),
                )),
            },
            DrrMode::FifoWithinTenant => {
                let key = key_of(tenant);
                let Some(sub) = self.subs.get_mut(&key) else {
                    return Err(ModelError::new(
                        "fifo-within-tenant",
                        format!("id {id} dequeued for tenant `{key}` with no queued items"),
                    ));
                };
                match sub.items.front() {
                    Some(&(front, _)) if front == id => {
                        sub.items.pop_front();
                        self.len -= 1;
                        if sub.items.is_empty() {
                            self.active.retain(|k| k != &key);
                        }
                        Ok(())
                    }
                    Some(&(front, _)) => Err(ModelError::new(
                        "fifo-within-tenant",
                        format!("tenant `{key}` dequeued id {id} ahead of older queued id {front}"),
                    )),
                    None => Err(ModelError::new(
                        "fifo-within-tenant",
                        format!("id {id} dequeued for tenant `{key}` with no queued items"),
                    )),
                }
            }
        }
    }

    /// Remove a queued id that never actually entered the implementation's
    /// queue (push-full / shutdown retraction: `Completed` with no
    /// `Dequeued`). No-op when absent.
    pub fn retract(&mut self, id: u64) {
        let mut emptied: Option<String> = None;
        for (key, sub) in self.subs.iter_mut() {
            if let Some(pos) = sub.items.iter().position(|&(i, _)| i == id) {
                sub.items.remove(pos);
                self.len -= 1;
                if sub.items.is_empty() {
                    sub.deficit = 0.0;
                    sub.credited = false;
                    emptied = Some(key.clone());
                }
                break;
            }
        }
        if let Some(key) = emptied {
            self.active.retain(|k| k != &key);
        }
    }

    /// The two deficit invariants, checkable after any transition.
    pub fn check_deficit_bound(&self) -> Result<(), ModelError> {
        for (key, sub) in &self.subs {
            let bound = self.quantum_ms * sub.weight.max(1.0) + self.max_cost;
            if sub.items.is_empty() && sub.deficit != 0.0 {
                return Err(ModelError::new(
                    "deficit-bound",
                    format!("idle tenant `{key}` carries deficit {}", sub.deficit),
                ));
            }
            if sub.deficit >= bound {
                return Err(ModelError::new(
                    "deficit-bound",
                    format!(
                        "tenant `{key}` deficit {} ≥ bound {bound} (quantum×weight + max_cost)",
                        sub.deficit
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Close the current fairness window and audit every closed window:
    /// windows long enough to amortise quantisation must show per-tenant
    /// weight-normalised service within `tol` (e.g. 0.10 = ±10%).
    pub fn check_fairness(&mut self, tol: f64) -> Vec<ModelError> {
        self.close_window();
        let min_weight = if self.min_weight.is_finite() {
            self.min_weight
        } else {
            1.0
        };
        // One rotation can misalign tenants by up to quantum + max_cost/w
        // normalised ms each (in opposite directions); only windows that
        // dwarf that bound make a ±tol claim meaningful.
        let min_span = 20.0 * (self.quantum_ms + self.max_cost / min_weight);
        let mut errs = Vec::new();
        for w in &self.closed_windows {
            if w.tenants.len() < 2 {
                continue;
            }
            let max = w.norm_served.values().cloned().fold(0.0, f64::max);
            if max < min_span {
                continue;
            }
            for t in &w.tenants {
                let got = w.norm_served.get(t).copied().unwrap_or(0.0);
                if got < max * (1.0 - tol) {
                    errs.push(ModelError::new(
                        "weighted-fairness",
                        format!(
                            "tenant `{t}` got {got:.1} normalised ms vs leader {max:.1} \
                             over a stable window of {} tenants (tolerance ±{:.0}%)",
                            w.tenants.len(),
                            tol * 100.0
                        ),
                    ));
                }
            }
        }
        errs
    }

    fn backlogged(&self) -> BTreeSet<String> {
        self.subs
            .iter()
            .filter(|(_, s)| !s.items.is_empty())
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn account_window_boundary(&mut self) {
        let now = self.backlogged();
        let same = self
            .window
            .as_ref()
            .map(|w| w.tenants == now)
            .unwrap_or(false);
        if !same {
            self.close_window();
            if now.len() >= 2 {
                self.window = Some(Window {
                    tenants: now,
                    norm_served: BTreeMap::new(),
                });
            }
        }
    }

    fn close_window(&mut self) {
        if let Some(w) = self.window.take() {
            if !w.norm_served.is_empty() {
                self.closed_windows.push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(m: &mut DrrModel) -> Vec<(u64, String)> {
        let mut out = Vec::new();
        while let Some(p) = m.pop() {
            m.check_deficit_bound().unwrap();
            out.push(p);
        }
        out
    }

    #[test]
    fn weighted_service_is_proportional() {
        let mut m = DrrModel::new(DrrMode::Strict, 50.0);
        for i in 0..40 {
            m.push(i, Some("gold"), 10.0, 3.0);
            m.push(100 + i, Some("bronze"), 10.0, 1.0);
        }
        let order = drain(&mut m);
        // Two full rotations serve 15 gold + 5 bronze each (quantum 50 ×
        // weight ÷ cost 10): exactly 3:1 over the first 40 pops.
        let gold_early = order[..40].iter().filter(|(_, t)| t == "gold").count();
        assert_eq!(gold_early, 30, "gold got {gold_early}/40 early pops");
        let errs = m.check_fairness(0.10);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn strict_refinement_flags_wrong_pop() {
        let mut m = DrrModel::new(DrrMode::Strict, 50.0);
        m.push(1, Some("a"), 5.0, 1.0);
        m.push(2, Some("a"), 5.0, 1.0);
        let err = m.expect_pop(2, Some("a")).unwrap_err();
        assert_eq!(err.rule, "drr-refinement");
    }

    #[test]
    fn fifo_mode_only_orders_within_tenant() {
        let mut m = DrrModel::new(DrrMode::FifoWithinTenant, 50.0);
        m.push(1, Some("a"), 5.0, 1.0);
        m.push(2, Some("b"), 5.0, 1.0);
        m.push(3, Some("a"), 5.0, 1.0);
        // Cross-tenant order is free: b may go first.
        m.expect_pop(2, Some("b")).unwrap();
        // Within a, id 3 before id 1 is a violation.
        assert_eq!(
            m.expect_pop(3, Some("a")).unwrap_err().rule,
            "fifo-within-tenant"
        );
    }

    #[test]
    fn idle_tenant_carries_no_deficit() {
        let mut m = DrrModel::new(DrrMode::Strict, 50.0);
        m.push(1, Some("a"), 120.0, 1.0);
        m.push(2, Some("b"), 1.0, 1.0);
        drain(&mut m);
        m.check_deficit_bound().unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn retraction_keeps_rotation_consistent() {
        let mut m = DrrModel::new(DrrMode::Strict, 50.0);
        m.push(1, Some("a"), 5.0, 1.0);
        m.push(2, Some("b"), 5.0, 1.0);
        m.retract(2);
        let order = drain(&mut m);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].0, 1);
    }
}
