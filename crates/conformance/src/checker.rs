//! The conformance checker: replays a canonical telemetry stream (or a raw
//! WAL file) against the reference models and reports the first violating
//! event with a bounded window of preceding context — the offline analogue
//! of the flight recorder.
//!
//! One [`Checker`] multiplexes each event onto the model it belongs to:
//!
//! * `wal:*` / `wal_poisoned`  → [`WalModel`] (and optionally [`DrrModel`])
//! * `breaker:*`               → [`BreakerModel`]
//! * `membership:*` / `scale:*` / `lifecycle:*` → [`FleetModel`]
//! * `trace:*`                 → a per-invocation timeline machine (below)
//!
//! The timeline machine enforces the cross-model contracts that make the
//! durability story end-to-end: an accepted invocation's `trace:enqueued`
//! must follow a durable `wal:enqueued` (**accepted ⟹ durable**), a
//! dispatched invocation may not report a result before its completion
//! record landed (**no result before durable**, suspended per source once
//! that source's WAL is poisoned), and the WAL's `ok` must agree with the
//! reported result (**exactly-once accounting**).

use crate::breaker_model::BreakerModel;
use crate::cache_model::CacheModel;
use crate::dispatch_model::DispatchModel;
use crate::drr_model::{DrrMode, DrrModel};
use crate::fleet_model::FleetModel;
use crate::wal_model::{TenantBook, WalModel};
use crate::ModelError;
use iluvatar_core::wal::WalRecord;
use iluvatar_telemetry::{TelemetryEvent, TelemetryKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A conformance violation: which model, which rule, the offending event,
/// and the window of events that led up to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which reference model flagged it (`wal`, `drr`, `breaker`, `fleet`,
    /// `timeline`, `stream`).
    pub model: &'static str,
    /// The stable rule identifier from [`ModelError`].
    pub rule: &'static str,
    pub detail: String,
    /// The violating event (absent for end-of-stream checks).
    pub event: Option<TelemetryEvent>,
    /// Up to `context_window` events preceding the violation, oldest first.
    pub context: Vec<TelemetryEvent>,
}

fn render_event(ev: &TelemetryEvent) -> String {
    format!(
        "seq={} src={} trace={} tenant={} {}",
        ev.seq,
        ev.source,
        ev.trace_id
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into()),
        ev.tenant.as_deref().unwrap_or("-"),
        ev.kind.label()
    )
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "violation [{}/{}]: {}",
            self.model, self.rule, self.detail
        )?;
        if let Some(ev) = &self.event {
            writeln!(f, "  at: {}", render_event(ev))?;
        }
        if !self.context.is_empty() {
            writeln!(f, "  preceding {} events:", self.context.len())?;
            for ev in &self.context {
                writeln!(f, "    {}", render_event(ev))?;
            }
        }
        Ok(())
    }
}

/// End-of-stream summary.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    pub events: u64,
    pub violations: Vec<Violation>,
    /// Per-label event counts (deterministic digest input).
    pub label_counts: BTreeMap<String, u64>,
    /// Ids the WAL model holds accepted-but-not-terminal.
    pub wal_pending: Vec<u64>,
    /// The WAL model's per-tenant accounting books.
    pub wal_books: BTreeMap<String, TenantBook>,
}

impl ConformanceReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-invocation timeline state, driven by `trace:*` stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Fresh,
    Queued,
    Dispatched,
    Acquired,
    Called,
    RetryWait,
    Exhausted,
    Rejected,
    Done,
}

#[derive(Debug)]
struct Timeline {
    state: TState,
    source: String,
    dispatched: bool,
    wal_enqueued: bool,
    wal_completed_ok: Option<bool>,
    result_ok: Option<bool>,
}

/// The stream conformance checker. See the module docs for the mapping.
pub struct Checker {
    wal: WalModel,
    drr: Option<DrrModel>,
    breaker: BreakerModel,
    fleet: FleetModel,
    cache: CacheModel,
    dispatch: DispatchModel,
    timelines: BTreeMap<u64, Timeline>,
    /// Per-source seqs seen in the current epoch (duplicates are torn
    /// streams; ordering is not enforced because independent emitter
    /// threads may interleave between seq assignment and sink delivery).
    seqs: BTreeMap<String, BTreeSet<u64>>,
    /// Sources known to run with a write-ahead log (any `wal:*` seen).
    wal_sources: BTreeSet<String>,
    label_counts: BTreeMap<String, u64>,
    ctx: VecDeque<TelemetryEvent>,
    context_window: usize,
    require_terminal: bool,
    violations: Vec<Violation>,
    events: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    pub fn new() -> Self {
        Self {
            wal: WalModel::new(),
            drr: None,
            breaker: BreakerModel::new(),
            fleet: FleetModel::new(),
            cache: CacheModel::new(),
            dispatch: DispatchModel::new(),
            timelines: BTreeMap::new(),
            seqs: BTreeMap::new(),
            wal_sources: BTreeSet::new(),
            label_counts: BTreeMap::new(),
            ctx: VecDeque::new(),
            context_window: 12,
            require_terminal: true,
            violations: Vec::new(),
            events: 0,
        }
    }

    /// Check DRR strictly: the stream's dequeue order must refine the
    /// model's pop order (single-threaded drivers only).
    pub fn with_drr_strict(mut self, quantum_ms: f64) -> Self {
        self.drr = Some(DrrModel::new(DrrMode::Strict, quantum_ms));
        self
    }

    /// Check DRR leniently: FIFO order within each tenant only (safe for
    /// live multi-threaded workers).
    pub fn with_drr_fifo(mut self, quantum_ms: f64) -> Self {
        self.drr = Some(DrrModel::new(DrrMode::FifoWithinTenant, quantum_ms));
        self
    }

    /// How many preceding events a violation carries as context.
    pub fn with_context_window(mut self, n: usize) -> Self {
        self.context_window = n;
        self
    }

    /// Whether `finish` demands every observed trace reached
    /// `result_returned` (disable for streams cut mid-flight).
    pub fn with_require_terminal(mut self, yes: bool) -> Self {
        self.require_terminal = yes;
        self
    }

    /// Declare a worker present before the stream began (constructor-seeded
    /// cluster slot): occupies a membership slot, breaker starts Closed.
    pub fn seed_worker(mut self, target: &str) -> Self {
        self.fleet.seed(target);
        self.breaker.seed(target);
        self
    }

    /// A source legitimately restarted (recovered incarnation): its seq
    /// numbering begins again at 1 and its WAL poison is lifted.
    pub fn note_restart(&mut self, source: &str) {
        self.seqs.remove(source);
        self.wal.unpoison(source);
    }

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn wal(&self) -> &WalModel {
        &self.wal
    }

    pub fn dispatch(&self) -> &DispatchModel {
        &self.dispatch
    }

    fn record(&mut self, model: &'static str, err: ModelError, ev: Option<&TelemetryEvent>) {
        self.violations.push(Violation {
            model,
            rule: err.rule,
            detail: err.detail,
            event: ev.cloned(),
            context: self.ctx.iter().cloned().collect(),
        });
    }

    /// Feed one canonical event. All applicable models advance; the first
    /// failed guard per event is recorded as a [`Violation`].
    pub fn ingest(&mut self, ev: &TelemetryEvent) {
        self.events += 1;
        *self.label_counts.entry(ev.kind.label()).or_default() += 1;
        if !self
            .seqs
            .entry(ev.source.clone())
            .or_default()
            .insert(ev.seq)
        {
            self.record(
                "stream",
                ModelError::new(
                    "seq-duplicate",
                    format!("source `{}` reused seq {}", ev.source, ev.seq),
                ),
                Some(ev),
            );
        }
        if let Err((model, err)) = self.apply(ev) {
            self.record(model, err, Some(ev));
        }
        if self.context_window > 0 {
            if self.ctx.len() == self.context_window {
                self.ctx.pop_front();
            }
            self.ctx.push_back(ev.clone());
        }
    }

    fn apply(&mut self, ev: &TelemetryEvent) -> Result<(), (&'static str, ModelError)> {
        let src = ev.source.as_str();
        match &ev.kind {
            TelemetryKind::Wal {
                op,
                cost_ms,
                weight,
                ok,
                throttled,
            } => {
                self.wal_sources.insert(src.to_string());
                if self.wal.is_poisoned(src) {
                    // A landed append's telemetry emit happens after the WAL
                    // lock is released, so it can legitimately arrive on the
                    // stream *after* kill's WalPoisoned marker. The append
                    // itself raced ahead of the poison; only ops appearing
                    // after the source recovers are held to the model again.
                    // Append-after-poison stays enforced in file mode and in
                    // the WalModel unit tests.
                    return Ok(());
                }
                if op == "snapshot" {
                    // Stream snapshots are compaction markers; the live
                    // stream never replays across them, so the cumulative
                    // model just keeps going.
                    return Ok(());
                }
                let Some(id) = ev.trace_id else {
                    return Err((
                        "wal",
                        ModelError::new(
                            "wal-missing-id",
                            format!("wal:{op} event carries no trace id"),
                        ),
                    ));
                };
                match op.as_str() {
                    "enqueued" => {
                        self.wal
                            .enqueued(
                                src,
                                id,
                                ev.tenant.as_deref(),
                                cost_ms.unwrap_or(0.0),
                                weight.unwrap_or(1.0),
                            )
                            .map_err(|e| ("wal", e))?;
                        if let Some(t) = self.timelines.get_mut(&id) {
                            t.wal_enqueued = true;
                        }
                        if let Some(drr) = self.drr.as_mut() {
                            drr.push(
                                id,
                                ev.tenant.as_deref(),
                                cost_ms.unwrap_or(0.0),
                                weight.unwrap_or(1.0),
                            );
                        }
                    }
                    "dequeued" => {
                        self.wal.dequeued(src, id).map_err(|e| ("wal", e))?;
                        if let Some(drr) = self.drr.as_mut() {
                            let tenant = self.wal.meta_of(id).and_then(|m| m.tenant.clone());
                            drr.expect_pop(id, tenant.as_deref())
                                .map_err(|e| ("drr", e))?;
                            drr.check_deficit_bound().map_err(|e| ("drr", e))?;
                        }
                    }
                    "completed" => {
                        let ok = ok.unwrap_or(false);
                        self.wal
                            .completed(src, id, ok, ev.tenant.as_deref())
                            .map_err(|e| ("wal", e))?;
                        if let Some(drr) = self.drr.as_mut() {
                            // Push-full / bypass retraction: the item never
                            // lived in the real queue.
                            drr.retract(id);
                        }
                        let mut mismatch = None;
                        if let Some(t) = self.timelines.get_mut(&id) {
                            t.wal_completed_ok = Some(ok);
                            if let Some(res) = t.result_ok {
                                if res != ok {
                                    mismatch = Some((res, ok));
                                }
                            }
                        }
                        if let Some((res, ok)) = mismatch {
                            return Err((
                                "timeline",
                                ModelError::new(
                                    "accounting-mismatch",
                                    format!(
                                        "trace {id}: WAL books ok={ok} but the caller saw ok={res}"
                                    ),
                                ),
                            ));
                        }
                    }
                    "shed" => {
                        self.wal
                            .shed(src, id, ev.tenant.as_deref(), throttled.unwrap_or(false))
                            .map_err(|e| ("wal", e))?;
                    }
                    other => {
                        return Err((
                            "wal",
                            ModelError::new("wal-unknown-op", format!("unknown wal op `{other}`")),
                        ));
                    }
                }
                Ok(())
            }
            TelemetryKind::WalPoisoned => {
                self.wal.poison(src);
                // Crash-adjacent race: an invocation thread that lost the
                // append race can report its (unjournaled) result in the
                // instants between the poison flag landing and this marker
                // reaching the sink. Those results are crash casualties, not
                // durability bugs — forgive `result-before-durable` findings
                // whose offending event is still inside the context window.
                let recent: BTreeSet<u64> = self
                    .ctx
                    .iter()
                    .filter(|e| e.source == *src)
                    .map(|e| e.seq)
                    .collect();
                self.violations.retain(|v| {
                    !(v.rule == "result-before-durable"
                        && v.event
                            .as_ref()
                            .is_some_and(|e| e.source == src && recent.contains(&e.seq)))
                });
                Ok(())
            }
            TelemetryKind::Trace { stage } => {
                let Some(id) = ev.trace_id else {
                    return Err((
                        "timeline",
                        ModelError::new(
                            "trace-missing-id",
                            format!("trace:{stage} event carries no trace id"),
                        ),
                    ));
                };
                self.step_timeline(id, src, stage)
                    .map_err(|e| ("timeline", e))
            }
            TelemetryKind::Lifecycle { state } => {
                if state == "recovered" {
                    // A recovered incarnation legitimately reopens the log.
                    self.wal.unpoison(src);
                }
                self.fleet.lifecycle(src, state).map_err(|e| ("fleet", e))
            }
            TelemetryKind::Breaker { target, state } => self
                .breaker
                .observe(target, state)
                .map_err(|e| ("breaker", e)),
            TelemetryKind::Membership { target, change } => match change.as_str() {
                "attach" => {
                    self.breaker.attached(target);
                    self.fleet.attach(target).map_err(|e| ("fleet", e))
                }
                "draining" => {
                    self.breaker.draining(target);
                    self.fleet.draining(target).map_err(|e| ("fleet", e))
                }
                "detach" => {
                    self.breaker.detached(target);
                    self.fleet.detach(target).map_err(|e| ("fleet", e))
                }
                other => Err((
                    "fleet",
                    ModelError::new(
                        "membership-unknown-change",
                        format!("unknown membership change `{other}`"),
                    ),
                )),
            },
            TelemetryKind::Scale {
                direction,
                from,
                to,
                ..
            } => self
                .fleet
                .scale(direction, *from, *to)
                .map_err(|e| ("fleet", e)),
            TelemetryKind::Cache {
                op,
                key,
                expires_at_ms,
            } => {
                let tenant = ev.tenant.as_deref().unwrap_or("default");
                match op.as_str() {
                    "fill" => {
                        // Install first so later hits on this key are judged
                        // against the entry even when the fill itself is bad.
                        self.cache.fill(key, tenant, *expires_at_ms);
                        // Durable-before-served: on a WAL-backed source the
                        // fill must correlate to an invocation whose `ok`
                        // completion record already landed.
                        if let Some(id) = ev.trace_id {
                            if self.wal_sources.contains(src)
                                && self
                                    .timelines
                                    .get(&id)
                                    .is_none_or(|t| t.wal_completed_ok != Some(true))
                            {
                                return Err((
                                    "cache",
                                    ModelError::new(
                                        "cache-fill-not-durable",
                                        format!(
                                            "fill for key `{key}` from trace {id} with no \
                                             durable ok completion"
                                        ),
                                    ),
                                ));
                            }
                        }
                        Ok(())
                    }
                    "hit" => self
                        .cache
                        .hit(key, tenant, ev.at_ms)
                        .map_err(|e| ("cache", e)),
                    // Misses are informational: nothing was served.
                    "miss" => Ok(()),
                    "evict" | "expire" | "invalidate" => {
                        self.cache.remove(op, key).map_err(|e| ("cache", e))
                    }
                    other => Err((
                        "cache",
                        ModelError::new("cache-unknown-op", format!("unknown cache op `{other}`")),
                    )),
                }
            }
            TelemetryKind::WalIo { op } => match op.as_str() {
                // The degraded-mode gauge is a per-source two-state
                // machine; while it is set, the durability obligations
                // (`accepted-not-durable`, `result-before-durable`) are
                // relaxed — that is exactly what degraded mode advertises.
                "degraded" => self.wal.enter_degraded(src).map_err(|e| ("wal", e)),
                "rearmed" => self.wal.rearmed(src).map_err(|e| ("wal", e)),
                // retry / rotate / compact / fsync_error / stall_shed are
                // informational health signals.
                _ => Ok(()),
            },
            TelemetryKind::Lease {
                op,
                worker,
                expires_at_ms,
                class,
            } => {
                let Some(id) = ev.trace_id else {
                    return Err((
                        "dispatch",
                        ModelError::new(
                            "dispatch-missing-id",
                            format!("lease:{op} event carries no trace id"),
                        ),
                    ));
                };
                self.dispatch
                    .observe(
                        id,
                        ev.tenant.as_deref(),
                        ev.at_ms,
                        op,
                        worker,
                        *expires_at_ms,
                        class.as_deref(),
                    )
                    .map_err(|e| ("dispatch", e))
            }
            // Informational kinds: counted, no machine to advance.
            TelemetryKind::Dispatch { .. }
            | TelemetryKind::Reroute { .. }
            | TelemetryKind::Fault { .. }
            | TelemetryKind::RecorderSnapshot { .. } => Ok(()),
        }
    }

    fn step_timeline(&mut self, id: u64, src: &str, stage: &str) -> Result<(), ModelError> {
        let (base, arg) = match stage.split_once('(') {
            Some((b, rest)) => (b, rest.trim_end_matches(')')),
            None => (stage, ""),
        };
        // Origin stages mint (or re-mint) the timeline.
        if base == "ingested" || base == "recovered" {
            if base == "ingested" && self.timelines.contains_key(&id) {
                return Err(ModelError::new(
                    "timeline-origin",
                    format!("trace {id} ingested twice"),
                ));
            }
            let wal_enqueued = self
                .timelines
                .get(&id)
                .map(|t| t.wal_enqueued)
                .unwrap_or(false);
            self.timelines.insert(
                id,
                Timeline {
                    state: TState::Fresh,
                    source: src.to_string(),
                    dispatched: false,
                    wal_enqueued,
                    wal_completed_ok: None,
                    result_ok: None,
                },
            );
            return Ok(());
        }
        let Some(t) = self.timelines.get_mut(&id) else {
            return Err(ModelError::new(
                "timeline-origin",
                format!("trace {id} emitted `{base}` before ingested/recovered"),
            ));
        };
        t.source = src.to_string();
        use TState::*;
        if t.state == Done {
            return Err(ModelError::new(
                "event-after-terminal",
                format!("trace {id} emitted `{base}` after result_returned"),
            ));
        }
        let next = match (t.state, base) {
            (Fresh, "enqueued") => {
                // Accepted ⟹ durable: on a WAL-backed worker the Enqueued
                // record must land before the timeline accepts — unless
                // the source is serving degraded (explicitly non-durable).
                if self.wal_sources.contains(src) && !t.wal_enqueued && !self.wal.is_degraded(src) {
                    return Err(ModelError::new(
                        "accepted-not-durable",
                        format!("trace {id} accepted with no durable wal:enqueued record"),
                    ));
                }
                Queued
            }
            (Fresh, "bypassed") => {
                t.dispatched = true;
                Dispatched
            }
            (Fresh, "admission_rejected") | (Fresh, "tenant_throttled") => Rejected,
            (Queued, "dequeued") => {
                t.dispatched = true;
                Dispatched
            }
            (Dispatched | RetryWait, "container_acquired") => Acquired,
            (Acquired, "agent_called") => Called,
            (Called, "agent_timeout") => Called,
            (Called, "container_quarantined") => Called,
            (Dispatched | Acquired | Called | RetryWait, "retry_scheduled") => RetryWait,
            (Dispatched | Acquired | Called | RetryWait, "retries_exhausted") => Exhausted,
            (state, "result_returned") => {
                // The result *did* reach the caller whatever else is wrong,
                // so the timeline still terminates: flag the first broken
                // obligation but land in Done (no cascading
                // incomplete-timeline on top).
                let ok = arg == "true";
                let mut pending: Option<ModelError> = None;
                if ok && state != Called {
                    pending = Some(ModelError::new(
                        "result-without-execution",
                        format!("trace {id} returned ok=true from state {state:?}"),
                    ));
                } else if t.dispatched
                    && t.wal_enqueued
                    && t.wal_completed_ok.is_none()
                    && !self.wal.is_poisoned(src)
                    && !self.wal.is_degraded(src)
                {
                    pending = Some(ModelError::new(
                        "result-before-durable",
                        format!(
                            "trace {id} reported a result before its wal:completed record landed"
                        ),
                    ));
                }
                t.result_ok = Some(ok);
                if pending.is_none() {
                    if let Some(walled) = t.wal_completed_ok {
                        if walled != ok {
                            pending = Some(ModelError::new(
                                "accounting-mismatch",
                                format!(
                                    "trace {id}: WAL books ok={walled} but the caller saw ok={ok}"
                                ),
                            ));
                        }
                    }
                }
                t.state = Done;
                return match pending {
                    Some(err) => Err(err),
                    None => Ok(()),
                };
            }
            (state, other) => {
                return Err(ModelError::new(
                    "timeline-illegal-stage",
                    format!("trace {id}: `{other}` is not legal from state {state:?}"),
                ));
            }
        };
        t.state = next;
        Ok(())
    }

    /// Feed one raw WAL record (offline file replay; `source` names the
    /// log). Exercises the same [`WalModel`] rules as the stream path.
    pub fn ingest_wal_record(&mut self, source: &str, rec: &WalRecord) {
        self.events += 1;
        let res = match rec {
            WalRecord::Enqueued { inv } => {
                *self
                    .label_counts
                    .entry("wal:enqueued".to_string())
                    .or_default() += 1;
                self.wal.enqueued(
                    source,
                    inv.id,
                    inv.tenant.as_deref(),
                    inv.expected_exec_ms,
                    inv.tenant_weight,
                )
            }
            WalRecord::Dequeued { id } => {
                *self
                    .label_counts
                    .entry("wal:dequeued".to_string())
                    .or_default() += 1;
                self.wal.dequeued(source, *id)
            }
            WalRecord::Completed { id, ok, tenant } => {
                *self
                    .label_counts
                    .entry("wal:completed".to_string())
                    .or_default() += 1;
                self.wal.completed(source, *id, *ok, tenant.as_deref())
            }
            WalRecord::Shed {
                id,
                tenant,
                throttled,
            } => {
                *self.label_counts.entry("wal:shed".to_string()).or_default() += 1;
                self.wal.shed(source, *id, tenant.as_deref(), *throttled)
            }
            WalRecord::LeaseIssued { .. } => {
                // Lease records exist so *recovery* can requeue in-flight
                // work; file replay treats them as informational (the book
                // effects are exercised end-to-end by `wal::replay`).
                *self
                    .label_counts
                    .entry("wal:lease_issued".to_string())
                    .or_default() += 1;
                Ok(())
            }
            WalRecord::LeaseRequeued { .. } => {
                *self
                    .label_counts
                    .entry("wal:lease_requeued".to_string())
                    .or_default() += 1;
                Ok(())
            }
            WalRecord::Snapshot { snap } => {
                *self
                    .label_counts
                    .entry("wal:snapshot".to_string())
                    .or_default() += 1;
                let pending: Vec<(u64, bool)> =
                    snap.pending.iter().map(|p| (p.id, p.dequeued)).collect();
                self.wal.snapshot(source, &pending)
            }
        };
        if let Err(err) = res {
            let detail = format!("{} (wal record: {})", err.detail, rec.op_label());
            self.violations.push(Violation {
                model: "wal",
                rule: err.rule,
                detail,
                event: None,
                context: self.ctx.iter().cloned().collect(),
            });
        }
    }

    /// Close the stream: end-of-stream obligations (terminal timelines,
    /// long-run fairness) and the final report.
    pub fn finish(mut self) -> ConformanceReport {
        if self.require_terminal {
            let stuck: Vec<u64> = self
                .timelines
                .iter()
                .filter(|(_, t)| t.state != TState::Done && t.state != TState::Fresh)
                .map(|(&id, _)| id)
                .collect();
            for id in stuck {
                let state = self.timelines[&id].state;
                self.violations.push(Violation {
                    model: "timeline",
                    rule: "incomplete-timeline",
                    detail: format!(
                        "trace {id} ended the stream in state {state:?} without a result"
                    ),
                    event: None,
                    context: Vec::new(),
                });
            }
        }
        if let Some(drr) = self.drr.as_mut() {
            for err in drr.check_fairness(0.10) {
                self.violations.push(Violation {
                    model: "drr",
                    rule: err.rule,
                    detail: err.detail,
                    event: None,
                    context: Vec::new(),
                });
            }
        }
        ConformanceReport {
            events: self.events,
            violations: self.violations,
            label_counts: self.label_counts,
            wal_pending: self.wal.pending_ids(),
            wal_books: self.wal.books().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        seq: u64,
        source: &str,
        trace: Option<u64>,
        tenant: Option<&str>,
        kind: TelemetryKind,
    ) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            at_ms: seq,
            source: source.to_string(),
            trace_id: trace,
            tenant: tenant.map(str::to_string),
            kind,
        }
    }

    fn wal_ev(op: &str) -> TelemetryKind {
        TelemetryKind::wal(op)
    }

    fn trace_ev(stage: &str) -> TelemetryKind {
        TelemetryKind::Trace {
            stage: stage.to_string(),
        }
    }

    #[test]
    fn clean_invocation_stream_passes() {
        let mut c = Checker::new();
        let id = Some(7);
        let mut seq = 0..;
        let mut s = || seq.next().unwrap() + 1;
        c.ingest(&ev(s(), "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(
            s(),
            "w",
            id,
            Some("a"),
            TelemetryKind::Wal {
                op: "enqueued".into(),
                cost_ms: Some(10.0),
                weight: Some(1.0),
                ok: None,
                throttled: None,
            },
        ));
        c.ingest(&ev(s(), "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(s(), "w", id, None, wal_ev("dequeued")));
        c.ingest(&ev(s(), "w", id, None, trace_ev("dequeued")));
        c.ingest(&ev(
            s(),
            "w",
            id,
            None,
            trace_ev("container_acquired(true)"),
        ));
        c.ingest(&ev(s(), "w", id, None, trace_ev("agent_called")));
        c.ingest(&ev(
            s(),
            "w",
            id,
            Some("a"),
            TelemetryKind::Wal {
                op: "completed".into(),
                cost_ms: None,
                weight: None,
                ok: Some(true),
                throttled: None,
            },
        ));
        c.ingest(&ev(s(), "w", id, None, trace_ev("result_returned(true)")));
        let report = c.finish();
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.wal_pending.is_empty());
        assert_eq!(report.wal_books["a"].served, 1);
    }

    #[test]
    fn result_before_durable_is_flagged_with_context() {
        let mut c = Checker::new();
        let id = Some(9);
        c.ingest(&ev(1, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(2, "w", id, Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(3, "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(4, "w", id, None, wal_ev("dequeued")));
        c.ingest(&ev(5, "w", id, None, trace_ev("dequeued")));
        c.ingest(&ev(6, "w", id, None, trace_ev("container_acquired(false)")));
        c.ingest(&ev(7, "w", id, None, trace_ev("agent_called")));
        // No wal:completed before the result.
        c.ingest(&ev(8, "w", id, None, trace_ev("result_returned(true)")));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert_eq!(v.rule, "result-before-durable");
        assert!(!v.context.is_empty(), "violation must carry context");
        assert_eq!(v.event.as_ref().unwrap().seq, 8);
    }

    #[test]
    fn poisoned_wal_suspends_the_durability_rule() {
        let mut c = Checker::new().with_require_terminal(false);
        let id = Some(3);
        c.ingest(&ev(1, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(2, "w", id, Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(3, "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(4, "w", id, None, wal_ev("dequeued")));
        c.ingest(&ev(5, "w", id, None, trace_ev("dequeued")));
        c.ingest(&ev(6, "w", id, None, trace_ev("container_acquired(true)")));
        c.ingest(&ev(7, "w", id, None, trace_ev("agent_called")));
        c.ingest(&ev(8, "w", None, None, TelemetryKind::WalPoisoned));
        // The in-flight thread still reports, but the Completed append was
        // dropped by the poisoned log — legal.
        c.ingest(&ev(9, "w", id, None, trace_ev("result_returned(true)")));
        let report = c.finish();
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn accounting_mismatch_is_flagged() {
        let mut c = Checker::new().with_require_terminal(false);
        let id = Some(4);
        c.ingest(&ev(1, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(2, "w", id, Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(3, "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(4, "w", id, None, wal_ev("dequeued")));
        c.ingest(&ev(5, "w", id, None, trace_ev("dequeued")));
        c.ingest(&ev(6, "w", id, None, trace_ev("container_acquired(true)")));
        c.ingest(&ev(7, "w", id, None, trace_ev("agent_called")));
        c.ingest(&ev(
            8,
            "w",
            id,
            Some("a"),
            TelemetryKind::Wal {
                op: "completed".into(),
                cost_ms: None,
                weight: None,
                ok: Some(false),
                throttled: None,
            },
        ));
        c.ingest(&ev(9, "w", id, None, trace_ev("result_returned(true)")));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "accounting-mismatch");
    }

    #[test]
    fn incomplete_timeline_reported_at_finish() {
        let mut c = Checker::new();
        let id = Some(11);
        c.ingest(&ev(1, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(2, "w", id, Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(3, "w", id, None, trace_ev("enqueued")));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "incomplete-timeline");
        assert_eq!(report.wal_pending, vec![11]);
    }

    #[test]
    fn membership_and_breaker_flow_through() {
        let mut c = Checker::new().seed_worker("w0");
        c.ingest(&ev(
            1,
            "lb",
            None,
            None,
            TelemetryKind::Membership {
                target: "w1".into(),
                change: "attach".into(),
            },
        ));
        c.ingest(&ev(
            2,
            "lb",
            None,
            None,
            TelemetryKind::Breaker {
                target: "w1".into(),
                state: "half_open".into(),
            },
        ));
        c.ingest(&ev(
            3,
            "lb",
            None,
            None,
            TelemetryKind::Breaker {
                target: "w1".into(),
                state: "closed".into(),
            },
        ));
        c.ingest(&ev(
            4,
            "lb",
            None,
            None,
            TelemetryKind::Membership {
                target: "w1".into(),
                change: "detach".into(),
            },
        ));
        let report = c.finish();
        // detach without draining = drain-never-kill violation.
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "drain-never-kill");
    }

    #[test]
    fn cache_stream_rules_flow_through() {
        let cache_ev = |op: &str, key: &str, exp: Option<u64>| TelemetryKind::Cache {
            op: op.to_string(),
            key: key.to_string(),
            expires_at_ms: exp,
        };
        // Clean: fill, hit before expiry, invalidate.
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(1, "lb", None, Some("a"), cache_ev("miss", "k1", None)));
        c.ingest(&ev(
            2,
            "lb",
            None,
            Some("a"),
            cache_ev("fill", "k1", Some(60_000)),
        ));
        c.ingest(&ev(3, "lb", None, Some("a"), cache_ev("hit", "k1", None)));
        c.ingest(&ev(
            4,
            "lb",
            None,
            Some("a"),
            cache_ev("invalidate", "k1", None),
        ));
        let report = c.finish();
        assert!(report.ok(), "{:?}", report.violations);

        // A hit with no live fill is flagged.
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "lb",
            None,
            Some("a"),
            cache_ev("hit", "ghost", None),
        ));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "cache-hit-unknown-key");

        // A hit past the fill's advertised expiry is a stale serve.
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "lb",
            None,
            Some("a"),
            cache_ev("fill", "k1", Some(500)),
        ));
        let mut stale = ev(2, "lb", None, Some("a"), cache_ev("hit", "k1", None));
        stale.at_ms = 5_000;
        c.ingest(&stale);
        let report = c.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "cache-stale-hit");

        // On a WAL-backed source a fill must ride a durable ok completion.
        let mut c = Checker::new().with_require_terminal(false);
        let id = Some(7);
        c.ingest(&ev(1, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(2, "w", id, Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(3, "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(4, "w", id, None, wal_ev("dequeued")));
        c.ingest(&ev(5, "w", id, None, trace_ev("dequeued")));
        // Fill lands before wal:completed booked the result: flagged.
        c.ingest(&ev(
            6,
            "w",
            id,
            Some("a"),
            cache_ev("fill", "k1", Some(60_000)),
        ));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "cache-fill-not-durable");
    }

    #[test]
    fn degraded_window_relaxes_durability_rules() {
        let mut c = Checker::new().with_require_terminal(false);
        let id = Some(5);
        // Establish the source as WAL-backed with a clean invocation.
        c.ingest(&ev(1, "w", Some(1), Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(
            2,
            "w",
            None,
            None,
            TelemetryKind::WalIo {
                op: "degraded".into(),
            },
        ));
        // Accepted with no durable record: legal inside the window.
        c.ingest(&ev(3, "w", id, None, trace_ev("ingested")));
        c.ingest(&ev(4, "w", id, None, trace_ev("enqueued")));
        c.ingest(&ev(5, "w", id, None, trace_ev("dequeued")));
        c.ingest(&ev(6, "w", id, None, trace_ev("container_acquired(true)")));
        c.ingest(&ev(7, "w", id, None, trace_ev("agent_called")));
        c.ingest(&ev(8, "w", id, None, trace_ev("result_returned(true)")));
        c.ingest(&ev(
            9,
            "w",
            None,
            None,
            TelemetryKind::WalIo {
                op: "rearmed".into(),
            },
        ));
        let report = c.finish();
        assert!(report.ok(), "{:?}", report.violations);

        // Outside the window the same pattern is a violation again.
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(1, "w", Some(1), Some("a"), wal_ev("enqueued")));
        c.ingest(&ev(2, "w", Some(2), None, trace_ev("ingested")));
        c.ingest(&ev(3, "w", Some(2), None, trace_ev("enqueued")));
        let report = c.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "accepted-not-durable");
    }

    #[test]
    fn degraded_gauge_must_alternate() {
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::WalIo {
                op: "rearmed".into(),
            },
        ));
        assert_eq!(c.violations()[0].rule, "rearm-without-degrade");
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::WalIo {
                op: "degraded".into(),
            },
        ));
        c.ingest(&ev(
            2,
            "w",
            None,
            None,
            TelemetryKind::WalIo {
                op: "degraded".into(),
            },
        ));
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, "degraded-reentry");
    }

    #[test]
    fn seq_restart_needs_a_note() {
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "draining".into(),
            },
        ));
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "stopped".into(),
            },
        ));
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, "seq-duplicate");
        let mut c = Checker::new().with_require_terminal(false);
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "killed".into(),
            },
        ));
        c.note_restart("w");
        c.ingest(&ev(
            1,
            "w",
            None,
            None,
            TelemetryKind::Lifecycle {
                state: "recovered".into(),
            },
        ));
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }
}
