//! Reference model for the pull-based dispatch plane.
//!
//! The plane's contract, as seen on the canonical stream (`lease:*`):
//!
//! * **Lease exclusivity** — an invocation is never issued while a lease
//!   on it is live: `issued` is legal only from the queued state.
//! * **Requeue exactly once** — an expired lease's invocation is
//!   requeued exactly once per expiry: `requeued` requires a preceding
//!   `expired` that has not already been requeued, and a second
//!   `requeued` without a fresh expiry is flagged.
//! * **No phantom completions** — `completed` requires a live lease; the
//!   plane drops a dead worker's late completion, so one reaching the
//!   stream means accounting double-counted.
//! * **No early expiry** — `expired` may not land before the
//!   `expires_at_ms` the issue advertised.
//! * **Class priority / fairness bounds** — while guaranteed work is
//!   queued, best-effort issues are bounded ([`CLASS_STARVATION_BOUND`]);
//!   while any tenant has queued work, consecutive issues serving *other*
//!   tenants are bounded ([`TENANT_STARVATION_BOUND`]) — the bound a
//!   broken steal policy (bypassing the victim's DRR order) would blow.
//!
//! `queued` is idempotent by design: a recovered plane legitimately
//! re-announces every invocation its WAL replay brought back, including
//! ones that were mid-lease when it died.

use crate::ModelError;
use std::collections::BTreeMap;

/// Max consecutive best-effort issues while guaranteed work waits. The
/// plane drains guaranteed strictly first, so any sustained run means the
/// class order broke; the bound leaves room for emit/sink interleaving.
const CLASS_STARVATION_BOUND: u32 = 64;

/// Max consecutive issues serving other tenants while one tenant has
/// queued work. DRR with the minimum weight (0.05 vs a heavyweight
/// sibling) still visits every backlogged tenant within a bounded number
/// of grants; a steal path that bypassed DRR would not.
const TENANT_STARVATION_BOUND: u32 = 256;

/// Forgiveness for expiry-vs-deadline comparisons: the sweep decides under
/// its own clock an instant before the bus stamps the event.
const EXPIRY_SLACK_MS: u64 = 100;

#[derive(Debug, Clone, PartialEq)]
enum LeaseState {
    /// In a central queue, eligible for issue.
    Queued,
    /// Leased to `worker` until `expires_at_ms`.
    Live {
        worker: String,
        expires_at_ms: Option<u64>,
    },
    /// Lease expired; the plane owes exactly one requeue.
    AwaitingRequeue,
}

#[derive(Debug, Clone)]
struct Task {
    state: LeaseState,
    tenant: String,
    /// Priority-class name from the `queued`/`issued` events, when carried.
    class: Option<String>,
}

/// The dispatch reference state: every invocation the lease stream has
/// announced, with per-class and per-tenant starvation counters.
#[derive(Debug, Default)]
pub struct DispatchModel {
    tasks: BTreeMap<u64, Task>,
    /// Consecutive best-effort issues while guaranteed work was queued.
    best_effort_run: u32,
    /// Per-tenant: consecutive issues serving *someone else* while this
    /// tenant had queued work.
    passed_over: BTreeMap<String, u32>,
}

impl DispatchModel {
    pub fn new() -> Self {
        Self::default()
    }

    fn queued_in_class(&self, class: &str) -> bool {
        self.tasks
            .iter()
            .any(|(_, t)| t.state == LeaseState::Queued && t.class.as_deref() == Some(class))
    }

    /// Advance on one `lease:{op}` event.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        id: u64,
        tenant: Option<&str>,
        at_ms: u64,
        op: &str,
        worker: &str,
        expires_at_ms: Option<u64>,
        class: Option<&str>,
    ) -> Result<(), ModelError> {
        let tenant = tenant.unwrap_or("default").to_string();
        match op {
            "queued" => {
                // Idempotent: first announcement, a recovery re-announcement
                // (possibly while the dead plane's lease looked live), or a
                // re-enqueue the stream already explained via `requeued`.
                self.tasks.insert(
                    id,
                    Task {
                        state: LeaseState::Queued,
                        tenant,
                        class: class.map(str::to_string),
                    },
                );
                Ok(())
            }
            "stolen" => {
                // The marker preceding a cross-shard issue: the task must
                // still be queued (the issue itself transitions it).
                match self.tasks.get(&id).map(|t| &t.state) {
                    Some(LeaseState::Queued) => Ok(()),
                    Some(state) => Err(ModelError::new(
                        "dispatch-steal-not-queued",
                        format!("trace {id} stolen from `{worker}` while {state:?}"),
                    )),
                    None => Err(ModelError::new(
                        "dispatch-steal-not-queued",
                        format!("trace {id} stolen from `{worker}` but never queued"),
                    )),
                }
            }
            "issued" => {
                let state = self.tasks.get(&id).map(|t| t.state.clone());
                match state {
                    Some(LeaseState::Queued) => {}
                    Some(LeaseState::Live { worker: holder, .. }) => {
                        return Err(ModelError::new(
                            "dispatch-double-lease",
                            format!(
                                "trace {id} issued to `{worker}` while `{holder}`'s lease is live"
                            ),
                        ));
                    }
                    Some(LeaseState::AwaitingRequeue) => {
                        return Err(ModelError::new(
                            "dispatch-lease-not-queued",
                            format!("trace {id} issued to `{worker}` after expiry with no requeue"),
                        ));
                    }
                    None => {
                        return Err(ModelError::new(
                            "dispatch-lease-not-queued",
                            format!("trace {id} issued to `{worker}` but never queued"),
                        ));
                    }
                }
                let issued_class = {
                    let t = self.tasks.get_mut(&id).expect("checked above");
                    t.state = LeaseState::Live {
                        worker: worker.to_string(),
                        expires_at_ms,
                    };
                    if class.is_some() {
                        t.class = class.map(str::to_string);
                    }
                    t.class.clone()
                };
                self.audit_starvation(id, &tenant, issued_class.as_deref())
            }
            "completed" => match self.tasks.get(&id).map(|t| t.state.clone()) {
                Some(LeaseState::Live { .. }) => {
                    self.tasks.remove(&id);
                    self.passed_over.remove(&tenant);
                    Ok(())
                }
                Some(state) => Err(ModelError::new(
                    "dispatch-complete-unleased",
                    format!(
                        "trace {id} completed by `{worker}` while {state:?} — a dead \
                         worker's completion must be dropped, not booked"
                    ),
                )),
                None => Err(ModelError::new(
                    "dispatch-complete-unleased",
                    format!("trace {id} completed by `{worker}` with no live lease"),
                )),
            },
            "expired" => match self.tasks.get(&id).map(|t| t.state.clone()) {
                Some(LeaseState::Live { expires_at_ms, .. }) => {
                    if let Some(deadline) = expires_at_ms {
                        if at_ms.saturating_add(EXPIRY_SLACK_MS) < deadline {
                            return Err(ModelError::new(
                                "dispatch-early-expiry",
                                format!(
                                    "trace {id} expired at t={at_ms}ms before its \
                                     t={deadline}ms deadline"
                                ),
                            ));
                        }
                    }
                    self.tasks.get_mut(&id).expect("checked").state = LeaseState::AwaitingRequeue;
                    Ok(())
                }
                Some(state) => Err(ModelError::new(
                    "dispatch-expire-unleased",
                    format!("trace {id} expired while {state:?}"),
                )),
                None => Err(ModelError::new(
                    "dispatch-expire-unleased",
                    format!("trace {id} expired but was never leased"),
                )),
            },
            "requeued" => match self.tasks.get(&id).map(|t| t.state.clone()) {
                Some(LeaseState::AwaitingRequeue) => {
                    self.tasks.get_mut(&id).expect("checked").state = LeaseState::Queued;
                    Ok(())
                }
                Some(LeaseState::Queued) => Err(ModelError::new(
                    "dispatch-double-requeue",
                    format!("trace {id} requeued twice for one expiry"),
                )),
                Some(state) => Err(ModelError::new(
                    "dispatch-requeue-without-expiry",
                    format!("trace {id} requeued while {state:?}"),
                )),
                None => Err(ModelError::new(
                    "dispatch-requeue-without-expiry",
                    format!("trace {id} requeued but was never queued"),
                )),
            },
            other => Err(ModelError::new(
                "dispatch-unknown-op",
                format!("unknown lease op `{other}`"),
            )),
        }
    }

    /// Starvation counters, updated after a legal issue: the grant serves
    /// `tenant` in `class`.
    fn audit_starvation(
        &mut self,
        id: u64,
        tenant: &str,
        class: Option<&str>,
    ) -> Result<(), ModelError> {
        if class == Some("best_effort") && self.queued_in_class("guaranteed") {
            self.best_effort_run += 1;
            if self.best_effort_run > CLASS_STARVATION_BOUND {
                return Err(ModelError::new(
                    "dispatch-starvation",
                    format!(
                        "trace {id}: {} consecutive best-effort issues while \
                         guaranteed work is queued",
                        self.best_effort_run
                    ),
                ));
            }
        } else if class == Some("guaranteed") {
            self.best_effort_run = 0;
        }
        // Tenant fairness bound: every backlogged tenant other than the one
        // served slips one grant further behind. Deduplicated per tenant —
        // the counter measures grants passed over, not queue depth, so a
        // deep backlog must not multiply each miss.
        let backlogged: std::collections::BTreeSet<String> = self
            .tasks
            .values()
            .filter(|t| t.state == LeaseState::Queued && t.tenant != tenant)
            .map(|t| t.tenant.clone())
            .collect();
        self.passed_over.insert(tenant.to_string(), 0);
        for other in backlogged {
            let n = self.passed_over.entry(other.clone()).or_default();
            *n += 1;
            if *n > TENANT_STARVATION_BOUND {
                return Err(ModelError::new(
                    "dispatch-tenant-starvation",
                    format!(
                        "tenant `{other}` passed over {n} consecutive grants \
                         while backlogged (last grant: trace {id} for `{tenant}`)"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Leases currently live.
    pub fn live(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| matches!(t.state, LeaseState::Live { .. }))
            .count()
    }

    /// Invocations queued (announced, not leased, not completed).
    pub fn queued(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state == LeaseState::Queued)
            .count()
    }

    /// Invocations whose expiry has not yet been requeued.
    pub fn awaiting_requeue(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state == LeaseState::AwaitingRequeue)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(m: &mut DispatchModel, id: u64, op: &str, worker: &str) -> Result<(), ModelError> {
        m.observe(id, Some("a"), 0, op, worker, None, None)
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut m = DispatchModel::new();
        assert!(step(&mut m, 1, "queued", "").is_ok());
        assert!(step(&mut m, 1, "issued", "w0").is_ok());
        assert_eq!(m.live(), 1);
        assert!(step(&mut m, 1, "completed", "w0").is_ok());
        assert_eq!((m.live(), m.queued()), (0, 0));
    }

    #[test]
    fn expiry_requeue_reissue_passes() {
        let mut m = DispatchModel::new();
        for op in [
            "queued",
            "issued",
            "expired",
            "requeued",
            "issued",
            "completed",
        ] {
            assert!(step(&mut m, 1, op, "w0").is_ok(), "op {op}");
        }
    }

    #[test]
    fn double_lease_is_flagged() {
        let mut m = DispatchModel::new();
        step(&mut m, 1, "queued", "").unwrap();
        step(&mut m, 1, "issued", "w0").unwrap();
        let err = step(&mut m, 1, "issued", "w1").unwrap_err();
        assert_eq!(err.rule, "dispatch-double-lease");
    }

    #[test]
    fn reissue_without_requeue_is_flagged() {
        let mut m = DispatchModel::new();
        for op in ["queued", "issued", "expired"] {
            step(&mut m, 1, op, "w0").unwrap();
        }
        let err = step(&mut m, 1, "issued", "w1").unwrap_err();
        assert_eq!(err.rule, "dispatch-lease-not-queued");
    }

    #[test]
    fn double_requeue_is_flagged() {
        let mut m = DispatchModel::new();
        for op in ["queued", "issued", "expired", "requeued"] {
            step(&mut m, 1, op, "w0").unwrap();
        }
        let err = step(&mut m, 1, "requeued", "").unwrap_err();
        assert_eq!(err.rule, "dispatch-double-requeue");
    }

    #[test]
    fn dead_workers_completion_is_flagged() {
        let mut m = DispatchModel::new();
        for op in ["queued", "issued", "expired"] {
            step(&mut m, 1, op, "w0").unwrap();
        }
        let err = step(&mut m, 1, "completed", "w0").unwrap_err();
        assert_eq!(err.rule, "dispatch-complete-unleased");
    }

    #[test]
    fn early_expiry_is_flagged() {
        let mut m = DispatchModel::new();
        m.observe(1, Some("a"), 0, "queued", "", None, None)
            .unwrap();
        m.observe(1, Some("a"), 100, "issued", "w0", Some(2_000), None)
            .unwrap();
        let err = m
            .observe(1, Some("a"), 500, "expired", "w0", None, None)
            .unwrap_err();
        assert_eq!(err.rule, "dispatch-early-expiry");
        assert!(m
            .observe(1, Some("a"), 2_000, "expired", "w0", None, None)
            .is_ok());
    }

    #[test]
    fn recovery_requeue_of_live_lease_is_legal() {
        let mut m = DispatchModel::new();
        step(&mut m, 1, "queued", "").unwrap();
        step(&mut m, 1, "issued", "w0").unwrap();
        // The plane crashed and its replay re-announces the task.
        assert!(step(&mut m, 1, "queued", "").is_ok());
        assert!(step(&mut m, 1, "issued", "w1").is_ok());
        assert!(step(&mut m, 1, "completed", "w1").is_ok());
    }

    #[test]
    fn best_effort_starvation_is_bounded() {
        let mut m = DispatchModel::new();
        m.observe(1, Some("gold"), 0, "queued", "", None, Some("guaranteed"))
            .unwrap();
        let mut tripped = None;
        for i in 0..200u64 {
            let id = 100 + i;
            m.observe(id, Some("b"), 0, "queued", "", None, Some("best_effort"))
                .unwrap();
            if let Err(e) = m.observe(id, Some("b"), 0, "issued", "w0", None, Some("best_effort")) {
                tripped = Some(e);
                break;
            }
            m.observe(id, Some("b"), 0, "completed", "w0", None, None)
                .unwrap();
        }
        let err = tripped.expect("starvation bound must trip");
        assert_eq!(err.rule, "dispatch-starvation");
    }

    #[test]
    fn tenant_passover_is_bounded() {
        let mut m = DispatchModel::new();
        m.observe(1, Some("starved"), 0, "queued", "", None, None)
            .unwrap();
        let mut tripped = None;
        for i in 0..400u64 {
            let id = 100 + i;
            m.observe(id, Some("greedy"), 0, "queued", "", None, None)
                .unwrap();
            if let Err(e) = m.observe(id, Some("greedy"), 0, "issued", "w0", None, None) {
                tripped = Some(e);
                break;
            }
            m.observe(id, Some("greedy"), 0, "completed", "w0", None, None)
                .unwrap();
        }
        let err = tripped.expect("tenant fairness bound must trip");
        assert_eq!(err.rule, "dispatch-tenant-starvation");
    }
}
