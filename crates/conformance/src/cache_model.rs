//! Reference model for the balancer/worker result cache.
//!
//! The cache's contract, as seen on the canonical stream:
//!
//! * **Served ⟹ filled** — every `cache:hit` names a key some prior
//!   `cache:fill` installed and no evict/expire/invalidate has dropped.
//! * **Served ⟹ fresh** — the hit lands before the fill's advertised
//!   `expires_at_ms` (plus a small slack for emit/sink skew).
//! * **Hard tenant walls** — the hit's tenant is the filling tenant;
//!   identical fqdn+args across tenants are distinct entries.
//! * **Served ⟹ durable** — on WAL-backed sources the checker further
//!   requires the fill's originating invocation to have booked an `ok`
//!   completion before the fill (enforced in [`crate::Checker`], which
//!   owns the WAL timelines).
//!
//! Removal ops (`evict`, `expire`, `invalidate`) must name a live entry:
//! dropping a key that was never filled means the implementation's
//! bookkeeping diverged from its advertised stream.

use crate::ModelError;
use std::collections::BTreeMap;

/// Forgiveness window for hit-vs-expiry comparisons: the cache decides
/// freshness under its own clock an instant before the bus stamps the
/// event, so a boundary hit can land a few ms past `expires_at_ms`.
const STALE_SLACK_MS: u64 = 100;

#[derive(Debug, Clone)]
struct Entry {
    tenant: String,
    expires_at_ms: Option<u64>,
}

/// The cache reference state: live entries by idempotency key.
#[derive(Debug, Default)]
pub struct CacheModel {
    entries: BTreeMap<String, Entry>,
}

impl CacheModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// A fill installs (or refreshes) the entry for `key`.
    pub fn fill(&mut self, key: &str, tenant: &str, expires_at_ms: Option<u64>) {
        self.entries.insert(
            key.to_string(),
            Entry {
                tenant: tenant.to_string(),
                expires_at_ms,
            },
        );
    }

    /// A served hit must name a live, unexpired entry filled for the
    /// same tenant.
    pub fn hit(&self, key: &str, tenant: &str, at_ms: u64) -> Result<(), ModelError> {
        let Some(e) = self.entries.get(key) else {
            return Err(ModelError::new(
                "cache-hit-unknown-key",
                format!("hit served for key `{key}` with no live fill"),
            ));
        };
        if e.tenant != tenant {
            return Err(ModelError::new(
                "cache-tenant-isolation",
                format!(
                    "key `{key}` filled by tenant `{}` was served to tenant `{tenant}`",
                    e.tenant
                ),
            ));
        }
        if let Some(exp) = e.expires_at_ms {
            if at_ms > exp.saturating_add(STALE_SLACK_MS) {
                return Err(ModelError::new(
                    "cache-stale-hit",
                    format!("hit at t={at_ms}ms but key `{key}` expired at t={exp}ms"),
                ));
            }
        }
        Ok(())
    }

    /// `evict` / `expire` / `invalidate` drop the entry.
    pub fn remove(&mut self, op: &str, key: &str) -> Result<(), ModelError> {
        if self.entries.remove(key).is_none() {
            return Err(ModelError::new(
                "cache-remove-unknown-key",
                format!("cache:{op} dropped key `{key}` that was never filled"),
            ));
        }
        Ok(())
    }

    /// Live entries the model currently tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_hit_remove_roundtrip() {
        let mut m = CacheModel::new();
        m.fill("f-1@a#00", "a", Some(1_000));
        assert!(m.hit("f-1@a#00", "a", 500).is_ok());
        assert!(m.remove("evict", "f-1@a#00").is_ok());
        assert!(m.is_empty());
    }

    #[test]
    fn unknown_key_hit_is_flagged() {
        let m = CacheModel::new();
        let err = m.hit("ghost", "a", 0).unwrap_err();
        assert_eq!(err.rule, "cache-hit-unknown-key");
    }

    #[test]
    fn stale_hit_is_flagged_with_slack() {
        let mut m = CacheModel::new();
        m.fill("k", "a", Some(1_000));
        assert!(m.hit("k", "a", 1_050).is_ok(), "inside the slack window");
        let err = m.hit("k", "a", 1_200).unwrap_err();
        assert_eq!(err.rule, "cache-stale-hit");
    }

    #[test]
    fn cross_tenant_hit_is_flagged() {
        let mut m = CacheModel::new();
        m.fill("k", "a", None);
        let err = m.hit("k", "b", 0).unwrap_err();
        assert_eq!(err.rule, "cache-tenant-isolation");
    }

    #[test]
    fn removing_a_never_filled_key_is_flagged() {
        let mut m = CacheModel::new();
        let err = m.remove("invalidate", "ghost").unwrap_err();
        assert_eq!(err.rule, "cache-remove-unknown-key");
        assert_eq!(m.len(), 0);
    }
}
