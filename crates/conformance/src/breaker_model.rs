//! Reference model for the per-target circuit breaker.
//!
//! Two views of the same machine:
//!
//! * [`BreakerMachine`] — the *command-level* spec: feed it the stimuli the
//!   cluster can generate (failure, probe success, cooldown, attach,
//!   detach) and it produces the next state plus the event the
//!   implementation must emit. The exhaustive transition-table test
//!   enumerates every (state, stimulus) pair against it.
//! * [`BreakerModel`] — the *stream-level* checker: consumes observed
//!   `breaker:{open,half_open,closed}` and membership events per target and
//!   flags illegal edges:
//!
//! ```text
//!             trip (failures ≥ threshold)
//!   Closed ───────────────────────────────▶ Open
//!      ▲                                     │ cooldown elapsed
//!      │ probe success                       ▼
//!      └───────────────────────────────── HalfOpen
//!                 failed probe: HalfOpen ──▶ Open (re-open)
//! ```
//!
//! Rules: `breaker-illegal-transition` (an emitted state not reachable by
//! one legal edge from the current state), `draining-never-trips` (a target
//! the balancer is draining must not be tripped open — drain suppression is
//! not a failure), `breaker-on-empty-slot` (events for detached targets).

use crate::ModelError;
use std::collections::{BTreeMap, BTreeSet};

/// The three breaker states, as emitted on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open),
            "half_open" => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

/// Everything the cluster can do to one target's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// A dispatch or probe against the target failed.
    Failure,
    /// A health probe succeeded.
    ProbeSuccess,
    /// The open-state cooldown elapsed (the periodic `advance`).
    CooldownElapsed,
    /// The target was attached to a slot (enters awaiting-admission:
    /// an Open breaker whose cooldown is already over).
    Attach,
    /// The target was detached; its breaker state is discarded.
    Detach,
}

impl Stimulus {
    pub const ALL: [Stimulus; 5] = [
        Stimulus::Failure,
        Stimulus::ProbeSuccess,
        Stimulus::CooldownElapsed,
        Stimulus::Attach,
        Stimulus::Detach,
    ];
}

/// Command-level executable spec of one breaker.
#[derive(Debug, Clone)]
pub struct BreakerMachine {
    pub state: BreakerState,
    pub failures: u32,
    pub threshold: u32,
}

impl BreakerMachine {
    pub fn new(threshold: u32) -> Self {
        Self {
            state: BreakerState::Closed,
            failures: 0,
            threshold: threshold.max(1),
        }
    }

    /// Apply one stimulus; returns the breaker event label the
    /// implementation must emit for this edge (`None` = silent).
    pub fn step(&mut self, s: Stimulus) -> Option<&'static str> {
        match (self.state, s) {
            (BreakerState::Closed, Stimulus::Failure) => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.failures = 0;
                    Some("open")
                } else {
                    None
                }
            }
            (BreakerState::HalfOpen, Stimulus::Failure) => {
                // Failed probe: straight back to Open (re-open, no
                // eviction re-count).
                self.state = BreakerState::Open;
                Some("open")
            }
            (BreakerState::Open, Stimulus::Failure) => None, // already open
            (BreakerState::Closed, Stimulus::ProbeSuccess) => {
                self.failures = 0;
                None
            }
            (BreakerState::HalfOpen, Stimulus::ProbeSuccess)
            | (BreakerState::Open, Stimulus::ProbeSuccess) => {
                // Open+ProbeSuccess is unreachable in the implementation
                // (probes are suppressed while Open); the spec still
                // defines it, mirroring `record_success`'s "any non-Closed
                // state closes" code path.
                self.state = BreakerState::Closed;
                self.failures = 0;
                Some("closed")
            }
            (BreakerState::Open, Stimulus::CooldownElapsed) => {
                self.state = BreakerState::HalfOpen;
                Some("half_open")
            }
            (_, Stimulus::CooldownElapsed) => None,
            (_, Stimulus::Attach) => {
                // Awaiting admission: Open with an already-elapsed
                // cooldown, so the first advance probes it. Silent — the
                // stream carries `membership:attach` instead.
                self.state = BreakerState::Open;
                self.failures = 0;
                None
            }
            (_, Stimulus::Detach) => {
                self.state = BreakerState::Closed;
                self.failures = 0;
                None
            }
        }
    }
}

/// Stream-level breaker conformance over every target.
#[derive(Debug, Default)]
pub struct BreakerModel {
    /// Observed state per attached target. Constructor-seeded workers start
    /// Closed; workers attached via `membership:attach` start Open
    /// (awaiting admission).
    state: BTreeMap<String, BreakerState>,
    draining: BTreeSet<String>,
}

impl BreakerModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// A target present before the stream began (constructor-seeded slot):
    /// breaker starts Closed.
    pub fn seed(&mut self, target: &str) {
        self.state.insert(target.to_string(), BreakerState::Closed);
    }

    /// `membership:attach` for `target`.
    pub fn attached(&mut self, target: &str) {
        // Awaiting admission = Open, cooldown pre-elapsed.
        self.state.insert(target.to_string(), BreakerState::Open);
        self.draining.remove(target);
    }

    /// `membership:draining` for `target`.
    pub fn draining(&mut self, target: &str) {
        self.draining.insert(target.to_string());
    }

    /// `membership:detach` for `target` — breaker state discarded.
    pub fn detached(&mut self, target: &str) {
        self.state.remove(target);
        self.draining.remove(target);
    }

    pub fn state_of(&self, target: &str) -> Option<BreakerState> {
        self.state.get(target).copied()
    }

    /// An observed `breaker:{state}` event for `target`.
    pub fn observe(&mut self, target: &str, state_label: &str) -> Result<(), ModelError> {
        let Some(next) = BreakerState::parse(state_label) else {
            return Err(ModelError::new(
                "breaker-illegal-transition",
                format!("target `{target}` emitted unknown breaker state `{state_label}`"),
            ));
        };
        let Some(cur) = self.state.get(target).copied() else {
            return Err(ModelError::new(
                "breaker-on-empty-slot",
                format!("breaker event `{state_label}` for detached target `{target}`"),
            ));
        };
        let legal = matches!(
            (cur, next),
            // Trip from Closed, or a failed probe re-opening from HalfOpen.
            (BreakerState::Closed, BreakerState::Open)
                | (BreakerState::HalfOpen, BreakerState::Open)
                // Cooldown elapsed.
                | (BreakerState::Open, BreakerState::HalfOpen)
                // Successful probe.
                | (BreakerState::HalfOpen, BreakerState::Closed)
        );
        if !legal {
            return Err(ModelError::new(
                "breaker-illegal-transition",
                format!(
                    "target `{target}`: `{}` → `{}` is not a legal breaker edge",
                    cur.label(),
                    next.label()
                ),
            ));
        }
        if next == BreakerState::Open
            && cur == BreakerState::Closed
            && self.draining.contains(target)
        {
            return Err(ModelError::new(
                "draining-never-trips",
                format!("draining target `{target}` was tripped open — drain suppression must not count as failure"),
            ));
        }
        self.state.insert(target.to_string(), next);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_trips_at_threshold() {
        let mut m = BreakerMachine::new(2);
        assert_eq!(m.step(Stimulus::Failure), None);
        assert_eq!(m.step(Stimulus::Failure), Some("open"));
        assert_eq!(m.state, BreakerState::Open);
        assert_eq!(m.step(Stimulus::CooldownElapsed), Some("half_open"));
        assert_eq!(m.step(Stimulus::ProbeSuccess), Some("closed"));
        assert_eq!(m.state, BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut m = BreakerMachine::new(1);
        m.step(Stimulus::Failure);
        m.step(Stimulus::CooldownElapsed);
        assert_eq!(m.step(Stimulus::Failure), Some("open"));
    }

    #[test]
    fn stream_model_accepts_legal_cycle() {
        let mut b = BreakerModel::new();
        b.seed("w0");
        b.observe("w0", "open").unwrap();
        b.observe("w0", "half_open").unwrap();
        b.observe("w0", "closed").unwrap();
        b.observe("w0", "open").unwrap();
    }

    #[test]
    fn stream_model_rejects_skipped_edges() {
        let mut b = BreakerModel::new();
        b.seed("w0");
        // Closed → half_open skips the trip.
        assert_eq!(
            b.observe("w0", "half_open").unwrap_err().rule,
            "breaker-illegal-transition"
        );
        b.observe("w0", "open").unwrap();
        // Open → closed skips the probe.
        assert_eq!(
            b.observe("w0", "closed").unwrap_err().rule,
            "breaker-illegal-transition"
        );
    }

    #[test]
    fn draining_targets_must_not_trip() {
        let mut b = BreakerModel::new();
        b.seed("w1");
        b.draining("w1");
        assert_eq!(
            b.observe("w1", "open").unwrap_err().rule,
            "draining-never-trips"
        );
    }

    #[test]
    fn attach_enters_awaiting_admission() {
        let mut b = BreakerModel::new();
        b.attached("w2");
        // First legal event is the post-probe half_open, then closed.
        b.observe("w2", "half_open").unwrap();
        b.observe("w2", "closed").unwrap();
        b.detached("w2");
        assert_eq!(
            b.observe("w2", "open").unwrap_err().rule,
            "breaker-on-empty-slot"
        );
    }
}
