//! Run the conformance [`Checker`] *online*, as a telemetry-bus sink.
//!
//! Post-hoc checking replays a captured stream after the run; the online
//! sink feeds every event into the checker at emit time, so a violation is
//! known the moment the offending event leaves the worker — the test can
//! fail fast with the live context window instead of diffing artifacts
//! later. The checker itself is single-threaded by design; the sink wraps
//! it in a mutex since bus emitters call from many threads.

use crate::checker::{Checker, ConformanceReport, Violation};
use iluvatar_telemetry::{TelemetryEvent, TelemetrySink};
use std::sync::Mutex;

/// A [`TelemetrySink`] that drives a [`Checker`] at emit time.
pub struct CheckerSink {
    checker: Mutex<Option<Checker>>,
}

impl CheckerSink {
    pub fn new(checker: Checker) -> Self {
        Self {
            checker: Mutex::new(Some(checker)),
        }
    }

    /// A source legitimately restarted (recovered incarnation); see
    /// [`Checker::note_restart`].
    pub fn note_restart(&self, source: &str) {
        if let Some(c) = self.checker.lock().unwrap().as_mut() {
            c.note_restart(source);
        }
    }

    /// Violations recorded so far (clones; the stream keeps flowing).
    pub fn violations(&self) -> Vec<Violation> {
        self.checker
            .lock()
            .unwrap()
            .as_ref()
            .map(|c| c.violations().to_vec())
            .unwrap_or_default()
    }

    /// Close the stream and produce the end-of-run report. Events arriving
    /// after `finish` are dropped.
    pub fn finish(&self) -> ConformanceReport {
        self.checker
            .lock()
            .unwrap()
            .take()
            .map(Checker::finish)
            .unwrap_or_default()
    }
}

impl TelemetrySink for CheckerSink {
    fn emit(&self, ev: &TelemetryEvent) {
        if let Some(c) = self.checker.lock().unwrap().as_mut() {
            c.ingest(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_telemetry::TelemetryKind;

    #[test]
    fn sink_ingests_and_finishes() {
        let sink = CheckerSink::new(Checker::new().with_require_terminal(false));
        sink.emit(&TelemetryEvent {
            seq: 1,
            at_ms: 0,
            source: "w".into(),
            trace_id: Some(1),
            tenant: None,
            kind: TelemetryKind::Trace {
                stage: "ingested".into(),
            },
        });
        assert!(sink.violations().is_empty());
        let report = sink.finish();
        assert_eq!(report.events, 1);
        // After finish the sink is inert.
        sink.emit(&TelemetryEvent {
            seq: 2,
            at_ms: 0,
            source: "w".into(),
            trace_id: None,
            tenant: None,
            kind: TelemetryKind::Lifecycle {
                state: "running".into(),
            },
        });
        assert_eq!(sink.finish().events, 0);
    }
}
