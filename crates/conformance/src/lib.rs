//! Executable reference models for the control plane's stateful cores, and
//! a [`Checker`] that replays the canonical telemetry stream (or a raw WAL
//! file) against them.
//!
//! Each model is a small guarded-transition state machine in the TLA+
//! tradition: a handful of states, explicit legality predicates on every
//! transition, and a `ModelError` naming the violated rule when a guard
//! fails. The models are independent of the implementation crates' internal
//! state — they consume only the *observable* stream — so they double as a
//! precise, executable statement of each subsystem's contract:
//!
//! * [`WalModel`] — accepted ⟹ durable, at-least-once execution,
//!   exactly-once accounting, no appends after poison.
//! * [`DrrModel`] — deficit round-robin refinement: bounded deficits and
//!   long-run weighted fairness; strict pop-order refinement when driven
//!   single-threaded.
//! * [`BreakerModel`] / [`BreakerMachine`] — legal trip/probe/cooldown
//!   transitions per target; draining never trips the breaker.
//! * [`FleetModel`] — slot CAS on attach, drain-never-kill on detach,
//!   scale-trajectory continuity, per-worker lifecycle legality.
//!
//! The [`Checker`] multiplexes one event stream across all four models plus
//! a per-invocation timeline model, keeps a bounded ring of preceding
//! events, and reports the **first violating event with its context
//! window** — the conformance analogue of the flight recorder.

pub mod breaker_model;
pub mod cache_model;
pub mod checker;
pub mod dispatch_model;
pub mod drr_model;
pub mod fleet_model;
pub mod online;
pub mod wal_model;

pub use breaker_model::{BreakerMachine, BreakerModel, BreakerState, Stimulus};
pub use cache_model::CacheModel;
pub use checker::{Checker, ConformanceReport, Violation};
pub use dispatch_model::DispatchModel;
pub use drr_model::DrrModel;
pub use fleet_model::FleetModel;
pub use online::CheckerSink;
pub use wal_model::{InvState, WalModel};

/// A violated transition guard: which rule, and what the model saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// Stable rule identifier (`double-complete`, `drain-never-kill`, …).
    pub rule: &'static str,
    /// Human-readable account of the offending transition.
    pub detail: String,
}

impl ModelError {
    pub fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        Self {
            rule,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

impl std::error::Error for ModelError {}
