//! Differential DRR proptest: the real [`DrrQueue`] and the conformance
//! checker's strict DRR model consume the *same* command sequence — every
//! pop the queue makes must be exactly the pop the reference model
//! predicts, deficits must stay inside the quantum bound, and the weighted
//! fairness audit (±10%) must hold over any backlogged window.

use iluvatar_conformance::Checker;
use iluvatar_core::queue::QueuedInvocation;
use iluvatar_core::{DrrQueue, InvocationHandle};
use iluvatar_telemetry::{TelemetryEvent, TelemetryKind};
use proptest::prelude::*;
use std::collections::BTreeMap;

const QUANTUM: u64 = 50;
const TENANTS: [(&str, f64); 3] = [("a", 1.0), ("b", 2.0), ("c", 4.0)];

/// Real queue + strict checker lockstep harness. The checker re-derives the
/// model's pop from the synthesized `wal:enqueued`/`wal:dequeued` stream,
/// so any divergence between queue and model surfaces as a violation.
struct Lockstep {
    queue: DrrQueue,
    checker: Checker,
    seq: u64,
    next_id: u64,
    keep_alive: Vec<InvocationHandle>,
    /// cost served per tenant, for the manual fairness cross-check.
    served: BTreeMap<String, f64>,
}

impl Lockstep {
    fn new() -> Self {
        Self {
            queue: DrrQueue::new(QUANTUM),
            checker: Checker::new().with_drr_strict(QUANTUM as f64),
            seq: 0,
            next_id: 1,
            keep_alive: Vec::new(),
            served: BTreeMap::new(),
        }
    }

    fn emit(&mut self, id: u64, tenant: &str, kind: TelemetryKind) {
        self.seq += 1;
        self.checker.ingest(&TelemetryEvent {
            seq: self.seq,
            at_ms: self.seq,
            source: "drrdiff".to_string(),
            trace_id: Some(id),
            tenant: Some(tenant.to_string()),
            kind,
        });
    }

    fn push(&mut self, tenant: &str, weight: f64, cost: f64) {
        let id = self.next_id;
        self.next_id += 1;
        let (tx, handle) = InvocationHandle::pair();
        self.keep_alive.push(handle);
        self.emit(
            id,
            tenant,
            TelemetryKind::Wal {
                op: "enqueued".to_string(),
                cost_ms: Some(cost),
                weight: Some(weight),
                ok: None,
                throttled: None,
            },
        );
        self.queue.push(QueuedInvocation {
            fqdn: "f-1".to_string(),
            args: String::new(),
            trace_id: id,
            arrived_at: id,
            expected_exec_ms: cost,
            iat_ms: 0.0,
            expect_warm: true,
            tenant: Some(tenant.to_string()),
            tenant_weight: weight,
            result_tx: tx,
        });
    }

    /// Pop from the real queue; returns false when empty.
    fn pop(&mut self) -> bool {
        let Some(item) = self.queue.pop() else {
            return false;
        };
        let tenant = item.tenant.clone().unwrap_or_default();
        *self.served.entry(tenant.clone()).or_insert(0.0) += item.expected_exec_ms;
        self.emit(item.trace_id, &tenant, TelemetryKind::wal("dequeued"));
        self.emit(
            item.trace_id,
            &tenant,
            TelemetryKind::Wal {
                op: "completed".to_string(),
                cost_ms: None,
                weight: None,
                ok: Some(true),
                throttled: None,
            },
        );
        true
    }
}

proptest! {
    /// Any interleaving of pushes and pops keeps the real queue in lockstep
    /// with the reference model: strict pop order, deficit bound, fairness.
    #[test]
    fn real_queue_stays_in_lockstep_with_model(
        cmds in proptest::collection::vec((0u8..10, 0u8..35), 20..200),
    ) {
        let mut sim = Lockstep::new();
        for &(op, cost_sel) in &cmds {
            if op < 4 {
                // ops 0..4 → push for tenant op%3; cost 5..40 ms.
                let (t, w) = TENANTS[(op % 3) as usize];
                sim.push(t, w, 5.0 + cost_sel as f64);
            } else {
                sim.pop();
            }
        }
        while sim.pop() {}
        let report = sim.checker.finish();
        prop_assert!(
            report.ok(),
            "queue diverged from the DRR model: {:?}",
            report.violations
        );
    }

    /// Starting from any backlog shape, a full drain still matches the
    /// model pop-for-pop (the drain path exercises round-robin wraparound
    /// and active-list removal).
    #[test]
    fn drain_from_any_backlog_matches_model(
        backlog in proptest::collection::vec((0u8..3, 1u8..40), 1..120),
    ) {
        let mut sim = Lockstep::new();
        for &(t_idx, cost) in &backlog {
            let (t, w) = TENANTS[t_idx as usize];
            sim.push(t, w, cost as f64);
        }
        while sim.pop() {}
        let report = sim.checker.finish();
        prop_assert!(report.ok(), "drain diverged: {:?}", report.violations);
        prop_assert_eq!(report.wal_pending.len(), 0, "drain left pending work");
    }
}

/// Deterministic weighted-fairness case: three tenants with weights 1:2:4,
/// all continuously backlogged, uniform cost that divides the quantum.
/// Service must split exactly proportionally to weight — checked both by
/// the checker's ±10% audit and by a direct ratio assertion.
#[test]
fn backlogged_tenants_share_service_by_weight() {
    const COST: f64 = 10.0; // 5 pops per quantum·weight unit
    let mut sim = Lockstep::new();
    for _ in 0..60 {
        for &(t, w) in &TENANTS {
            sim.push(t, w, COST);
        }
    }
    // 3 full DRR rounds: (1+2+4) × quantum/cost = 35 pops per round.
    // Every tenant stays backlogged throughout (tenant a: 60 queued, 15 served).
    for _ in 0..105 {
        assert!(sim.pop(), "queue drained early");
    }
    let total: f64 = sim.served.values().sum();
    let weight_sum: f64 = TENANTS.iter().map(|&(_, w)| w).sum();
    for &(t, w) in &TENANTS {
        let got = sim.served.get(t).copied().unwrap_or(0.0) / total;
        let want = w / weight_sum;
        assert!(
            (got - want).abs() <= 0.10 * want,
            "tenant `{t}` got {:.1}% of service, weight entitles {:.1}%",
            got * 100.0,
            want * 100.0
        );
    }
    while sim.pop() {}
    let report = sim.checker.finish();
    assert!(
        report.ok(),
        "fairness audit failed: {:?}",
        report.violations
    );
}

/// Deficit regression guard: tiny costs with a huge backlog must not let
/// any tenant's deficit accumulate past the bound (quantum × weight plus
/// one max item) — the model enforces this per pop; this case just makes
/// the pathological shape explicit.
#[test]
fn tiny_costs_do_not_accumulate_deficit() {
    let mut sim = Lockstep::new();
    for i in 0..200 {
        let (t, w) = TENANTS[i % 3];
        sim.push(t, w, 1.0);
    }
    while sim.pop() {}
    let report = sim.checker.finish();
    assert!(
        report.ok(),
        "deficit bound violated: {:?}",
        report.violations
    );
}
