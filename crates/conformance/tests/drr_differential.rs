//! Differential DRR proptest: the real [`DrrQueue`] and the conformance
//! checker's strict DRR model consume the *same* command sequence — every
//! pop the queue makes must be exactly the pop the reference model
//! predicts, deficits must stay inside the quantum bound, and the weighted
//! fairness audit (±10%) must hold over any backlogged window.

use iluvatar_conformance::Checker;
use iluvatar_core::queue::QueuedInvocation;
use iluvatar_core::{DrrQueue, InvocationHandle};
use iluvatar_telemetry::{TelemetryEvent, TelemetryKind};
use proptest::prelude::*;
use std::collections::BTreeMap;

const QUANTUM: u64 = 50;
const TENANTS: [(&str, f64); 3] = [("a", 1.0), ("b", 2.0), ("c", 4.0)];

/// Real queue + strict checker lockstep harness. The checker re-derives the
/// model's pop from the synthesized `wal:enqueued`/`wal:dequeued` stream,
/// so any divergence between queue and model surfaces as a violation.
struct Lockstep {
    queue: DrrQueue,
    checker: Checker,
    seq: u64,
    next_id: u64,
    keep_alive: Vec<InvocationHandle>,
    /// cost served per tenant, for the manual fairness cross-check.
    served: BTreeMap<String, f64>,
}

impl Lockstep {
    fn new() -> Self {
        Self {
            queue: DrrQueue::new(QUANTUM),
            checker: Checker::new().with_drr_strict(QUANTUM as f64),
            seq: 0,
            next_id: 1,
            keep_alive: Vec::new(),
            served: BTreeMap::new(),
        }
    }

    fn emit(&mut self, id: u64, tenant: &str, kind: TelemetryKind) {
        self.seq += 1;
        self.checker.ingest(&TelemetryEvent {
            seq: self.seq,
            at_ms: self.seq,
            source: "drrdiff".to_string(),
            trace_id: Some(id),
            tenant: Some(tenant.to_string()),
            kind,
        });
    }

    fn push(&mut self, tenant: &str, weight: f64, cost: f64) {
        let id = self.next_id;
        self.next_id += 1;
        let (tx, handle) = InvocationHandle::pair();
        self.keep_alive.push(handle);
        self.emit(
            id,
            tenant,
            TelemetryKind::Wal {
                op: "enqueued".to_string(),
                cost_ms: Some(cost),
                weight: Some(weight),
                ok: None,
                throttled: None,
            },
        );
        self.queue.push(QueuedInvocation {
            fqdn: "f-1".to_string(),
            args: String::new(),
            trace_id: id,
            arrived_at: id,
            expected_exec_ms: cost,
            iat_ms: 0.0,
            expect_warm: true,
            tenant: Some(tenant.to_string()),
            tenant_weight: weight,
            result_tx: tx,
        });
    }

    /// Pop from the real queue; returns false when empty.
    fn pop(&mut self) -> bool {
        let Some(item) = self.queue.pop() else {
            return false;
        };
        let tenant = item.tenant.clone().unwrap_or_default();
        *self.served.entry(tenant.clone()).or_insert(0.0) += item.expected_exec_ms;
        self.emit(item.trace_id, &tenant, TelemetryKind::wal("dequeued"));
        self.emit(
            item.trace_id,
            &tenant,
            TelemetryKind::Wal {
                op: "completed".to_string(),
                cost_ms: None,
                weight: None,
                ok: Some(true),
                throttled: None,
            },
        );
        true
    }
}

proptest! {
    /// Any interleaving of pushes and pops keeps the real queue in lockstep
    /// with the reference model: strict pop order, deficit bound, fairness.
    #[test]
    fn real_queue_stays_in_lockstep_with_model(
        cmds in proptest::collection::vec((0u8..10, 0u8..35), 20..200),
    ) {
        let mut sim = Lockstep::new();
        for &(op, cost_sel) in &cmds {
            if op < 4 {
                // ops 0..4 → push for tenant op%3; cost 5..40 ms.
                let (t, w) = TENANTS[(op % 3) as usize];
                sim.push(t, w, 5.0 + cost_sel as f64);
            } else {
                sim.pop();
            }
        }
        while sim.pop() {}
        let report = sim.checker.finish();
        prop_assert!(
            report.ok(),
            "queue diverged from the DRR model: {:?}",
            report.violations
        );
    }

    /// Starting from any backlog shape, a full drain still matches the
    /// model pop-for-pop (the drain path exercises round-robin wraparound
    /// and active-list removal).
    #[test]
    fn drain_from_any_backlog_matches_model(
        backlog in proptest::collection::vec((0u8..3, 1u8..40), 1..120),
    ) {
        let mut sim = Lockstep::new();
        for &(t_idx, cost) in &backlog {
            let (t, w) = TENANTS[t_idx as usize];
            sim.push(t, w, cost as f64);
        }
        while sim.pop() {}
        let report = sim.checker.finish();
        prop_assert!(report.ok(), "drain diverged: {:?}", report.violations);
        prop_assert_eq!(report.wal_pending.len(), 0, "drain left pending work");
    }
}

/// Deterministic weighted-fairness case: three tenants with weights 1:2:4,
/// all continuously backlogged, uniform cost that divides the quantum.
/// Service must split exactly proportionally to weight — checked both by
/// the checker's ±10% audit and by a direct ratio assertion.
#[test]
fn backlogged_tenants_share_service_by_weight() {
    const COST: f64 = 10.0; // 5 pops per quantum·weight unit
    let mut sim = Lockstep::new();
    for _ in 0..60 {
        for &(t, w) in &TENANTS {
            sim.push(t, w, COST);
        }
    }
    // 3 full DRR rounds: (1+2+4) × quantum/cost = 35 pops per round.
    // Every tenant stays backlogged throughout (tenant a: 60 queued, 15 served).
    for _ in 0..105 {
        assert!(sim.pop(), "queue drained early");
    }
    let total: f64 = sim.served.values().sum();
    let weight_sum: f64 = TENANTS.iter().map(|&(_, w)| w).sum();
    for &(t, w) in &TENANTS {
        let got = sim.served.get(t).copied().unwrap_or(0.0) / total;
        let want = w / weight_sum;
        assert!(
            (got - want).abs() <= 0.10 * want,
            "tenant `{t}` got {:.1}% of service, weight entitles {:.1}%",
            got * 100.0,
            want * 100.0
        );
    }
    while sim.pop() {}
    let report = sim.checker.finish();
    assert!(
        report.ok(),
        "fairness audit failed: {:?}",
        report.violations
    );
}

/// Deficit regression guard: tiny costs with a huge backlog must not let
/// any tenant's deficit accumulate past the bound (quantum × weight plus
/// one max item) — the model enforces this per pop; this case just makes
/// the pathological shape explicit.
#[test]
fn tiny_costs_do_not_accumulate_deficit() {
    let mut sim = Lockstep::new();
    for i in 0..200 {
        let (t, w) = TENANTS[i % 3];
        sim.push(t, w, 1.0);
    }
    while sim.pop() {}
    let report = sim.checker.finish();
    assert!(
        report.ok(),
        "deficit bound violated: {:?}",
        report.violations
    );
}

// ---------------------------------------------------------------------------
// Steal lockstep: the same DRR contract, now inside the pull plane. The real
// `PullPlane` runs DRR per worker shard and lets an idle worker steal from a
// sibling's shard; the checker's DispatchModel rides the plane's own
// telemetry stream, so a steal path that bypassed the victim's DRR order
// (or double-leased across the shard boundary) surfaces as a violation.
// ---------------------------------------------------------------------------

use iluvatar_admission::{TenantRegistry, TenantSpec};
use iluvatar_dispatch::{DispatchConfig, PullPlane};
use iluvatar_sync::{Clock, ManualClock};
use iluvatar_telemetry::{TelemetrySink, VecSink};
use std::sync::Arc;

const STEAL_WORKERS: [&str; 3] = ["w0", "w1", "w2"];

fn steal_plane(seed: u64) -> (Arc<PullPlane>, Arc<VecSink>) {
    let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
    let sink = Arc::new(VecSink::new());
    let bus = iluvatar_telemetry::TelemetryBus::new("lb", Arc::clone(&clock));
    bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    let mut cfg = DispatchConfig::pull();
    // No expiry noise: these cases are about grant *order*, not recovery.
    cfg.lease_ttl_ms = 1_000_000;
    cfg.seed = seed;
    let plane = Arc::new(PullPlane::new(cfg, Arc::clone(&clock)));
    plane.set_telemetry(bus);
    let registry = Arc::new(TenantRegistry::new(Arc::clone(&clock)));
    for &(t, w) in &TENANTS {
        registry.upsert(TenantSpec::new(t).with_weight(w));
    }
    plane.set_registry(registry);
    for w in STEAL_WORKERS {
        plane.register_worker(w);
    }
    (plane, sink)
}

fn conformant(sink: &VecSink) -> iluvatar_conformance::ConformanceReport {
    let mut checker = Checker::new().with_require_terminal(false);
    for ev in sink.events() {
        checker.ingest(&ev);
    }
    checker.finish()
}

proptest! {
    /// Any interleaving of enqueues (random tenant/fqdn, so home shards
    /// scatter) and pulls (random worker, so empty home shards steal)
    /// keeps the plane's lease stream in lockstep with the DispatchModel:
    /// no double-lease across shard boundaries, no phantom completion,
    /// and the tenant-fairness bound holds through every steal.
    #[test]
    fn pull_plane_steals_stay_in_lockstep_with_model(
        cmds in proptest::collection::vec((0u8..8, 0u8..6), 20..150),
        seed in 0u64..64,
    ) {
        let (plane, sink) = steal_plane(seed);
        let mut enqueued = 0u64;
        for &(op, sel) in &cmds {
            if op < 4 {
                let (t, _) = TENANTS[(sel % 3) as usize];
                plane
                    .enqueue(&format!("f-{sel}"), "{}", Some(t))
                    .expect("accept");
                enqueued += 1;
            } else {
                let w = STEAL_WORKERS[(op % 3) as usize];
                for l in plane.pull(w, 2) {
                    plane.complete(l.lease_id, true, "ok", 1);
                }
            }
        }
        // Drain through one worker: everything left on the other shards
        // arrives via the steal path.
        let mut spins = 0;
        while plane.depth() > 0 {
            for l in plane.pull("w0", 4) {
                plane.complete(l.lease_id, true, "ok", 1);
            }
            spins += 1;
            prop_assert!(spins < 10_000, "drain did not converge");
        }
        let c = plane.counters();
        prop_assert_eq!(c.completed, enqueued, "every accepted task completes once");
        let report = conformant(&sink);
        prop_assert!(
            report.ok(),
            "steal interleaving diverged from the dispatch model: {:?}",
            report.violations
        );
    }
}

/// Deterministic steal-fairness case: every task homes on one shard (a
/// single fqdn), three tenants with weights 1:2:4 stay backlogged, and a
/// *sibling* worker drains the shard entirely via steals. The thief must
/// inherit the victim's DRR order — per-tenant grant shares stay
/// proportional to weight over the backlogged window — and the stream must
/// replay clean through the DispatchModel's starvation audit.
#[test]
fn cross_shard_steals_preserve_victim_drr_order() {
    let (plane, sink) = steal_plane(7);
    const ROUNDS: usize = 80;
    for _ in 0..ROUNDS {
        for &(t, _) in &TENANTS {
            plane.enqueue("f-steal", "{}", Some(t)).expect("accept");
        }
    }
    // All work homes on fnv("f-steal")'s shard; steal from a sibling.
    let home = plane
        .shard_depths()
        .into_iter()
        .find(|(_, d)| *d > 0)
        .map(|(w, _)| w)
        .expect("backlog homed somewhere");
    let thief = STEAL_WORKERS
        .iter()
        .find(|&&w| w != home)
        .expect("sibling exists");

    let mut grants: Vec<String> = Vec::new();
    loop {
        let leases = plane.pull(thief, 1);
        if leases.is_empty() {
            break;
        }
        for l in leases {
            assert_eq!(
                l.stolen_from.as_deref(),
                Some(home.as_str()),
                "every grant to the thief must record the victim shard"
            );
            grants.push(l.task.tenant.clone().unwrap_or_default());
            plane.complete(l.lease_id, true, "ok", 1);
        }
    }
    assert_eq!(grants.len(), ROUNDS * TENANTS.len(), "full drain");
    assert_eq!(
        plane.counters().stolen,
        (ROUNDS * TENANTS.len()) as u64,
        "every grant crossed the shard boundary"
    );

    // Weighted fairness over a window where all tenants stay backlogged:
    // 105 grants = 15 full unit-cost DRR rounds of (1 + 2 + 4).
    let window = &grants[..105];
    let weight_sum: f64 = TENANTS.iter().map(|&(_, w)| w).sum();
    for &(t, w) in &TENANTS {
        let got = window.iter().filter(|g| g.as_str() == t).count() as f64 / window.len() as f64;
        let want = w / weight_sum;
        assert!(
            (got - want).abs() <= 0.15 * want,
            "stolen grants for `{t}`: {:.1}% of the window, weight entitles {:.1}%",
            got * 100.0,
            want * 100.0
        );
    }

    let report = conformant(&sink);
    assert!(
        report.ok(),
        "steal drain diverged from the dispatch model: {:?}",
        report.violations
    );
}
