//! Crash-consistency sweep: inject a disk fault at every k-th I/O of a
//! seeded trace, kill the worker mid-trace, and recover. For every (fault
//! kind, k) cell the recovered state must be model-legal (zero checker
//! violations on the surviving log), accounting must be exactly-once (a
//! durably-completed invocation is never resurrected into the pending set),
//! and the recovered worker must run every replayed invocation to
//! completion. The write ladder (retry → rotate) is what makes this hold:
//! a fault on the k-th attempt is retried on the (k+1)-th, so accepted
//! records always land even though individual writes keep failing.

use iluvatar_chaos::{DiskFaultPlanConfig, FaultSpec, FaultyStorage};
use iluvatar_conformance::Checker;
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{
    wal, AdmissionConfig, LifecycleConfig, TenantSpec, WalConfig, WalRecord, Worker, WorkerConfig,
};
use iluvatar_sync::{RealStorage, SystemClock};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("iluvatar-crashsweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn worker_cfg(wal_path: &str) -> WorkerConfig {
    WorkerConfig {
        lifecycle: LifecycleConfig {
            snapshot_every: 6,
            wal: WalConfig {
                fsync: "always".into(),
                retry_limit: 3,
                ..WalConfig::default()
            },
            ..LifecycleConfig::with_wal(wal_path)
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("sweep-a"),
            TenantSpec::new("sweep-b"),
        ]),
        ..WorkerConfig::for_testing()
    }
}

fn mk_backend(clock: &Arc<dyn iluvatar_sync::Clock>) -> Arc<dyn ContainerBackend> {
    Arc::new(SimBackend::new(
        Arc::clone(clock),
        SimBackendConfig {
            time_scale: 0.01,
            ..Default::default()
        },
    ))
}

/// All surviving segment bytes of the WAL at `base`, in replay order.
fn wal_bytes(base: &Path) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (_, seg) in wal::discover_segments(&RealStorage, base) {
        bytes.extend_from_slice(&std::fs::read(&seg).expect("read segment"));
    }
    bytes
}

#[derive(Clone, Copy)]
enum FaultKind {
    FsyncFail,
    TornWrite,
    Enospc,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::FsyncFail => "fsync",
            FaultKind::TornWrite => "torn",
            FaultKind::Enospc => "enospc",
        }
    }

    fn plan(self, seed: u64, k: u64) -> DiskFaultPlanConfig {
        let spec = FaultSpec::every_nth(k);
        match self {
            FaultKind::FsyncFail => DiskFaultPlanConfig {
                seed,
                fsync_fail: spec,
                ..Default::default()
            },
            FaultKind::TornWrite => DiskFaultPlanConfig {
                seed,
                write_torn: spec,
                ..Default::default()
            },
            FaultKind::Enospc => DiskFaultPlanConfig {
                seed,
                write_fail: spec,
                ..Default::default()
            },
        }
    }
}

/// One sweep cell: run a seeded trace under the fault plan, kill mid-trace,
/// then check the surviving log and recover from it.
fn sweep_cell(kind: FaultKind, k: u64) {
    let dir = temp_dir(&format!("{}-{k}", kind.tag()));
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 300);
    let storage: Arc<dyn iluvatar_sync::Storage> = Arc::new(FaultyStorage::new(
        Arc::new(RealStorage),
        kind.plan(0xC4A5_11E5 ^ k, k),
    ));

    let mut worker = Worker::new_with_storage(
        worker_cfg(&wal_path),
        mk_backend(&clock),
        Arc::clone(&clock),
        Arc::clone(&storage),
    );
    worker.register(spec.clone()).expect("register");
    let mut accepted = 0usize;
    for i in 0..18u64 {
        if i == 12 {
            // Crash mid-trace: queued work stays pending in the log.
            worker.kill();
        }
        let tenant = if i % 2 == 0 { "sweep-a" } else { "sweep-b" };
        if worker
            .async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
            .is_ok()
        {
            accepted += 1;
        }
    }
    drop(worker);
    assert!(
        accepted >= 12,
        "{}/k={k}: the ladder should keep appends landing ({accepted} accepted)",
        kind.tag()
    );

    // The surviving log replays to a model-legal state.
    let bytes = wal_bytes(Path::new(&wal_path));
    let replayed = wal::replay(Path::new(&wal_path)).expect("replay");
    let scan = wal::scan_frames(&bytes);
    let mut checker = Checker::new();
    // The ladder lands records at-least-once (an fsync failure rewrites the
    // whole frame); the model checks the effective, deduplicated stream.
    for rec in wal::dedup_records(&scan.records) {
        checker.ingest_wal_record("wal-file", rec);
    }
    let report = checker.finish();
    assert!(
        report.ok(),
        "{}/k={k}: recovery state violates the model: {:?}",
        kind.tag(),
        report.violations
    );
    if matches!(kind, FaultKind::TornWrite) {
        assert!(
            replayed.corrupt_frames > 0,
            "{}/k={k}: torn writes must leave quarantined half-frames",
            kind.tag()
        );
    }

    // Exactly-once: a durably-completed id is never resurrected as pending.
    let completed: HashSet<u64> = scan
        .records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Completed { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for p in &replayed.pending {
        assert!(
            !completed.contains(&p.id),
            "{}/k={k}: completed id {} resurrected into the pending set",
            kind.tag(),
            p.id
        );
    }

    // Full recovery under the same (still-faulty) storage: every replayed
    // invocation runs to completion, none is double-counted.
    let (recovered, rep) = Worker::recover_full(
        worker_cfg(&wal_path),
        mk_backend(&clock),
        Arc::clone(&clock),
        std::slice::from_ref(&spec),
        &[],
        storage,
    );
    assert_eq!(
        rep.replayed,
        replayed.pending.len(),
        "{}/k={k}: recovery must re-enqueue exactly the pending set",
        kind.tag()
    );
    for (_id, handle) in rep.handles {
        assert!(
            handle.wait().is_ok(),
            "{}/k={k}: a replayed invocation failed",
            kind.tag()
        );
    }
    let st = recovered.status();
    // Exactly-once across incarnations: the recovered counter is the
    // restored pre-crash baseline plus one completion per replayed id.
    assert_eq!(
        st.completed,
        replayed.counters.completed + rep.replayed as u64,
        "{}/k={k}: replayed work must complete exactly once",
        kind.tag()
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_failure_sweep_recovers_model_legal() {
    for k in [2, 3, 5, 7] {
        sweep_cell(FaultKind::FsyncFail, k);
    }
}

#[test]
fn torn_write_sweep_recovers_model_legal() {
    for k in [2, 3, 5, 7] {
        sweep_cell(FaultKind::TornWrite, k);
    }
}

#[test]
fn enospc_sweep_recovers_model_legal() {
    for k in [2, 3, 5, 7] {
        sweep_cell(FaultKind::Enospc, k);
    }
}
