//! Torn-WAL fuzz: a crash can cut the log at any byte. Every byte-prefix of
//! a real worker's WAL must (a) replay without panicking, (b) land in a
//! state the [`WalModel`] accepts with zero violations, and (c) agree with
//! the model on the pending set and the per-tenant books. A sample of
//! prefixes additionally goes through the full [`Worker::recover`] path:
//! the recovered worker must run every replayed invocation to completion
//! and shut down cleanly.

use iluvatar_chaos::{sites, FaultPlan, FaultPlanConfig, FaultSpec};
use iluvatar_conformance::Checker;
use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::{wal, AdmissionConfig, LifecycleConfig, TenantSpec, Worker, WorkerConfig};
use iluvatar_sync::{RealStorage, SystemClock};
use std::path::Path;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("iluvatar-tornwal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn worker_cfg(wal_path: &str) -> WorkerConfig {
    WorkerConfig {
        lifecycle: LifecycleConfig {
            snapshot_every: 5,
            ..LifecycleConfig::with_wal(wal_path)
        },
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("torn-a"),
            TenantSpec::new("torn-b"),
        ]),
        ..WorkerConfig::for_testing()
    }
}

fn mk_backend(clock: &Arc<dyn iluvatar_sync::Clock>) -> Arc<dyn ContainerBackend> {
    Arc::new(SimBackend::new(
        Arc::clone(clock),
        SimBackendConfig {
            time_scale: 0.01,
            ..Default::default()
        },
    ))
}

/// Produce a realistic WAL: snapshots, completions, and a crash tail with
/// in-flight + queued work (the kill leaves pending records).
fn generate_wal(dir: &Path) -> (String, Vec<u8>) {
    let wal_path = dir.join("queue.wal").to_str().unwrap().to_string();
    let clock = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 300);
    let plan = FaultPlan::new(FaultPlanConfig {
        seed: 7,
        worker_kill: FaultSpec::on_occurrences(vec![11]),
        ..Default::default()
    });
    let mut worker = Worker::new(
        worker_cfg(&wal_path),
        mk_backend(&clock),
        Arc::clone(&clock),
    );
    worker.register(spec).expect("register");
    let mut killed = false;
    for i in 0..16u64 {
        if plan.decide(sites::WORKER_KILL) && !killed {
            worker.kill();
            killed = true;
        }
        let tenant = if i % 2 == 0 { "torn-a" } else { "torn-b" };
        let _ = worker.async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant));
    }
    drop(worker);
    // The framed WAL lives in numbered segments; concatenating the survivors
    // in index order reproduces the exact byte stream replay walks.
    let base = Path::new(&wal_path);
    let mut bytes = Vec::new();
    for (_, seg) in wal::discover_segments(&RealStorage, base) {
        bytes.extend_from_slice(&std::fs::read(&seg).expect("read segment"));
    }
    assert!(
        bytes.len() > 200,
        "generated WAL suspiciously small ({} bytes)",
        bytes.len()
    );
    (wal_path, bytes)
}

/// Install `bytes` as the sole segment of the WAL based at `base`, removing
/// any segments (or legacy file) already there.
fn install_as_wal(base: &Path, bytes: &[u8]) {
    let _ = std::fs::remove_file(base);
    for (_, seg) in wal::discover_segments(&RealStorage, base) {
        let _ = std::fs::remove_file(seg);
    }
    std::fs::write(wal::segment_path(base, 1), bytes).expect("write prefix segment");
}

/// Feed every decodable frame of `bytes` through a fresh checker's WAL-file
/// path; returns (report, quarantined frame count).
fn model_of(bytes: &[u8]) -> (iluvatar_conformance::ConformanceReport, u64) {
    let mut checker = Checker::new();
    let scan = wal::scan_frames(bytes);
    for rec in &scan.records {
        checker.ingest_wal_record("wal-file", rec);
    }
    (checker.finish(), scan.corrupt_frames + scan.torn_tail)
}

#[test]
fn every_byte_prefix_replays_to_a_model_legal_state() {
    let dir = temp_dir("prefix");
    let (_, bytes) = generate_wal(&dir);
    let prefix_path = dir.join("prefix.wal");

    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        install_as_wal(&prefix_path, prefix);
        // (a) never panics, never errors.
        let replayed = wal::replay(&prefix_path)
            .unwrap_or_else(|e| panic!("replay failed at byte {cut}: {e}"));
        // (b) the model accepts the same records with zero violations.
        let (report, torn) = model_of(prefix);
        assert!(
            report.ok(),
            "byte {cut}: model flagged a valid prefix: {:?}",
            report.violations
        );
        // (c) replay and model agree on what survived the tear.
        assert_eq!(
            torn,
            replayed.torn_lines + replayed.corrupt_frames,
            "byte {cut}: quarantined-frame counts"
        );
        let replay_pending: Vec<u64> = replayed.pending.iter().map(|p| p.id).collect();
        assert_eq!(
            report.wal_pending, replay_pending,
            "byte {cut}: pending sets diverge"
        );
        for t in &replayed.tenants {
            let book = report.wal_books.get(&t.tenant).copied().unwrap_or_default();
            assert_eq!(
                (book.admitted, book.served, book.throttled, book.shed),
                (t.admitted, t.served, t.throttled, t.shed),
                "byte {cut}: tenant `{}` books diverge",
                t.tenant
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prefixes_are_monotone_under_truncation() {
    // Cutting the log never invents state: a prefix's accepted-record count
    // is monotone in the cut point, and the final full-file replay dominates.
    let dir = temp_dir("monotone");
    let (_, bytes) = generate_wal(&dir);
    let prefix_path = dir.join("prefix.wal");
    let mut last_records = 0u64;
    for cut in (0..=bytes.len()).step_by(16) {
        install_as_wal(&prefix_path, &bytes[..cut]);
        let replayed = wal::replay(&prefix_path).expect("replay");
        assert!(
            replayed.records_read >= last_records,
            "byte {cut}: records_read went backwards ({} < {last_records})",
            replayed.records_read
        );
        last_records = replayed.records_read;
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampled_prefixes_survive_full_worker_recovery() {
    let dir = temp_dir("recover");
    let (wal_path, bytes) = generate_wal(&dir);
    let clock = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 300);

    // Every ~1/8th of the file, plus the exact end and the empty log.
    let mut cuts: Vec<usize> = (0..8).map(|i| i * bytes.len() / 8).collect();
    cuts.push(bytes.len());
    for cut in cuts {
        install_as_wal(Path::new(&wal_path), &bytes[..cut]);
        let (recovered, report) = Worker::recover(
            worker_cfg(&wal_path),
            mk_backend(&clock),
            Arc::clone(&clock),
            std::slice::from_ref(&spec),
        );
        for (_id, handle) in report.handles {
            assert!(
                handle.wait().is_ok(),
                "byte {cut}: a replayed invocation failed"
            );
        }
        let st = recovered.status();
        assert_eq!(
            st.completed as usize, report.replayed,
            "byte {cut}: replayed work must all complete"
        );
        drop(recovered); // clean shutdown must not panic either
    }
    let _ = std::fs::remove_dir_all(&dir);
}
