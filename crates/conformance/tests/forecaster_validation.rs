//! Forecaster validation against a synthetic two-day diurnal trace.
//!
//! 96 half-hour buckets of `rate(t) = 100 + 80·sin(2πt/48)` — two full
//! day/night cycles peaking at 180 and troughing at 20 arrivals per bucket.
//! The [`ArrivalForecaster`] walks the trace one bucket at a time and its
//! horizon-1 and horizon-6 forecasts are scored against the actual future
//! counts. Bounds are empirical for this trace with a comfortable margin;
//! a regression in the OLS trend math blows well past them.

use iluvatar_sync::ArrivalForecaster;

const WINDOW: usize = 8;
const AMPLITUDE: f64 = 80.0;

/// Two days of half-hour buckets, 48 per day.
fn diurnal_trace() -> Vec<u64> {
    (0..96)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * (t as f64) / 48.0;
            (100.0 + AMPLITUDE * phase.sin()).round() as u64
        })
        .collect()
}

/// Walk the trace; at every full-window point score the forecaster and a
/// naive last-value persistence baseline at `horizon`. Returns
/// (forecast MAE, naive MAE, worst absolute forecast error).
fn score(trace: &[u64], horizon: usize) -> (f64, f64, f64) {
    let mut f = ArrivalForecaster::new(WINDOW);
    let (mut err_sum, mut naive_sum, mut worst, mut n) = (0.0f64, 0.0f64, 0.0f64, 0u32);
    for (t, &c) in trace.iter().enumerate() {
        f.push_bucket(c);
        if f.len() == WINDOW && t + horizon < trace.len() {
            let actual = trace[t + horizon] as f64;
            let e = (f.forecast(horizon) - actual).abs();
            err_sum += e;
            worst = worst.max(e);
            naive_sum += (c as f64 - actual).abs();
            n += 1;
        }
    }
    assert!(n > 60, "trace too short to score ({n} points)");
    (err_sum / n as f64, naive_sum / n as f64, worst)
}

#[test]
fn horizon_error_is_bounded_on_the_diurnal_trace() {
    let trace = diurnal_trace();
    let (mae1, _, worst1) = score(&trace, 1);
    let (mae6, naive6, _) = score(&trace, 6);

    // Empirical values: MAE≈6.8 / worst≈10.2 at horizon 1, MAE≈33.6 at
    // horizon 6 (amplitude 80). Margined ~20% so only real regressions trip.
    assert!(mae1 < 8.0, "horizon-1 MAE {mae1:.2} too high");
    assert!(worst1 < 13.0, "horizon-1 worst error {worst1:.2} too high");
    assert!(mae6 < 40.0, "horizon-6 MAE {mae6:.2} too high");
    assert!(
        mae1 < mae6,
        "error must grow with horizon (h1 {mae1:.2} vs h6 {mae6:.2})"
    );
    // Relative to the signal, short-horizon error stays small.
    assert!(
        mae1 / AMPLITUDE < 0.125,
        "horizon-1 MAE is {:.1}% of amplitude",
        100.0 * mae1 / AMPLITUDE
    );
    // At horizon 6 the trend extrapolation must beat last-value persistence
    // — that advantage is the whole point of forecasting for proactive
    // scaling (empirically 33.6 vs 37.1 here).
    assert!(
        mae6 < naive6,
        "trend forecast (MAE {mae6:.2}) must beat persistence (MAE {naive6:.2}) at horizon 6"
    );
}

#[test]
fn replay_is_bit_identical() {
    let trace = diurnal_trace();
    let run = || {
        let mut f = ArrivalForecaster::new(WINDOW);
        let mut bits = Vec::new();
        for &c in &trace {
            f.push_bucket(c);
            bits.push((f.forecast(1).to_bits(), f.forecast(6).to_bits()));
        }
        bits
    };
    assert_eq!(
        run(),
        run(),
        "same trace must produce bit-identical forecasts (autoscaler determinism gate)"
    );
}

#[test]
fn night_decay_clamps_at_zero_not_below() {
    // Steep decay into the trough: linear extrapolation would go negative.
    let mut f = ArrivalForecaster::new(WINDOW);
    for c in [70u64, 60, 50, 40, 30, 20, 10, 0] {
        f.push_bucket(c);
    }
    assert!(f.slope() < 0.0);
    for h in 1..=12 {
        let p = f.forecast(h);
        assert!(p >= 0.0, "horizon {h} forecast went negative: {p}");
    }
    assert_eq!(f.forecast(12), 0.0, "deep extrapolation clamps at zero");
}

#[test]
fn trough_to_peak_ramp_is_anticipated() {
    // On the rising edge of the diurnal cycle the forecaster must predict
    // *above* the latest observation — that headroom is what lets the
    // autoscaler provision before the burst lands.
    let trace = diurnal_trace();
    let mut f = ArrivalForecaster::new(WINDOW);
    // Walk up the first rising edge (t = 36..48 is the climb out of the
    // trough toward the second-day peak at t = 60).
    for &c in &trace[..44] {
        f.push_bucket(c);
    }
    let last = trace[43] as f64;
    assert!(
        f.forecast(1) > last,
        "rising edge: forecast {:.1} should exceed last observation {last}",
        f.forecast(1)
    );
    assert!(
        f.forecast(6) > f.forecast(1),
        "rising edge: longer horizon extrapolates further up"
    );
}
