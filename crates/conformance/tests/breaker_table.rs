//! Exhaustive breaker transition table: every (state, stimulus) pair
//! through [`BreakerMachine`], checked against a hand-written expectation
//! table, and cross-checked against the stream-level [`BreakerModel`] —
//! every edge the machine emits must be accepted by the stream checker,
//! and every edge the stream checker accepts must be producible by some
//! stimulus.
//!
//! Pairs that are unreachable in the implementation (probes are suppressed
//! while Open, so `Open + ProbeSuccess` never fires live) are still part of
//! the spec and still enumerated: the table documents what the code path
//! would do, not only what the scheduler happens to exercise.

use iluvatar_conformance::{BreakerMachine, BreakerModel, BreakerState, Stimulus};

use BreakerState::{Closed, HalfOpen, Open};
use Stimulus::{Attach, CooldownElapsed, Detach, Failure, ProbeSuccess};

/// Drive a threshold-1 machine into `state`.
fn machine_in(state: BreakerState) -> BreakerMachine {
    let mut m = BreakerMachine::new(1);
    match state {
        Closed => {}
        Open => {
            assert_eq!(m.step(Failure), Some("open"));
        }
        HalfOpen => {
            assert_eq!(m.step(Failure), Some("open"));
            assert_eq!(m.step(CooldownElapsed), Some("half_open"));
        }
    }
    assert_eq!(m.state, state);
    m
}

/// The full spec table: (state, stimulus) → (next state, emitted event).
/// With threshold 1, a Closed-state failure trips immediately.
const TABLE: [(BreakerState, Stimulus, BreakerState, Option<&str>); 15] = [
    (Closed, Failure, Open, Some("open")),
    (Closed, ProbeSuccess, Closed, None),
    (Closed, CooldownElapsed, Closed, None),
    (Closed, Attach, Open, None), // awaiting admission, silent
    (Closed, Detach, Closed, None),
    (Open, Failure, Open, None), // already open
    // Unreachable live (probes suppressed while Open); spec mirrors
    // `record_success`'s "any non-Closed state closes" path.
    (Open, ProbeSuccess, Closed, Some("closed")),
    (Open, CooldownElapsed, HalfOpen, Some("half_open")),
    (Open, Attach, Open, None),
    (Open, Detach, Closed, None),
    (HalfOpen, Failure, Open, Some("open")), // failed probe re-opens
    (HalfOpen, ProbeSuccess, Closed, Some("closed")),
    (HalfOpen, CooldownElapsed, HalfOpen, None),
    (HalfOpen, Attach, Open, None),
    (HalfOpen, Detach, Closed, None),
];

#[test]
fn table_is_exhaustive() {
    // 3 states × 5 stimuli, no pair listed twice.
    assert_eq!(TABLE.len(), 3 * Stimulus::ALL.len());
    for state in [Closed, Open, HalfOpen] {
        for stim in Stimulus::ALL {
            let n = TABLE
                .iter()
                .filter(|(s, t, _, _)| *s == state && *t == stim)
                .count();
            assert_eq!(n, 1, "pair ({state:?}, {stim:?}) listed {n} times");
        }
    }
}

#[test]
fn machine_matches_the_table() {
    for &(state, stim, expect_state, expect_event) in &TABLE {
        let mut m = machine_in(state);
        let emitted = m.step(stim);
        assert_eq!(
            emitted, expect_event,
            "({state:?}, {stim:?}) emitted {emitted:?}, spec says {expect_event:?}"
        );
        assert_eq!(
            m.state, expect_state,
            "({state:?}, {stim:?}) landed in {:?}, spec says {expect_state:?}",
            m.state
        );
    }
}

/// The one (state, stimulus) pair the implementation can never exercise:
/// probes are suppressed while Open, so no probe success is ever reported
/// to an Open breaker. The machine still specifies it (mirroring
/// `record_success`'s "any non-Closed state closes"), but the stream model
/// deliberately rejects the resulting Open → Closed edge — seeing one live
/// means probe suppression is broken.
const UNREACHABLE_LIVE: [(BreakerState, Stimulus); 1] = [(Open, ProbeSuccess)];

/// Walk a fresh stream model into `state` via legal edges.
fn model_in(state: BreakerState) -> BreakerModel {
    let mut model = BreakerModel::new();
    model.seed("w");
    match state {
        Closed => {}
        Open => model.observe("w", "open").unwrap(),
        HalfOpen => {
            model.observe("w", "open").unwrap();
            model.observe("w", "half_open").unwrap();
        }
    }
    model
}

#[test]
fn every_emitted_edge_is_stream_legal() {
    for &(state, stim, _, expect_event) in &TABLE {
        let Some(label) = expect_event else { continue };
        let mut model = model_in(state);
        let accepted = model.observe("w", label).is_ok();
        if UNREACHABLE_LIVE.contains(&(state, stim)) {
            assert!(
                !accepted,
                "({state:?}, {stim:?}) is unreachable live; the stream model rejecting \
                 its `{label}` edge is what makes the suppression observable"
            );
        } else {
            assert!(
                accepted,
                "({state:?}, {stim:?}) emits `{label}` but the stream model rejects it"
            );
        }
    }
}

#[test]
fn every_stream_legal_edge_is_machine_producible() {
    // For each (cur, next) pair the stream model accepts, some live-reachable
    // stimulus must drive the machine cur → next while emitting next's label
    // — and vice versa.
    for cur in [Closed, Open, HalfOpen] {
        for next in [Closed, Open, HalfOpen] {
            if cur == next {
                continue; // self-loops are never announced on the stream
            }
            let stream_legal = model_in(cur).observe("w", next.label()).is_ok();
            let machine_producible = Stimulus::ALL
                .iter()
                .filter(|&&stim| !UNREACHABLE_LIVE.contains(&(cur, stim)))
                .any(|&stim| {
                    let mut m = machine_in(cur);
                    m.step(stim) == Some(next.label()) && m.state == next
                });
            assert_eq!(
                stream_legal, machine_producible,
                "edge {cur:?} → {next:?}: stream-legal={stream_legal} but machine-producible={machine_producible}"
            );
        }
    }
}

#[test]
fn threshold_counts_only_consecutive_failures() {
    let mut m = BreakerMachine::new(3);
    assert_eq!(m.step(Failure), None);
    assert_eq!(m.step(Failure), None);
    // A success wipes the streak.
    assert_eq!(m.step(ProbeSuccess), None);
    assert_eq!(m.step(Failure), None);
    assert_eq!(m.step(Failure), None);
    assert_eq!(m.step(Failure), Some("open"));
    assert_eq!(m.state, Open);
}

#[test]
fn attach_resets_the_failure_streak() {
    let mut m = BreakerMachine::new(2);
    assert_eq!(m.step(Failure), None);
    assert_eq!(m.step(Attach), None); // re-slotted: Open, streak cleared
    assert_eq!(m.state, Open);
    assert_eq!(m.step(CooldownElapsed), Some("half_open"));
    assert_eq!(m.step(ProbeSuccess), Some("closed"));
    // The pre-attach failure must not count toward the new incarnation.
    assert_eq!(m.step(Failure), None);
    assert_eq!(m.step(Failure), Some("open"));
}
