//! Multi-tenant admission control for the Ilúvatar worker.
//!
//! The paper's worker queue (§4) optimizes per-invocation latency but is
//! tenant-blind: one aggressive function can monopolize the queue, the
//! container pool, and the dispatch slots. This crate adds the missing
//! subsystem: a [`TenantRegistry`] of per-tenant weights, priority classes
//! and token-bucket rate limits, and an [`AdmissionController`] consulted at
//! worker ingest. Rate-limited tenants are rejected outright (429-style)
//! instead of growing the queue; under overload (queue delay past a
//! threshold) best-effort tenants are shed while guaranteed tenants stay
//! admitted.
//!
//! Everything is built on `iluvatar_sync::{Clock, TokenBucket}` so decisions
//! are identical under wall-clock and virtual (simulation) time — the same
//! property the paper exploits for in-situ simulation (§6).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use iluvatar_sync::{Clock, TokenBucket};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Tenant used when an invocation carries no explicit tenant label and the
/// function's registration does not name one.
pub const DEFAULT_TENANT: &str = "default";

/// Service class for a tenant (priority under overload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Never shed by overload control; only explicit rate limits apply.
    Guaranteed,
    /// Shed first when queue delay crosses the configured threshold.
    #[default]
    BestEffort,
}

impl PriorityClass {
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Guaranteed => "guaranteed",
            PriorityClass::BestEffort => "best_effort",
        }
    }
}

/// Static description of one tenant. Unknown tenants get
/// `TenantSpec::default_for(id)` on first sight (weight 1, best-effort,
/// unlimited rate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSpec {
    pub id: String,
    /// DRR scheduling weight; `0` (e.g. omitted in JSON) means 1.0.
    #[serde(default)]
    pub weight: f64,
    #[serde(default)]
    pub class: PriorityClass,
    /// Sustained admission rate, invocations/sec. `0` = unlimited.
    #[serde(default)]
    pub rate_per_sec: f64,
    /// Token-bucket burst size; `0` defaults to `rate_per_sec.max(1)`.
    #[serde(default)]
    pub burst: f64,
}

impl TenantSpec {
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_string(),
            weight: 1.0,
            class: PriorityClass::BestEffort,
            rate_per_sec: 0.0,
            burst: 0.0,
        }
    }

    pub fn default_for(id: &str) -> Self {
        Self::new(id)
    }

    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    pub fn with_class(mut self, c: PriorityClass) -> Self {
        self.class = c;
        self
    }

    pub fn with_rate(mut self, rate_per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = rate_per_sec;
        self.burst = burst;
        self
    }

    /// Effective DRR weight (serde-default 0 means "unset").
    pub fn effective_weight(&self) -> f64 {
        if self.weight > 0.0 {
            self.weight
        } else {
            1.0
        }
    }
}

/// Worker-level admission configuration. Default is fully disabled so the
/// baseline hot path (and the paper's Table-1 spans) are untouched.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Master switch; everything below is inert while false.
    #[serde(default)]
    pub enabled: bool,
    /// Shed best-effort tenants once observed queue delay exceeds this many
    /// ms. `0` disables overload shedding.
    #[serde(default)]
    pub shed_queue_delay_ms: u64,
    /// Statically configured tenants; others are created lazily with
    /// default weight/class and no rate limit.
    #[serde(default)]
    pub tenants: Vec<TenantSpec>,
}

impl AdmissionConfig {
    pub fn enabled_with(tenants: Vec<TenantSpec>) -> Self {
        Self {
            enabled: true,
            shed_queue_delay_ms: 0,
            tenants,
        }
    }
}

/// Outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    Admit,
    /// Rejected by the tenant's token-bucket rate limit.
    Throttled,
    /// Rejected by overload control (best-effort class, queue delay high).
    Shed,
}

/// Point-in-time per-tenant counters, serializable so it can ride in
/// `/status` bodies and be merged into cluster snapshots.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct TenantSnapshot {
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub weight: f64,
    #[serde(default)]
    pub class: PriorityClass,
    #[serde(default)]
    pub admitted: u64,
    #[serde(default)]
    pub throttled: u64,
    #[serde(default)]
    pub shed: u64,
    #[serde(default)]
    pub served: u64,
}

struct TenantState {
    spec: TenantSpec,
    bucket: Option<TokenBucket>,
    admitted: AtomicU64,
    throttled: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
}

impl TenantState {
    fn new(spec: TenantSpec, clock: Arc<dyn Clock>) -> Self {
        let bucket = if spec.rate_per_sec > 0.0 {
            let burst = if spec.burst > 0.0 {
                spec.burst
            } else {
                spec.rate_per_sec.max(1.0)
            };
            Some(TokenBucket::new(spec.rate_per_sec, burst, clock))
        } else {
            None
        };
        Self {
            spec,
            bucket,
            admitted: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            tenant: self.spec.id.clone(),
            weight: self.spec.effective_weight(),
            class: self.spec.class,
            admitted: self.admitted.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
        }
    }
}

/// Registry of tenants: static specs from config plus lazily created
/// defaults for tenants first seen at ingest.
pub struct TenantRegistry {
    clock: Arc<dyn Clock>,
    tenants: RwLock<HashMap<String, Arc<TenantState>>>,
}

impl TenantRegistry {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// Insert or replace a tenant spec (counters reset on replace).
    pub fn upsert(&self, spec: TenantSpec) {
        let state = Arc::new(TenantState::new(spec.clone(), Arc::clone(&self.clock)));
        self.tenants.write().insert(spec.id, state);
    }

    fn resolve(&self, id: &str) -> Arc<TenantState> {
        if let Some(t) = self.tenants.read().get(id) {
            return Arc::clone(t);
        }
        let mut w = self.tenants.write();
        Arc::clone(w.entry(id.to_string()).or_insert_with(|| {
            Arc::new(TenantState::new(
                TenantSpec::default_for(id),
                Arc::clone(&self.clock),
            ))
        }))
    }

    /// Effective DRR weight of a tenant (1.0 for unknown tenants).
    pub fn weight_of(&self, id: &str) -> f64 {
        self.tenants
            .read()
            .get(id)
            .map(|t| t.spec.effective_weight())
            .unwrap_or(1.0)
    }

    pub fn class_of(&self, id: &str) -> PriorityClass {
        self.tenants
            .read()
            .get(id)
            .map(|t| t.spec.class)
            .unwrap_or_default()
    }

    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    /// Per-tenant counters, sorted by tenant id for deterministic output.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let mut out: Vec<TenantSnapshot> =
            self.tenants.read().values().map(|t| t.snapshot()).collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Current token-bucket levels for rate-limited tenants, sorted by id.
    /// Captured into lifecycle snapshots so a restarted worker resumes
    /// throttling from where it left off instead of granting a fresh burst.
    pub fn bucket_levels(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .tenants
            .read()
            .iter()
            .filter_map(|(id, t)| t.bucket.as_ref().map(|b| (id.clone(), b.tokens())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The admission controller consulted at worker ingest, before the
/// invocation touches the queue. Order of checks:
///
/// 1. token-bucket rate limit (all classes) → [`AdmissionDecision::Throttled`]
/// 2. overload shedding (best-effort only, queue delay over threshold) →
///    [`AdmissionDecision::Shed`]
/// 3. otherwise → [`AdmissionDecision::Admit`]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    registry: TenantRegistry,
    dropped: AtomicU64,
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig, clock: Arc<dyn Clock>) -> Self {
        let registry = TenantRegistry::new(clock);
        for spec in &cfg.tenants {
            registry.upsert(spec.clone());
        }
        Self {
            cfg,
            registry,
            dropped: AtomicU64::new(0),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Decide whether to admit one invocation for `tenant` given the
    /// currently observed queue delay (the overload signal).
    pub fn admit(&self, tenant: &str, queue_delay_ms: u64) -> AdmissionDecision {
        if !self.cfg.enabled {
            return AdmissionDecision::Admit;
        }
        let state = self.registry.resolve(tenant);
        if let Some(bucket) = &state.bucket {
            if !bucket.try_take() {
                state.throttled.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return AdmissionDecision::Throttled;
            }
        }
        if self.cfg.shed_queue_delay_ms > 0
            && queue_delay_ms > self.cfg.shed_queue_delay_ms
            && state.spec.class == PriorityClass::BestEffort
        {
            state.shed.fetch_add(1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return AdmissionDecision::Shed;
        }
        state.admitted.fetch_add(1, Ordering::Relaxed);
        AdmissionDecision::Admit
    }

    /// Record a successful completion for `tenant`.
    pub fn on_served(&self, tenant: &str) {
        self.registry
            .resolve(tenant)
            .served
            .fetch_add(1, Ordering::Relaxed);
    }

    pub fn weight_of(&self, tenant: &str) -> f64 {
        // Resolve (not just read) so the tenant appears in snapshots even
        // before its first completed invocation.
        self.registry.resolve(tenant).spec.effective_weight()
    }

    pub fn class_of(&self, tenant: &str) -> PriorityClass {
        self.registry.class_of(tenant)
    }

    /// Total rejected (throttled + shed) — the worker's `dropped_admission`.
    pub fn dropped_admission(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        self.registry.snapshot()
    }

    /// Add per-tenant counter baselines from a pre-restart snapshot on top
    /// of the (normally zero) live counters, so exported counters resume
    /// monotonically instead of resetting. `dropped_admission` absorbs the
    /// restored throttled + shed totals to stay consistent.
    pub fn restore_counters(&self, snaps: &[TenantSnapshot]) {
        for s in snaps {
            let state = self.registry.resolve(&s.tenant);
            state.admitted.fetch_add(s.admitted, Ordering::Relaxed);
            state.throttled.fetch_add(s.throttled, Ordering::Relaxed);
            state.shed.fetch_add(s.shed, Ordering::Relaxed);
            state.served.fetch_add(s.served, Ordering::Relaxed);
            self.dropped
                .fetch_add(s.throttled + s.shed, Ordering::Relaxed);
        }
    }

    /// Current token-bucket levels for rate-limited tenants, sorted by id.
    pub fn bucket_levels(&self) -> Vec<(String, f64)> {
        self.registry.bucket_levels()
    }

    /// Restore one tenant's token-bucket level from a snapshot. No-op for
    /// tenants without a rate limit.
    pub fn restore_bucket_level(&self, tenant: &str, tokens: f64) {
        if let Some(b) = &self.registry.resolve(tenant).bucket {
            b.restore(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::ManualClock;

    fn manual() -> Arc<ManualClock> {
        Arc::new(ManualClock::new())
    }

    #[test]
    fn disabled_admits_everything() {
        let ctl = AdmissionController::new(AdmissionConfig::default(), manual());
        assert!(!ctl.enabled());
        for _ in 0..1000 {
            assert_eq!(ctl.admit("anyone", 10_000), AdmissionDecision::Admit);
        }
        assert_eq!(ctl.dropped_admission(), 0);
    }

    #[test]
    fn rate_limit_throttles_then_refills_on_virtual_time() {
        let clock = manual();
        let cfg = AdmissionConfig::enabled_with(vec![TenantSpec::new("free").with_rate(10.0, 2.0)]);
        let ctl = AdmissionController::new(cfg, clock.clone());
        // Burst of 2 admitted, third throttled.
        assert_eq!(ctl.admit("free", 0), AdmissionDecision::Admit);
        assert_eq!(ctl.admit("free", 0), AdmissionDecision::Admit);
        assert_eq!(ctl.admit("free", 0), AdmissionDecision::Throttled);
        // 10/sec = 1 token per 100ms of virtual time.
        clock.advance(100);
        assert_eq!(ctl.admit("free", 0), AdmissionDecision::Admit);
        assert_eq!(ctl.admit("free", 0), AdmissionDecision::Throttled);
        let snap = ctl.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].admitted, 3);
        assert_eq!(snap[0].throttled, 2);
        assert_eq!(ctl.dropped_admission(), 2);
    }

    #[test]
    fn shed_hits_best_effort_but_not_guaranteed() {
        let cfg = AdmissionConfig {
            enabled: true,
            shed_queue_delay_ms: 50,
            tenants: vec![
                TenantSpec::new("paid").with_class(PriorityClass::Guaranteed),
                TenantSpec::new("free"),
            ],
        };
        let ctl = AdmissionController::new(cfg, manual());
        // Below the threshold both are admitted.
        assert_eq!(ctl.admit("free", 50), AdmissionDecision::Admit);
        // Over the threshold best-effort is shed, guaranteed is not.
        assert_eq!(ctl.admit("free", 51), AdmissionDecision::Shed);
        assert_eq!(ctl.admit("paid", 10_000), AdmissionDecision::Admit);
        let snap = ctl.snapshot();
        let free = snap.iter().find(|t| t.tenant == "free").unwrap();
        let paid = snap.iter().find(|t| t.tenant == "paid").unwrap();
        assert_eq!(free.shed, 1);
        assert_eq!(paid.shed, 0);
        assert_eq!(paid.admitted, 1);
    }

    #[test]
    fn unknown_tenants_get_lazy_defaults() {
        let ctl = AdmissionController::new(
            AdmissionConfig {
                enabled: true,
                ..Default::default()
            },
            manual(),
        );
        assert_eq!(ctl.admit("surprise", 0), AdmissionDecision::Admit);
        assert_eq!(ctl.weight_of("surprise"), 1.0);
        assert_eq!(ctl.class_of("surprise"), PriorityClass::BestEffort);
        ctl.on_served("surprise");
        let snap = ctl.snapshot();
        assert_eq!(snap[0].tenant, "surprise");
        assert_eq!(snap[0].served, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_serializable() {
        let ctl = AdmissionController::new(
            AdmissionConfig {
                enabled: true,
                ..Default::default()
            },
            manual(),
        );
        ctl.admit("zeta", 0);
        ctl.admit("alpha", 0);
        let snap = ctl.snapshot();
        assert_eq!(snap[0].tenant, "alpha");
        assert_eq!(snap[1].tenant, "zeta");
        let json = serde_json::to_string(&snap).unwrap();
        let back: Vec<TenantSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn spec_json_defaults_fill_in() {
        let spec: TenantSpec = serde_json::from_str(r#"{"id":"t1"}"#).unwrap();
        assert_eq!(spec.effective_weight(), 1.0);
        assert_eq!(spec.class, PriorityClass::BestEffort);
        assert_eq!(spec.rate_per_sec, 0.0);
        let cfg: AdmissionConfig = serde_json::from_str("{}").unwrap();
        assert!(!cfg.enabled);
    }
}
