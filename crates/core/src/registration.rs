//! Function registration and image preparation.
//!
//! §3.2: "New functions need to be first *registered*, which entails
//! downloading and preparing its container disk image. ... we prepare the
//! images by selecting the relevant layers for the operating system and CPU
//! architecture." Registration is out-of-band of the invocation path; the
//! registry is read-heavy afterwards, so it lives in a sharded map.

use iluvatar_containers::image::{ImageError, ImageRegistry, Platform, PreparedImage};
use iluvatar_containers::FunctionSpec;
use iluvatar_sync::ShardedMap;
use parking_lot::Mutex;
use std::sync::Arc;

/// Registration failures.
#[derive(Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// A function with this fqdn already exists.
    AlreadyRegistered(String),
    /// Image preparation failed.
    Image(ImageError),
    /// Spec failed validation (empty name, zero memory, ...).
    InvalidSpec(String),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::AlreadyRegistered(f_) => write!(f, "already registered: {f_}"),
            RegisterError::Image(e) => write!(f, "image error: {e}"),
            RegisterError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for RegisterError {}

impl From<ImageError> for RegisterError {
    fn from(e: ImageError) -> Self {
        RegisterError::Image(e)
    }
}

/// A registered function: the validated spec plus its prepared image.
#[derive(Debug, Clone)]
pub struct Registration {
    pub spec: FunctionSpec,
    pub image: PreparedImage,
}

/// The worker's function registry.
pub struct Registry {
    functions: ShardedMap<String, Arc<Registration>>,
    images: Mutex<ImageRegistry>,
    platform: Platform,
}

impl Registry {
    pub fn new(platform: Platform) -> Self {
        Self {
            functions: ShardedMap::new(),
            images: Mutex::new(ImageRegistry::new()),
            platform,
        }
    }

    /// Validate `spec`, prepare its image, and store the registration.
    ///
    /// Unknown image references are synthesized on the fly (the simulated
    /// DockerHub serves any reference) — real deployments would fail here.
    pub fn register(&self, spec: FunctionSpec) -> Result<Arc<Registration>, RegisterError> {
        if spec.name.trim().is_empty() || spec.version.trim().is_empty() {
            return Err(RegisterError::InvalidSpec("empty name or version".into()));
        }
        if spec.limits.memory_mb == 0 {
            return Err(RegisterError::InvalidSpec("zero memory limit".into()));
        }
        if spec.limits.cpus <= 0.0 {
            return Err(RegisterError::InvalidSpec("non-positive cpu limit".into()));
        }
        if self.functions.contains_key(&spec.fqdn) {
            return Err(RegisterError::AlreadyRegistered(spec.fqdn.clone()));
        }
        let reference = if spec.image.is_empty() {
            format!("synth/{}:{}", spec.name, spec.version)
        } else {
            spec.image.clone()
        };
        let image = {
            let mut images = self.images.lock();
            match images.prepare(&reference, self.platform) {
                Ok(img) => img,
                Err(ImageError::NotFound(_)) => {
                    images.publish(ImageRegistry::synthesize(&reference));
                    images.prepare(&reference, self.platform)?
                }
                Err(e) => return Err(e.into()),
            }
        };
        let reg = Arc::new(Registration { spec, image });
        // A concurrent duplicate registration loses: first insert wins.
        if self
            .functions
            .insert(reg.spec.fqdn.clone(), Arc::clone(&reg))
            .is_some()
        {
            return Err(RegisterError::AlreadyRegistered(reg.spec.fqdn.clone()));
        }
        Ok(reg)
    }

    pub fn get(&self, fqdn: &str) -> Option<Arc<Registration>> {
        self.functions.get(fqdn)
    }

    pub fn len(&self) -> usize {
        self.functions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    pub fn fqdns(&self) -> Vec<String> {
        self.functions.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_containers::ResourceLimits;

    fn registry() -> Registry {
        Registry::new(Platform::LINUX_AMD64)
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        let reg = r.register(FunctionSpec::new("hello", "1")).unwrap();
        assert_eq!(reg.spec.fqdn, "hello-1");
        assert!(
            !reg.image.layers.is_empty(),
            "image prepared at registration"
        );
        assert_eq!(r.get("hello-1").unwrap().spec.name, "hello");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let r = registry();
        r.register(FunctionSpec::new("f", "1")).unwrap();
        assert_eq!(
            r.register(FunctionSpec::new("f", "1")).unwrap_err(),
            RegisterError::AlreadyRegistered("f-1".into())
        );
        // Different version is a different function.
        assert!(r.register(FunctionSpec::new("f", "2")).is_ok());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn invalid_specs_rejected() {
        let r = registry();
        assert!(matches!(
            r.register(FunctionSpec::new("", "1")),
            Err(RegisterError::InvalidSpec(_))
        ));
        let mut s = FunctionSpec::new("f", "1");
        s.limits = ResourceLimits {
            cpus: 1.0,
            memory_mb: 0,
        };
        assert!(matches!(r.register(s), Err(RegisterError::InvalidSpec(_))));
        let mut s = FunctionSpec::new("f", "1");
        s.limits = ResourceLimits {
            cpus: 0.0,
            memory_mb: 128,
        };
        assert!(matches!(r.register(s), Err(RegisterError::InvalidSpec(_))));
    }

    #[test]
    fn explicit_image_reference_used() {
        let r = registry();
        let reg = r
            .register(FunctionSpec::new("ml", "3").with_image("hub/ml-infer:3"))
            .unwrap();
        assert_eq!(reg.image.reference, "hub/ml-infer:3");
    }

    #[test]
    fn missing_function_is_none() {
        assert!(registry().get("ghost-1").is_none());
    }
}
