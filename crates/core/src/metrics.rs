//! Worker-local system metrics (§5).
//!
//! "We thus track key system metrics like CPU usage, load averages, and
//! even CPU performance counters and system energy usage using RAPL and
//! external power meters. These metrics are collected using async worker
//! threads, and provide a single consistent view of the system
//! performance."
//!
//! The collector here samples the worker's own activity (running
//! invocations, queue depth) into classic 1/5/15-style exponentially
//! damped load averages, and integrates a RAPL-like energy model: a
//! baseline (idle) power plus per-core active power, which is exactly the
//! linear CPU-power model FaaS energy accounting work uses.

use iluvatar_sync::{Clock, TimeMs};
use parking_lot::Mutex;
use std::sync::Arc;

/// One metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Exponentially damped load averages over ~1/5/15 sample horizons,
    /// in units of busy cores.
    pub load_1: f64,
    pub load_5: f64,
    pub load_15: f64,
    /// Estimated cumulative energy, joules.
    pub energy_j: f64,
    /// Estimated instantaneous power at the last sample, watts.
    pub power_w: f64,
    /// Number of samples taken.
    pub samples: u64,
}

/// RAPL-style linear power model: `idle_w + busy_cores × per_core_w`.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    pub idle_w: f64,
    pub per_core_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // A mid-range dual-socket server: ~100W idle, ~4.5W/core active.
        Self {
            idle_w: 100.0,
            per_core_w: 4.5,
        }
    }
}

struct State {
    load_1: f64,
    load_5: f64,
    load_15: f64,
    energy_j: f64,
    power_w: f64,
    last_sample: Option<TimeMs>,
    samples: u64,
}

/// The metrics collector. Drive [`SystemMetrics::sample`] from a periodic
/// background task with the current busy-core count.
pub struct SystemMetrics {
    power: PowerModel,
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

impl SystemMetrics {
    pub fn new(power: PowerModel, clock: Arc<dyn Clock>) -> Self {
        Self {
            power,
            clock,
            state: Mutex::new(State {
                load_1: 0.0,
                load_5: 0.0,
                load_15: 0.0,
                energy_j: 0.0,
                power_w: power.idle_w,
                last_sample: None,
                samples: 0,
            }),
        }
    }

    /// Record one sample: `busy_cores` is the instantaneous number of
    /// occupied cores (running invocations bounded by the core count).
    pub fn sample(&self, busy_cores: f64) {
        let now = self.clock.now_ms();
        let mut st = self.state.lock();
        let dt_ms = st.last_sample.map(|t| now.saturating_sub(t)).unwrap_or(0);
        st.last_sample = Some(now);
        st.samples += 1;
        // Exponential damping à la the kernel loadavg, with horizons in
        // sample periods scaled by the actual elapsed time.
        let dt_s = dt_ms as f64 / 1000.0;
        let damp = |horizon_s: f64| -> f64 {
            if dt_s <= 0.0 {
                1.0
            } else {
                (-dt_s / horizon_s).exp()
            }
        };
        let (e1, e5, e15) = (damp(60.0), damp(300.0), damp(900.0));
        st.load_1 = st.load_1 * e1 + busy_cores * (1.0 - e1);
        st.load_5 = st.load_5 * e5 + busy_cores * (1.0 - e5);
        st.load_15 = st.load_15 * e15 + busy_cores * (1.0 - e15);
        // Energy: integrate the linear power model over the interval.
        let power = self.power.idle_w + self.power.per_core_w * busy_cores;
        st.energy_j += power * dt_s;
        st.power_w = power;
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock();
        MetricsSnapshot {
            load_1: st.load_1,
            load_5: st.load_5,
            load_15: st.load_15,
            energy_j: st.energy_j,
            power_w: st.power_w,
            samples: st.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::ManualClock;

    fn collector() -> (Arc<ManualClock>, SystemMetrics) {
        let clock = Arc::new(ManualClock::new());
        let m = SystemMetrics::new(
            PowerModel {
                idle_w: 100.0,
                per_core_w: 5.0,
            },
            clock.clone(),
        );
        (clock, m)
    }

    #[test]
    fn first_sample_establishes_baseline() {
        let (_c, m) = collector();
        m.sample(4.0);
        let s = m.snapshot();
        assert_eq!(s.samples, 1);
        assert_eq!(s.energy_j, 0.0, "no elapsed time yet");
        assert_eq!(s.power_w, 120.0, "100 + 4*5");
    }

    #[test]
    fn load_converges_to_constant_input() {
        let (c, m) = collector();
        for _ in 0..600 {
            c.advance(1_000);
            m.sample(8.0);
        }
        let s = m.snapshot();
        assert!((s.load_1 - 8.0).abs() < 0.01, "load_1 {}", s.load_1);
        assert!(s.load_5 > 6.0, "load_5 {}", s.load_5);
        assert!(s.load_15 > 3.0, "load_15 converges slowest: {}", s.load_15);
        assert!(s.load_1 >= s.load_5 && s.load_5 >= s.load_15);
    }

    #[test]
    fn load_decays_after_idle() {
        let (c, m) = collector();
        // 10 busy minutes builds substantial 15-min history...
        for _ in 0..600 {
            c.advance(1_000);
            m.sample(8.0);
        }
        // ...then 5 idle minutes: the 1-min average collapses while the
        // 15-min one still remembers the burst.
        for _ in 0..300 {
            c.advance(1_000);
            m.sample(0.0);
        }
        let s = m.snapshot();
        assert!(s.load_1 < 0.5, "1-min load decays fast: {}", s.load_1);
        assert!(s.load_15 > 1.0, "15-min remembers the burst: {}", s.load_15);
        assert!(s.load_15 > s.load_1);
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let (c, m) = collector();
        m.sample(0.0); // baseline at t=0
        c.advance(10_000);
        m.sample(0.0); // 10s idle at 100W = 1000J
        let s = m.snapshot();
        assert!((s.energy_j - 1000.0).abs() < 1e-9);
        c.advance(10_000);
        m.sample(10.0); // the *elapsed* interval is billed at the new busy level
        let s = m.snapshot();
        assert!(
            (s.energy_j - (1000.0 + 1500.0)).abs() < 1e-9,
            "got {}",
            s.energy_j
        );
    }
}
