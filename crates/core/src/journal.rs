//! End-to-end invocation tracing.
//!
//! §5: the paper instruments "the passage of invocations through the control
//! plane components". Here each invocation is minted a `trace_id` at ingest;
//! every hot-path stage appends a timestamped [`TraceEvent`] to the
//! invocation's [`TraceRecord`]. The journal is a lock-sharded, bounded ring
//! buffer — recording is O(1) and old traces age out, so it is safe to leave
//! on under sustained load. The worker serves records over `GET /trace/{id}`
//! and `GET /traces?last=N`; the same id crosses the worker → agent HTTP hop
//! as the `X-Iluvatar-Trace` header, tying agent-side time to the record.

use iluvatar_sync::{Clock, TimeMs};
use iluvatar_telemetry::{TelemetryBus, TelemetryKind as TelKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shards for the journal's ring buffers (power of two).
const SHARDS: usize = 8;

/// One stage of an invocation's passage through the control plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceEventKind {
    /// The request entered `invoke`/`async_invoke`.
    Ingested,
    /// Placed on the invocation queue.
    Enqueued,
    /// Skipped the queue via the short-function bypass.
    Bypassed,
    /// Popped off the queue by the dispatch loop.
    Dequeued,
    /// A container was acquired — `cold` says whether one had to be created.
    ContainerAcquired { cold: bool },
    /// The in-container agent was called over HTTP.
    AgentCalled,
    /// The agent call exceeded the configured timeout and was abandoned.
    AgentTimeout,
    /// The failed container was removed from circulation (destroyed rather
    /// than returned to the keep-alive pool).
    ContainerQuarantined,
    /// A retry was scheduled after a transient failure.
    RetryScheduled { attempt: u32, delay_ms: u64 },
    /// The retry budget was exhausted (or shed under saturation); the
    /// invocation fails with the last error.
    RetriesExhausted,
    /// Rejected at ingest by overload shedding (best-effort tenant, queue
    /// delay past the configured threshold).
    AdmissionRejected,
    /// Rejected at ingest by the tenant's token-bucket rate limit.
    TenantThrottled,
    /// Restored from the write-ahead log after a restart and re-enqueued
    /// (crash recovery; see [`crate::wal`]).
    Recovered,
    /// The result (or error) was delivered back to the caller.
    ResultReturned { ok: bool },
}

impl TraceEventKind {
    /// Stable timestamp-free label, the unit of [`journal_digest`].
    pub fn label(&self) -> String {
        match self {
            TraceEventKind::Ingested => "ingested".into(),
            TraceEventKind::Enqueued => "enqueued".into(),
            TraceEventKind::Bypassed => "bypassed".into(),
            TraceEventKind::Dequeued => "dequeued".into(),
            TraceEventKind::ContainerAcquired { cold } => format!("container_acquired({cold})"),
            TraceEventKind::AgentCalled => "agent_called".into(),
            TraceEventKind::AgentTimeout => "agent_timeout".into(),
            TraceEventKind::ContainerQuarantined => "container_quarantined".into(),
            TraceEventKind::RetryScheduled { attempt, delay_ms } => {
                format!("retry_scheduled({attempt},{delay_ms})")
            }
            TraceEventKind::RetriesExhausted => "retries_exhausted".into(),
            TraceEventKind::AdmissionRejected => "admission_rejected".into(),
            TraceEventKind::TenantThrottled => "tenant_throttled".into(),
            TraceEventKind::Recovered => "recovered".into(),
            TraceEventKind::ResultReturned { ok } => format!("result_returned({ok})"),
        }
    }
}

/// Timestamp-free digest over a set of timelines: FNV-1a of each record's
/// fqdn and event labels, records ordered by trace id. Two chaos runs with
/// the same seed and workload produce the same digest even though their
/// wall-clock timestamps differ — the flake detector in `scripts/check.sh`
/// diffs this value across runs.
pub fn journal_digest(records: &[TraceRecord]) -> u64 {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.trace_id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for r in sorted {
        eat(r.fqdn.as_bytes());
        eat(b"|");
        for e in &r.events {
            eat(e.kind.label().as_bytes());
            eat(b";");
        }
        eat(b"\n");
    }
    h
}

/// A timestamped stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Worker-clock timestamp, ms.
    pub at_ms: TimeMs,
    #[serde(flatten)]
    pub kind: TraceEventKind,
}

/// The full ordered timeline of one invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    pub trace_id: u64,
    pub fqdn: String,
    /// When the trace was minted (worker clock, ms).
    pub ingest_ms: TimeMs,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
}

impl TraceRecord {
    /// Whether this invocation paid a cold start (`None` if it never
    /// acquired a container).
    pub fn cold(&self) -> Option<bool> {
        self.events.iter().find_map(|e| match e.kind {
            TraceEventKind::ContainerAcquired { cold } => Some(cold),
            _ => None,
        })
    }

    /// Whether the result has been delivered.
    pub fn completed(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::ResultReturned { .. }))
    }
}

struct Shard {
    /// Ring of recent traces, oldest first.
    ring: Mutex<VecDeque<Arc<Mutex<TraceRecord>>>>,
}

/// Bounded journal of recent invocation traces.
pub struct TraceJournal {
    shards: Vec<Shard>,
    /// Per-shard capacity.
    per_shard: usize,
    next_id: AtomicU64,
    clock: Arc<dyn Clock>,
    /// Canonical stream mirror: every journaled stage is also emitted as
    /// a `TelemetryKind::Trace` event once a bus is attached, making this
    /// the single choke point between the hot path and telemetry.
    telemetry: OnceLock<Arc<TelemetryBus>>,
}

impl TraceJournal {
    /// A journal remembering roughly `capacity` recent traces. `seed`
    /// offsets the id space so two workers' ids rarely collide (derive it
    /// from the worker name).
    pub fn new(capacity: usize, seed: u64, clock: Arc<dyn Clock>) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    ring: Mutex::new(VecDeque::with_capacity(per_shard)),
                })
                .collect(),
            per_shard,
            // Spread seeds across the id space; low bits stay sequential.
            next_id: AtomicU64::new((seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)) << 20 | 1),
            clock,
            telemetry: OnceLock::new(),
        }
    }

    /// Attach the canonical-stream bus. Every stage journaled from now on
    /// is mirrored as a `trace:<stage>` telemetry event. Set once, at
    /// worker construction; later calls are ignored.
    pub fn set_telemetry(&self, bus: Arc<TelemetryBus>) {
        let _ = self.telemetry.set(bus);
    }

    fn mirror(&self, id: u64, kind: &TraceEventKind) {
        if let Some(bus) = self.telemetry.get() {
            bus.emit(
                Some(id),
                None,
                TelKind::Trace {
                    stage: kind.label(),
                },
            );
        }
    }

    fn shard(&self, id: u64) -> &Shard {
        &self.shards[(id as usize) & (SHARDS - 1)]
    }

    /// Mint a trace for a new invocation and record `Ingested`.
    pub fn begin(&self, fqdn: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_ms();
        let record = Arc::new(Mutex::new(TraceRecord {
            trace_id: id,
            fqdn: fqdn.to_string(),
            ingest_ms: now,
            events: vec![TraceEvent {
                at_ms: now,
                kind: TraceEventKind::Ingested,
            }],
        }));
        {
            let mut ring = self.shard(id).ring.lock();
            if ring.len() == self.per_shard {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        self.mirror(id, &TraceEventKind::Ingested);
        id
    }

    /// Re-mint a trace under an id recovered from the write-ahead log,
    /// opening its timeline with [`TraceEventKind::Recovered`] so replayed
    /// invocations are distinguishable from fresh ingests.
    pub fn begin_recovered(&self, id: u64, fqdn: &str) {
        let now = self.clock.now_ms();
        let record = Arc::new(Mutex::new(TraceRecord {
            trace_id: id,
            fqdn: fqdn.to_string(),
            ingest_ms: now,
            events: vec![TraceEvent {
                at_ms: now,
                kind: TraceEventKind::Recovered,
            }],
        }));
        {
            let mut ring = self.shard(id).ring.lock();
            if ring.len() == self.per_shard {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        self.mirror(id, &TraceEventKind::Recovered);
    }

    /// Ensure future minted ids are strictly greater than `floor` — called
    /// on recovery so new invocations cannot collide with ids already
    /// present in the write-ahead log.
    pub fn ensure_ids_above(&self, floor: u64) {
        self.next_id.fetch_max(floor + 1, Ordering::Relaxed);
    }

    /// Append an event to trace `id`. A no-op if the trace has aged out.
    pub fn record(&self, id: u64, kind: TraceEventKind) {
        let record = {
            let ring = self.shard(id).ring.lock();
            ring.iter().find(|r| r.lock().trace_id == id).cloned()
        };
        if let Some(r) = record {
            self.mirror(id, &kind);
            r.lock().events.push(TraceEvent {
                at_ms: self.clock.now_ms(),
                kind,
            });
        }
    }

    /// The full timeline of trace `id`, if still in the journal.
    pub fn get(&self, id: u64) -> Option<TraceRecord> {
        let ring = self.shard(id).ring.lock();
        ring.iter().find_map(|r| {
            let r = r.lock();
            (r.trace_id == id).then(|| r.clone())
        })
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::new();
        for shard in &self.shards {
            let ring = shard.ring.lock();
            out.extend(ring.iter().map(|r| r.lock().clone()));
        }
        // Newest first by ingest time, trace id as the tiebreak. Sorting
        // by id alone is wrong across recoveries: replayed invocations
        // keep their (low) pre-crash ids while freshly minted ids sit far
        // above them, so an id-ordered tail would bury the traces that
        // were actually recorded last.
        out.sort_by_key(|r| std::cmp::Reverse((r.ingest_ms, r.trace_id)));
        out.truncate(n);
        out
    }

    /// Traces currently held (bounded by capacity).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.ring.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iluvatar_sync::{ManualClock, SystemClock};

    fn journal() -> TraceJournal {
        TraceJournal::new(64, 1, SystemClock::shared())
    }

    #[test]
    fn begin_records_ingest() {
        let j = journal();
        let id = j.begin("echo-1");
        let r = j.get(id).unwrap();
        assert_eq!(r.trace_id, id);
        assert_eq!(r.fqdn, "echo-1");
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].kind, TraceEventKind::Ingested);
        assert!(!r.completed());
        assert_eq!(r.cold(), None);
    }

    #[test]
    fn events_stay_ordered() {
        let clock = Arc::new(ManualClock::starting_at(1000));
        let j = TraceJournal::new(64, 7, Arc::clone(&clock) as Arc<dyn Clock>);
        let id = j.begin("f-1");
        clock.advance(5);
        j.record(id, TraceEventKind::Enqueued);
        clock.advance(5);
        j.record(id, TraceEventKind::Dequeued);
        clock.advance(5);
        j.record(id, TraceEventKind::ContainerAcquired { cold: true });
        j.record(id, TraceEventKind::AgentCalled);
        clock.advance(5);
        j.record(id, TraceEventKind::ResultReturned { ok: true });
        let r = j.get(id).unwrap();
        let kinds: Vec<_> = r.events.iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::Ingested,
                TraceEventKind::Enqueued,
                TraceEventKind::Dequeued,
                TraceEventKind::ContainerAcquired { cold: true },
                TraceEventKind::AgentCalled,
                TraceEventKind::ResultReturned { ok: true },
            ]
        );
        let times: Vec<_> = r.events.iter().map(|e| e.at_ms).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps ordered: {times:?}"
        );
        assert_eq!(r.cold(), Some(true));
        assert!(r.completed());
    }

    #[test]
    fn distinct_ids() {
        let j = journal();
        let a = j.begin("f-1");
        let b = j.begin("f-1");
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_capacity_ages_out_oldest() {
        let j = TraceJournal::new(16, 1, SystemClock::shared());
        let first = j.begin("f-1");
        let ids: Vec<u64> = (0..200).map(|_| j.begin("f-1")).collect();
        assert!(j.len() <= 16 + SHARDS, "len {} must stay bounded", j.len());
        assert!(j.get(first).is_none(), "oldest trace must age out");
        // Recording into an aged-out trace is a silent no-op.
        j.record(first, TraceEventKind::Dequeued);
        // The newest survive.
        assert!(j.get(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn recent_is_newest_first() {
        let j = journal();
        let ids: Vec<u64> = (0..10).map(|_| j.begin("f-1")).collect();
        let recent = j.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, ids[9]);
        assert!(recent.windows(2).all(|w| w[0].trace_id > w[1].trace_id));
    }

    #[test]
    fn recent_orders_recovered_low_ids_by_ingest_time() {
        // After a crash the journal re-mints traces under their (low)
        // pre-crash ids while fresh ingests mint far-higher ids. The tail
        // must order by ingest time, not id.
        let clock = Arc::new(ManualClock::starting_at(1000));
        let j = TraceJournal::new(64, 99, Arc::clone(&clock) as Arc<dyn Clock>);
        let fresh = j.begin("f-1"); // high id, t=1000
        clock.advance(10);
        j.begin_recovered(3, "f-1"); // low id, t=1010 — newest
        let recent = j.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(
            recent[0].trace_id, 3,
            "the recovered trace was ingested last and must lead the tail"
        );
        assert_eq!(recent[1].trace_id, fresh);
    }

    #[test]
    fn journal_mirrors_stages_onto_the_telemetry_bus() {
        use iluvatar_telemetry::{TelemetrySink, VecSink};
        let clock = Arc::new(ManualClock::starting_at(50));
        let j = TraceJournal::new(64, 1, Arc::clone(&clock) as Arc<dyn Clock>);
        let bus = TelemetryBus::new("w0", Arc::clone(&clock) as Arc<dyn Clock>);
        let sink = Arc::new(VecSink::new());
        bus.add_sink(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        j.set_telemetry(Arc::clone(&bus));
        let id = j.begin("f-1");
        j.record(id, TraceEventKind::Enqueued);
        j.record(id, TraceEventKind::ResultReturned { ok: true });
        // Aged-out / unknown traces do not emit.
        j.record(id ^ 0x5555, TraceEventKind::Dequeued);
        let labels: Vec<String> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "trace:ingested".to_string(),
                "trace:enqueued".to_string(),
                "trace:result_returned(true)".to_string(),
            ]
        );
        assert!(sink.events().iter().all(|e| e.trace_id == Some(id)));
    }

    #[test]
    fn seeds_separate_id_spaces() {
        let a = TraceJournal::new(8, 1, SystemClock::shared());
        let b = TraceJournal::new(8, 2, SystemClock::shared());
        assert_ne!(a.begin("f-1"), b.begin("f-1"));
    }

    #[test]
    fn record_serde_roundtrip() {
        let j = journal();
        let id = j.begin("f-1");
        j.record(id, TraceEventKind::ContainerAcquired { cold: false });
        j.record(id, TraceEventKind::ResultReturned { ok: false });
        let r = j.get(id).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            json.contains("\"kind\":\"container_acquired\""),
            "json: {json}"
        );
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace_id, r.trace_id);
        assert_eq!(back.events, r.events);
        assert_eq!(back.cold(), Some(false));
    }
}
