//! The per-worker invocation queue (§4).
//!
//! "Function invocations go through this queuing system before reaching the
//! container manager ... Each worker manages its own queue, differentiating
//! our design from OpenWhisk's shared Kafka queue."
//!
//! Components, right to left in Figure 2:
//!
//! * [`regulator::ConcurrencyRegulator`] — bounds concurrently running
//!   functions; fixed or AIMD-dynamic limit.
//! * [`InvocationQueue`] — priority queue under a mutex (§5 found a mutex
//!   good enough here) with the FCFS/SJF/EEDF/RARE disciplines of §4.2,
//!   plus the multi-tenant [`DrrQueue`] (deficit-weighted round robin over
//!   per-tenant sub-queues).
//! * queue bypass — short functions skip the queue when the system is under
//!   a load limit; decided by [`InvocationQueue::should_bypass`].

pub mod regulator;

use crate::config::{QueueConfig, QueuePolicyKind};
use crate::invocation::ResultSender;
use iluvatar_sync::TimeMs;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Quantum used when `QueueConfig::drr_quantum_ms` is 0 (unset).
pub const DEFAULT_DRR_QUANTUM_MS: u64 = 50;

/// An invocation waiting for dispatch.
pub struct QueuedInvocation {
    pub fqdn: String,
    pub args: String,
    /// End-to-end trace id minted at ingest (see [`crate::journal`]).
    pub trace_id: u64,
    pub arrived_at: TimeMs,
    /// Expected execution time (moving-window), ms. 0 for unseen functions,
    /// which prioritizes them (§4.2).
    pub expected_exec_ms: f64,
    /// Mean inter-arrival time, ms (RARE input).
    pub iat_ms: f64,
    /// Whether a warm container is expected (picks warm vs cold estimate).
    pub expect_warm: bool,
    /// Tenant label for the DRR fair queue and per-tenant accounting;
    /// `None` lands in the default tenant's sub-queue.
    pub tenant: Option<String>,
    /// DRR weight of the tenant at enqueue time (`<= 0` means 1.0).
    pub tenant_weight: f64,
    pub result_tx: ResultSender,
}

/// Compute the dequeue priority; LOWER dequeues first.
pub fn priority_of(policy: QueuePolicyKind, q: &QueuedInvocation) -> f64 {
    match policy {
        QueuePolicyKind::Fcfs => q.arrived_at as f64,
        QueuePolicyKind::Sjf => q.expected_exec_ms,
        // Effective deadline = arrival + expected execution (§4.2).
        QueuePolicyKind::Eedf => q.arrived_at as f64 + q.expected_exec_ms,
        // Most unexpected (highest IAT) first.
        QueuePolicyKind::Rare => -q.iat_ms,
        // DRR does not use a scalar priority (it is a multi-queue
        // structure); arrival order is the total-order fallback.
        QueuePolicyKind::Drr => q.arrived_at as f64,
    }
}

struct HeapItem {
    priority: f64,
    seq: u64,
    item: QueuedInvocation,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the LOWEST priority pops
        // first, with FIFO (seq) tiebreak.
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

struct SubQueue {
    items: VecDeque<QueuedInvocation>,
    /// Remaining cost credit, in expected-exec milliseconds.
    deficit: f64,
    weight: f64,
    /// Whether this sub-queue already received its quantum for the current
    /// visit at the head of the active rotation.
    credited: bool,
}

impl SubQueue {
    fn new(weight: f64) -> Self {
        Self {
            items: VecDeque::new(),
            deficit: 0.0,
            weight,
            credited: false,
        }
    }
}

/// Deficit-weighted round robin over per-tenant sub-queues.
///
/// Each backlogged tenant sits in a rotation; on reaching the head it is
/// credited `quantum × weight` milliseconds of cost and serves invocations
/// (cost = expected execution time, floored at 1 ms) while its deficit
/// covers them, then rotates to the back. Unspent deficit carries over
/// while the tenant stays backlogged, so long-run service converges to the
/// weight ratio; it resets to zero when the sub-queue drains, so an idle
/// tenant cannot hoard credit and later starve others.
pub struct DrrQueue {
    quantum_ms: f64,
    active: VecDeque<String>,
    subs: HashMap<String, SubQueue>,
    len: usize,
}

/// Sub-queue key for invocations without a tenant label.
const UNLABELLED: &str = "default";

impl DrrQueue {
    /// `quantum_ms` of 0 selects [`DEFAULT_DRR_QUANTUM_MS`].
    pub fn new(quantum_ms: u64) -> Self {
        let q = if quantum_ms == 0 {
            DEFAULT_DRR_QUANTUM_MS
        } else {
            quantum_ms
        };
        Self {
            quantum_ms: q as f64,
            active: VecDeque::new(),
            subs: HashMap::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current deficit of a tenant (0 for unknown/idle tenants).
    pub fn deficit_of(&self, tenant: &str) -> f64 {
        self.subs.get(tenant).map(|s| s.deficit).unwrap_or(0.0)
    }

    /// Dump every tenant's deficit, sorted by tenant id (snapshot input).
    pub fn deficits(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .subs
            .iter()
            .map(|(k, s)| (k.clone(), s.deficit))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Restore a tenant's deficit from a snapshot. Only applies to tenants
    /// that are currently backlogged — an idle tenant carries no credit
    /// (same rule as the drain-time reset), so restoring credit to one
    /// would let it burst ahead after recovery.
    pub fn restore_deficit(&mut self, tenant: &str, deficit: f64) {
        if let Some(sub) = self.subs.get_mut(tenant) {
            if !sub.items.is_empty() {
                sub.deficit = deficit.max(0.0);
            }
        }
    }

    pub fn push(&mut self, item: QueuedInvocation) {
        let key = item
            .tenant
            .clone()
            .unwrap_or_else(|| UNLABELLED.to_string());
        let weight = if item.tenant_weight > 0.0 {
            item.tenant_weight
        } else {
            1.0
        };
        let sub = self
            .subs
            .entry(key.clone())
            .or_insert_with(|| SubQueue::new(weight));
        sub.weight = weight;
        if sub.items.is_empty() {
            // Invariant: a tenant is in the rotation iff its sub-queue is
            // non-empty, so an empty sub-queue is never in `active`.
            self.active.push_back(key);
        }
        sub.items.push_back(item);
        self.len += 1;
    }

    pub fn pop(&mut self) -> Option<QueuedInvocation> {
        if self.len == 0 {
            return None;
        }
        // Terminates: some sub-queue is non-empty, and every full rotation
        // grows its deficit by quantum × weight > 0 until it covers the
        // head item's cost.
        loop {
            let key = self.active.front()?.clone();
            let sub = self
                .subs
                .get_mut(&key)
                .expect("active tenant has a sub-queue");
            if !sub.credited {
                sub.deficit += self.quantum_ms * sub.weight;
                sub.credited = true;
            }
            let cost = sub
                .items
                .front()
                .map(|i| i.expected_exec_ms.max(1.0))
                .expect("active sub-queue is non-empty");
            if sub.deficit >= cost {
                let item = sub.items.pop_front().expect("non-empty");
                sub.deficit -= cost;
                self.len -= 1;
                if sub.items.is_empty() {
                    // Idle tenants carry no credit.
                    sub.deficit = 0.0;
                    sub.credited = false;
                    self.active.pop_front();
                }
                return Some(item);
            }
            // Out of credit: rotate to the back; fresh quantum next visit.
            sub.credited = false;
            let k = self.active.pop_front().expect("checked front above");
            self.active.push_back(k);
        }
    }
}

enum QueueImpl {
    Heap(BinaryHeap<HeapItem>),
    Drr(DrrQueue),
}

impl QueueImpl {
    fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(h) => h.len(),
            QueueImpl::Drr(d) => d.len(),
        }
    }

    fn pop(&mut self) -> Option<QueuedInvocation> {
        match self {
            QueueImpl::Heap(h) => h.pop().map(|hi| hi.item),
            QueueImpl::Drr(d) => d.pop(),
        }
    }
}

struct QueueState {
    q: QueueImpl,
    closed: bool,
}

/// Reasons a push can fail.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Backpressure: the queue is at its configured bound.
    Full,
    /// The worker is shutting down.
    Closed,
}

/// The priority invocation queue.
pub struct InvocationQueue {
    cfg: QueueConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    seq: AtomicU64,
    enqueued: AtomicU64,
    bypassed: AtomicU64,
}

impl InvocationQueue {
    pub fn new(cfg: QueueConfig) -> Self {
        let q = match cfg.policy {
            QueuePolicyKind::Drr => QueueImpl::Drr(DrrQueue::new(cfg.drr_quantum_ms)),
            _ => QueueImpl::Heap(BinaryHeap::new()),
        };
        Self {
            cfg,
            state: Mutex::new(QueueState { q, closed: false }),
            cv: Condvar::new(),
            seq: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> QueuePolicyKind {
        self.cfg.policy
    }

    /// Queue-bypass decision (§4.1): short functions run immediately when
    /// the normalized system load is under the configured limit. Under DRR
    /// a non-empty queue additionally disables bypass — letting a flooding
    /// tenant's short functions around the fair queue would defeat it.
    pub fn should_bypass(&self, expected_exec_ms: f64, normalized_load: f64) -> bool {
        if self.cfg.bypass_threshold_ms == 0
            || expected_exec_ms <= 0.0
            || expected_exec_ms > self.cfg.bypass_threshold_ms as f64
            || normalized_load > self.cfg.bypass_load_limit
        {
            return false;
        }
        if self.cfg.policy == QueuePolicyKind::Drr && !self.is_empty() {
            return false;
        }
        true
    }

    pub fn note_bypass(&self) {
        self.bypassed.fetch_add(1, Ordering::Relaxed);
    }

    /// Enqueue; fails when the bound is hit (backpressure) or closed.
    pub fn push(&self, item: QueuedInvocation) -> Result<(), PushError> {
        let priority = priority_of(self.cfg.policy, &item);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.q.len() >= self.cfg.max_len {
            return Err(PushError::Full);
        }
        match &mut st.q {
            QueueImpl::Heap(h) => h.push(HeapItem {
                priority,
                seq,
                item,
            }),
            QueueImpl::Drr(d) => d.push(item),
        }
        drop(st);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop with timeout. `None` on timeout or when closed+drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<QueuedInvocation> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.q.pop() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                return st.q.pop();
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<QueuedInvocation> {
        self.state.lock().q.pop()
    }

    pub fn len(&self) -> usize {
        self.state.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current DRR deficit of a tenant; `None` unless the DRR policy is
    /// active (diagnostics / tests).
    pub fn drr_deficit(&self, tenant: &str) -> Option<f64> {
        match &self.state.lock().q {
            QueueImpl::Drr(d) => Some(d.deficit_of(tenant)),
            QueueImpl::Heap(_) => None,
        }
    }

    /// Dump all DRR tenant deficits, sorted by tenant id; empty unless the
    /// DRR policy is active (WAL snapshot input).
    pub fn drr_deficits(&self) -> Vec<(String, f64)> {
        match &self.state.lock().q {
            QueueImpl::Drr(d) => d.deficits(),
            QueueImpl::Heap(_) => Vec::new(),
        }
    }

    /// Restore DRR deficits from a snapshot. No-op for non-DRR policies and
    /// for tenants without a current backlog (idle tenants carry no credit).
    pub fn restore_drr_deficits(&self, deficits: &[(String, f64)]) {
        if let QueueImpl::Drr(d) = &mut self.state.lock().q {
            for (tenant, deficit) in deficits {
                d.restore_deficit(tenant, *deficit);
            }
        }
    }

    /// Total enqueued (excluding bypasses).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    pub fn bypassed(&self) -> u64 {
        self.bypassed.load(Ordering::Relaxed)
    }

    /// Close the queue; waiters drain the remaining items and then get None.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::InvocationHandle;

    fn item(fqdn: &str, arrived: TimeMs, exec: f64, iat: f64) -> QueuedInvocation {
        titem(fqdn, arrived, exec, iat, None, 1.0)
    }

    fn titem(
        fqdn: &str,
        arrived: TimeMs,
        exec: f64,
        iat: f64,
        tenant: Option<&str>,
        weight: f64,
    ) -> QueuedInvocation {
        let (tx, _h) = InvocationHandle::pair();
        // Keep the handle alive is unnecessary; sender send may fail later.
        std::mem::forget(_h);
        QueuedInvocation {
            fqdn: fqdn.into(),
            args: String::new(),
            trace_id: 0,
            arrived_at: arrived,
            expected_exec_ms: exec,
            iat_ms: iat,
            expect_warm: true,
            tenant: tenant.map(|t| t.to_string()),
            tenant_weight: weight,
            result_tx: tx,
        }
    }

    fn queue(policy: QueuePolicyKind) -> InvocationQueue {
        InvocationQueue::new(QueueConfig {
            policy,
            ..Default::default()
        })
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let q = queue(QueuePolicyKind::Fcfs);
        q.push(item("b", 20, 1.0, 0.0)).unwrap();
        q.push(item("a", 10, 100.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "a");
        assert_eq!(q.try_pop().unwrap().fqdn, "b");
    }

    #[test]
    fn sjf_orders_by_exec_time() {
        let q = queue(QueuePolicyKind::Sjf);
        q.push(item("long", 0, 5000.0, 0.0)).unwrap();
        q.push(item("short", 100, 10.0, 0.0)).unwrap();
        q.push(item("new", 200, 0.0, 0.0)).unwrap(); // unseen → highest prio
        assert_eq!(q.try_pop().unwrap().fqdn, "new");
        assert_eq!(q.try_pop().unwrap().fqdn, "short");
        assert_eq!(q.try_pop().unwrap().fqdn, "long");
    }

    #[test]
    fn eedf_balances_arrival_and_size() {
        let q = queue(QueuePolicyKind::Eedf);
        // Early long job: deadline 0+1000=1000. Later short: 300+10=310.
        q.push(item("early-long", 0, 1000.0, 0.0)).unwrap();
        q.push(item("late-short", 300, 10.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "late-short");
        assert_eq!(q.try_pop().unwrap().fqdn, "early-long", "drain part 1");
        // But a short job can't starve an old one forever: deadline grows
        // with arrival time.
        q.push(item("old-long", 0, 1000.0, 0.0)).unwrap();
        q.push(item("new-short", 2000, 10.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "old-long");
    }

    #[test]
    fn rare_prioritizes_high_iat() {
        let q = queue(QueuePolicyKind::Rare);
        q.push(item("popular", 0, 10.0, 50.0)).unwrap();
        q.push(item("rare", 10, 10.0, 60_000.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "rare");
    }

    #[test]
    fn fifo_tiebreak_on_equal_priority() {
        let q = queue(QueuePolicyKind::Sjf);
        for name in ["first", "second", "third"] {
            q.push(item(name, 0, 42.0, 0.0)).unwrap();
        }
        assert_eq!(q.try_pop().unwrap().fqdn, "first");
        assert_eq!(q.try_pop().unwrap().fqdn, "second");
        assert_eq!(q.try_pop().unwrap().fqdn, "third");
    }

    #[test]
    fn backpressure_at_bound() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Fcfs,
            max_len: 2,
            ..Default::default()
        });
        q.push(item("a", 0, 0.0, 0.0)).unwrap();
        q.push(item("b", 0, 0.0, 0.0)).unwrap();
        assert_eq!(q.push(item("c", 0, 0.0, 0.0)).unwrap_err(), PushError::Full);
        q.try_pop().unwrap();
        assert!(q.push(item("c", 0, 0.0, 0.0)).is_ok());
    }

    #[test]
    fn pop_timeout_returns_none_when_empty() {
        let q = queue(QueuePolicyKind::Fcfs);
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(queue(QueuePolicyKind::Fcfs));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(item("x", 0, 0.0, 0.0)).unwrap();
        assert_eq!(t.join().unwrap().unwrap().fqdn, "x");
    }

    #[test]
    fn close_rejects_push_and_drains() {
        let q = queue(QueuePolicyKind::Fcfs);
        q.push(item("x", 0, 0.0, 0.0)).unwrap();
        q.close();
        assert_eq!(
            q.push(item("y", 0, 0.0, 0.0)).unwrap_err(),
            PushError::Closed
        );
        assert!(q.pop_timeout(Duration::from_millis(5)).is_some(), "drains");
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn bypass_rules() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Fcfs,
            bypass_threshold_ms: 20,
            bypass_load_limit: 0.8,
            ..Default::default()
        });
        assert!(q.should_bypass(10.0, 0.5), "short fn, low load");
        assert!(!q.should_bypass(10.0, 0.9), "load too high");
        assert!(!q.should_bypass(100.0, 0.5), "function too long");
        assert!(!q.should_bypass(0.0, 0.5), "unseen functions must queue");
        let q_off = queue(QueuePolicyKind::Fcfs); // threshold 0 = disabled
        assert!(!q_off.should_bypass(1.0, 0.0));
    }

    /// Serve `n` pops and count how many went to each of two tenants.
    fn drain_counts(q: &InvocationQueue, n: usize, a: &str, b: &str) -> (usize, usize) {
        let (mut ca, mut cb) = (0, 0);
        for _ in 0..n {
            match q.try_pop() {
                Some(i) if i.tenant.as_deref() == Some(a) => ca += 1,
                Some(i) if i.tenant.as_deref() == Some(b) => cb += 1,
                _ => {}
            }
        }
        (ca, cb)
    }

    #[test]
    fn drr_equal_weights_serve_equally_under_flood() {
        // Tenant "flood" offers 10× the load of "meek" at equal weight;
        // while both stay backlogged, service must stay ~1:1.
        let q = queue(QueuePolicyKind::Drr);
        for i in 0..400 {
            q.push(titem("f", i, 10.0, 0.0, Some("flood"), 1.0))
                .unwrap();
        }
        for i in 0..40 {
            q.push(titem("m", i, 10.0, 0.0, Some("meek"), 1.0)).unwrap();
        }
        // Serve only while both are backlogged: meek has 40 items, so take
        // 60 pops — at fair 1:1 that consumes ≤ 35 of meek's backlog.
        let (flood, meek) = drain_counts(&q, 60, "flood", "meek");
        assert_eq!(flood + meek, 60);
        let ratio = flood as f64 / meek as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "equal weights must serve ~1:1 under 10:1 offered load, got {flood}:{meek}"
        );
    }

    #[test]
    fn drr_weighted_service_matches_ratio() {
        let q = queue(QueuePolicyKind::Drr);
        for i in 0..300 {
            q.push(titem("g", i, 10.0, 0.0, Some("gold"), 3.0)).unwrap();
            q.push(titem("b", i, 10.0, 0.0, Some("bronze"), 1.0))
                .unwrap();
        }
        let (gold, bronze) = drain_counts(&q, 200, "gold", "bronze");
        assert_eq!(gold + bronze, 200);
        let ratio = gold as f64 / bronze as f64;
        assert!(
            (2.7..=3.3).contains(&ratio),
            "3:1 weights must serve ~3:1, got {gold}:{bronze} ({ratio:.2})"
        );
    }

    #[test]
    fn drr_idle_tenant_deficit_resets() {
        let mut d = DrrQueue::new(10);
        for i in 0..5 {
            d.push(titem("a", i, 3.0, 0.0, Some("t1"), 1.0));
        }
        while d.pop().is_some() {}
        assert_eq!(d.deficit_of("t1"), 0.0, "drained tenant keeps no credit");
        assert!(d.is_empty());
        // After idling, t1 cannot burst ahead of a newly active tenant.
        d.push(titem("a", 100, 3.0, 0.0, Some("t1"), 1.0));
        d.push(titem("b", 100, 3.0, 0.0, Some("t2"), 1.0));
        assert_eq!(d.pop().unwrap().tenant.as_deref(), Some("t1"));
        assert_eq!(d.pop().unwrap().tenant.as_deref(), Some("t2"));
    }

    #[test]
    fn drr_unlabelled_items_share_default_subqueue() {
        let q = queue(QueuePolicyKind::Drr);
        q.push(item("x", 0, 5.0, 0.0)).unwrap();
        q.push(item("y", 1, 5.0, 0.0)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop().unwrap().fqdn, "x", "FIFO within a sub-queue");
        assert_eq!(q.try_pop().unwrap().fqdn, "y");
        assert!(q.drr_deficit("default").is_some());
        assert!(queue(QueuePolicyKind::Fcfs)
            .drr_deficit("default")
            .is_none());
    }

    #[test]
    fn drr_no_starvation_with_expensive_items() {
        // An item costing many quanta must still be served eventually.
        let mut d = DrrQueue::new(10);
        d.push(titem("big", 0, 500.0, 0.0, Some("heavy"), 1.0));
        d.push(titem("small", 0, 1.0, 0.0, Some("light"), 1.0));
        let mut seen = Vec::new();
        while let Some(i) = d.pop() {
            seen.push(i.fqdn);
        }
        assert_eq!(seen.len(), 2);
        assert!(
            seen.contains(&"big".to_string()),
            "expensive item not starved"
        );
    }

    #[test]
    fn drr_bypass_disabled_while_backlogged() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Drr,
            bypass_threshold_ms: 20,
            bypass_load_limit: 0.8,
            ..Default::default()
        });
        assert!(q.should_bypass(10.0, 0.1), "empty fair queue may bypass");
        q.push(titem("f", 0, 10.0, 0.0, Some("flood"), 1.0))
            .unwrap();
        assert!(
            !q.should_bypass(10.0, 0.1),
            "backlogged fair queue must not be bypassed"
        );
    }

    #[test]
    fn drr_respects_bound_and_close() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Drr,
            max_len: 1,
            ..Default::default()
        });
        q.push(titem("a", 0, 1.0, 0.0, Some("t"), 1.0)).unwrap();
        assert_eq!(
            q.push(titem("b", 0, 1.0, 0.0, Some("t"), 1.0)).unwrap_err(),
            PushError::Full
        );
        q.close();
        assert!(q.pop_timeout(Duration::from_millis(5)).is_some(), "drains");
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
    }
}
