//! The per-worker invocation queue (§4).
//!
//! "Function invocations go through this queuing system before reaching the
//! container manager ... Each worker manages its own queue, differentiating
//! our design from OpenWhisk's shared Kafka queue."
//!
//! Components, right to left in Figure 2:
//!
//! * [`regulator::ConcurrencyRegulator`] — bounds concurrently running
//!   functions; fixed or AIMD-dynamic limit.
//! * [`InvocationQueue`] — priority queue under a mutex (§5 found a mutex
//!   good enough here) with the FCFS/SJF/EEDF/RARE disciplines of §4.2.
//! * queue bypass — short functions skip the queue when the system is under
//!   a load limit; decided by [`InvocationQueue::should_bypass`].

pub mod regulator;

use crate::config::{QueueConfig, QueuePolicyKind};
use crate::invocation::ResultSender;
use iluvatar_sync::TimeMs;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// An invocation waiting for dispatch.
pub struct QueuedInvocation {
    pub fqdn: String,
    pub args: String,
    /// End-to-end trace id minted at ingest (see [`crate::journal`]).
    pub trace_id: u64,
    pub arrived_at: TimeMs,
    /// Expected execution time (moving-window), ms. 0 for unseen functions,
    /// which prioritizes them (§4.2).
    pub expected_exec_ms: f64,
    /// Mean inter-arrival time, ms (RARE input).
    pub iat_ms: f64,
    /// Whether a warm container is expected (picks warm vs cold estimate).
    pub expect_warm: bool,
    pub result_tx: ResultSender,
}

/// Compute the dequeue priority; LOWER dequeues first.
pub fn priority_of(policy: QueuePolicyKind, q: &QueuedInvocation) -> f64 {
    match policy {
        QueuePolicyKind::Fcfs => q.arrived_at as f64,
        QueuePolicyKind::Sjf => q.expected_exec_ms,
        // Effective deadline = arrival + expected execution (§4.2).
        QueuePolicyKind::Eedf => q.arrived_at as f64 + q.expected_exec_ms,
        // Most unexpected (highest IAT) first.
        QueuePolicyKind::Rare => -q.iat_ms,
    }
}

struct HeapItem {
    priority: f64,
    seq: u64,
    item: QueuedInvocation,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the LOWEST priority pops
        // first, with FIFO (seq) tiebreak.
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

struct QueueState {
    heap: BinaryHeap<HeapItem>,
    closed: bool,
}

/// Reasons a push can fail.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Backpressure: the queue is at its configured bound.
    Full,
    /// The worker is shutting down.
    Closed,
}

/// The priority invocation queue.
pub struct InvocationQueue {
    cfg: QueueConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    seq: AtomicU64,
    enqueued: AtomicU64,
    bypassed: AtomicU64,
}

impl InvocationQueue {
    pub fn new(cfg: QueueConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(QueueState { heap: BinaryHeap::new(), closed: false }),
            cv: Condvar::new(),
            seq: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> QueuePolicyKind {
        self.cfg.policy
    }

    /// Queue-bypass decision (§4.1): short functions run immediately when
    /// the normalized system load is under the configured limit.
    pub fn should_bypass(&self, expected_exec_ms: f64, normalized_load: f64) -> bool {
        self.cfg.bypass_threshold_ms > 0
            && expected_exec_ms > 0.0
            && expected_exec_ms <= self.cfg.bypass_threshold_ms as f64
            && normalized_load <= self.cfg.bypass_load_limit
    }

    pub fn note_bypass(&self) {
        self.bypassed.fetch_add(1, Ordering::Relaxed);
    }

    /// Enqueue; fails when the bound is hit (backpressure) or closed.
    pub fn push(&self, item: QueuedInvocation) -> Result<(), PushError> {
        let priority = priority_of(self.cfg.policy, &item);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.heap.len() >= self.cfg.max_len {
            return Err(PushError::Full);
        }
        st.heap.push(HeapItem { priority, seq, item });
        drop(st);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop with timeout. `None` on timeout or when closed+drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<QueuedInvocation> {
        let mut st = self.state.lock();
        loop {
            if let Some(hi) = st.heap.pop() {
                return Some(hi.item);
            }
            if st.closed {
                return None;
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                return st.heap.pop().map(|hi| hi.item);
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<QueuedInvocation> {
        self.state.lock().heap.pop().map(|hi| hi.item)
    }

    pub fn len(&self) -> usize {
        self.state.lock().heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total enqueued (excluding bypasses).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    pub fn bypassed(&self) -> u64 {
        self.bypassed.load(Ordering::Relaxed)
    }

    /// Close the queue; waiters drain the remaining items and then get None.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::InvocationHandle;

    fn item(fqdn: &str, arrived: TimeMs, exec: f64, iat: f64) -> QueuedInvocation {
        let (tx, _h) = InvocationHandle::pair();
        // Keep the handle alive is unnecessary; sender send may fail later.
        std::mem::forget(_h);
        QueuedInvocation {
            fqdn: fqdn.into(),
            args: String::new(),
            trace_id: 0,
            arrived_at: arrived,
            expected_exec_ms: exec,
            iat_ms: iat,
            expect_warm: true,
            result_tx: tx,
        }
    }

    fn queue(policy: QueuePolicyKind) -> InvocationQueue {
        InvocationQueue::new(QueueConfig { policy, ..Default::default() })
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let q = queue(QueuePolicyKind::Fcfs);
        q.push(item("b", 20, 1.0, 0.0)).unwrap();
        q.push(item("a", 10, 100.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "a");
        assert_eq!(q.try_pop().unwrap().fqdn, "b");
    }

    #[test]
    fn sjf_orders_by_exec_time() {
        let q = queue(QueuePolicyKind::Sjf);
        q.push(item("long", 0, 5000.0, 0.0)).unwrap();
        q.push(item("short", 100, 10.0, 0.0)).unwrap();
        q.push(item("new", 200, 0.0, 0.0)).unwrap(); // unseen → highest prio
        assert_eq!(q.try_pop().unwrap().fqdn, "new");
        assert_eq!(q.try_pop().unwrap().fqdn, "short");
        assert_eq!(q.try_pop().unwrap().fqdn, "long");
    }

    #[test]
    fn eedf_balances_arrival_and_size() {
        let q = queue(QueuePolicyKind::Eedf);
        // Early long job: deadline 0+1000=1000. Later short: 300+10=310.
        q.push(item("early-long", 0, 1000.0, 0.0)).unwrap();
        q.push(item("late-short", 300, 10.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "late-short");
        assert_eq!(q.try_pop().unwrap().fqdn, "early-long", "drain part 1");
        // But a short job can't starve an old one forever: deadline grows
        // with arrival time.
        q.push(item("old-long", 0, 1000.0, 0.0)).unwrap();
        q.push(item("new-short", 2000, 10.0, 0.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "old-long");
    }

    #[test]
    fn rare_prioritizes_high_iat() {
        let q = queue(QueuePolicyKind::Rare);
        q.push(item("popular", 0, 10.0, 50.0)).unwrap();
        q.push(item("rare", 10, 10.0, 60_000.0)).unwrap();
        assert_eq!(q.try_pop().unwrap().fqdn, "rare");
    }

    #[test]
    fn fifo_tiebreak_on_equal_priority() {
        let q = queue(QueuePolicyKind::Sjf);
        for name in ["first", "second", "third"] {
            q.push(item(name, 0, 42.0, 0.0)).unwrap();
        }
        assert_eq!(q.try_pop().unwrap().fqdn, "first");
        assert_eq!(q.try_pop().unwrap().fqdn, "second");
        assert_eq!(q.try_pop().unwrap().fqdn, "third");
    }

    #[test]
    fn backpressure_at_bound() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Fcfs,
            max_len: 2,
            ..Default::default()
        });
        q.push(item("a", 0, 0.0, 0.0)).unwrap();
        q.push(item("b", 0, 0.0, 0.0)).unwrap();
        assert_eq!(q.push(item("c", 0, 0.0, 0.0)).unwrap_err(), PushError::Full);
        q.try_pop().unwrap();
        assert!(q.push(item("c", 0, 0.0, 0.0)).is_ok());
    }

    #[test]
    fn pop_timeout_returns_none_when_empty() {
        let q = queue(QueuePolicyKind::Fcfs);
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(queue(QueuePolicyKind::Fcfs));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(item("x", 0, 0.0, 0.0)).unwrap();
        assert_eq!(t.join().unwrap().unwrap().fqdn, "x");
    }

    #[test]
    fn close_rejects_push_and_drains() {
        let q = queue(QueuePolicyKind::Fcfs);
        q.push(item("x", 0, 0.0, 0.0)).unwrap();
        q.close();
        assert_eq!(q.push(item("y", 0, 0.0, 0.0)).unwrap_err(), PushError::Closed);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_some(), "drains");
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn bypass_rules() {
        let q = InvocationQueue::new(QueueConfig {
            policy: QueuePolicyKind::Fcfs,
            bypass_threshold_ms: 20,
            bypass_load_limit: 0.8,
            ..Default::default()
        });
        assert!(q.should_bypass(10.0, 0.5), "short fn, low load");
        assert!(!q.should_bypass(10.0, 0.9), "load too high");
        assert!(!q.should_bypass(100.0, 0.5), "function too long");
        assert!(!q.should_bypass(0.0, 0.5), "unseen functions must queue");
        let q_off = queue(QueuePolicyKind::Fcfs); // threshold 0 = disabled
        assert!(!q_off.should_bypass(1.0, 0.0));
    }
}
