//! The concurrency regulator (§4.1).
//!
//! "First, we have a concurrency regulator ... which enforces the
//! concurrency limit: the upper-bound on the number of concurrently running
//! functions. ... Ilúvatar can be deployed with a fixed concurrency limit
//! ... or use its dynamic concurrency limit mode. In the dynamic mode, we
//! use a simple TCP-like AIMD policy which increases the concurrency limit
//! until we hit congestion", congestion being normalized load above a
//! threshold.

use crate::config::ConcurrencyConfig;
use iluvatar_sync::aimd::AimdConfig;
use iluvatar_sync::{Aimd, Semaphore, SemaphorePermit};
use parking_lot::Mutex;

/// Concurrency regulator: a resizable semaphore, optionally driven by AIMD.
pub struct ConcurrencyRegulator {
    cfg: ConcurrencyConfig,
    sem: Semaphore,
    aimd: Option<Mutex<Aimd>>,
}

impl ConcurrencyRegulator {
    pub fn new(cfg: ConcurrencyConfig) -> Self {
        let sem = Semaphore::new(cfg.limit);
        let aimd = if cfg.dynamic {
            Some(Mutex::new(Aimd::new(
                cfg.limit as f64,
                AimdConfig {
                    increase: cfg.aimd_increase,
                    decrease: cfg.aimd_decrease,
                    min: 1.0,
                    max: cfg.max_limit as f64,
                },
            )))
        } else {
            None
        };
        Self { cfg, sem, aimd }
    }

    /// Block until a run slot is available.
    pub fn acquire(&self) -> SemaphorePermit {
        self.sem.acquire()
    }

    /// Non-blocking slot acquisition (used by the bypass path).
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        self.sem.try_acquire()
    }

    /// One AIMD control interval: feed the congestion signal and resize.
    /// No-op in fixed mode. Returns the current limit.
    pub fn tick(&self, normalized_load: f64) -> usize {
        if let Some(aimd) = &self.aimd {
            let congested = normalized_load > self.cfg.congestion_load;
            let new_limit = aimd.lock().observe(congested);
            self.sem.resize(new_limit);
            new_limit
        } else {
            self.cfg.limit
        }
    }

    pub fn limit(&self) -> usize {
        self.sem.capacity()
    }

    /// Functions currently holding run slots.
    pub fn running(&self) -> usize {
        self.sem.in_use()
    }

    pub fn is_dynamic(&self) -> bool {
        self.aimd.is_some()
    }

    /// The control interval for the periodic tick task.
    pub fn interval_ms(&self) -> u64 {
        self.cfg.interval_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(limit: usize, dynamic: bool) -> ConcurrencyConfig {
        ConcurrencyConfig {
            limit,
            dynamic,
            congestion_load: 1.0,
            aimd_increase: 1.0,
            aimd_decrease: 0.5,
            interval_ms: 10,
            max_limit: 64,
        }
    }

    #[test]
    fn fixed_mode_enforces_limit() {
        let r = ConcurrencyRegulator::new(cfg(2, false));
        let _a = r.acquire();
        let _b = r.acquire();
        assert!(r.try_acquire().is_none());
        assert_eq!(r.running(), 2);
        assert_eq!(r.tick(10.0), 2, "tick is a no-op in fixed mode");
        assert_eq!(r.limit(), 2);
        assert!(!r.is_dynamic());
    }

    #[test]
    fn dynamic_grows_without_congestion() {
        let r = ConcurrencyRegulator::new(cfg(4, true));
        assert!(r.is_dynamic());
        for _ in 0..3 {
            r.tick(0.2);
        }
        assert_eq!(r.limit(), 7, "additive increase by 1 per clear interval");
    }

    #[test]
    fn dynamic_halves_on_congestion() {
        let r = ConcurrencyRegulator::new(cfg(16, true));
        r.tick(2.0);
        assert_eq!(r.limit(), 8);
        r.tick(2.0);
        assert_eq!(r.limit(), 4);
    }

    #[test]
    fn grown_limit_admits_more_work() {
        let r = ConcurrencyRegulator::new(cfg(1, true));
        let _a = r.acquire();
        assert!(r.try_acquire().is_none());
        r.tick(0.0); // limit 2
        assert!(r.try_acquire().is_some());
    }

    #[test]
    fn capped_at_max_limit() {
        let r = ConcurrencyRegulator::new(cfg(60, true));
        for _ in 0..20 {
            r.tick(0.0);
        }
        assert_eq!(r.limit(), 64);
    }
}
