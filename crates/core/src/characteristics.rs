//! Per-function execution characteristics.
//!
//! §3.1: "Function characteristics such as their cold and warm execution
//! times are captured in various data-structures and are made available
//! using APIs for developing data-driven resource management policies."
//! §4.2 uses the "(moving window) warm time" as the execution estimate for
//! SJF/EEDF, the IAT for RARE, and "new/unseen functions have their times
//! set to 0, to prioritize their execution".

use iluvatar_sync::{MovingWindow, ShardedMap, TimeMs, Welford};
use parking_lot::Mutex;
use std::sync::Arc;

/// Point-in-time summary of one function's history.
#[derive(Debug, Clone, Default)]
pub struct FunctionSummary {
    pub invocations: u64,
    pub cold_starts: u64,
    /// Moving-window mean warm execution time, ms; 0 if never seen.
    pub warm_ms: f64,
    /// Moving-window mean cold execution time, ms; 0 if never seen.
    pub cold_ms: f64,
    /// Mean inter-arrival time, ms; 0 with fewer than two arrivals.
    pub iat_ms: f64,
    /// Coefficient of variation of the IAT (HIST policy input).
    pub iat_cov: f64,
    /// Last arrival timestamp.
    pub last_arrival: TimeMs,
    /// Memory footprint of the function's containers, MB.
    pub memory_mb: u64,
}

struct FuncStats {
    warm: MovingWindow,
    cold: MovingWindow,
    iat: Welford,
    invocations: u64,
    cold_starts: u64,
    last_arrival: Option<TimeMs>,
    memory_mb: u64,
}

impl FuncStats {
    fn new(window: usize) -> Self {
        Self {
            warm: MovingWindow::new(window),
            cold: MovingWindow::new(window),
            iat: Welford::new(),
            invocations: 0,
            cold_starts: 0,
            last_arrival: None,
            memory_mb: 0,
        }
    }
}

/// Thread-safe per-function characteristics store.
pub struct Characteristics {
    stats: ShardedMap<String, Arc<Mutex<FuncStats>>>,
    window: usize,
}

impl Characteristics {
    pub fn new(window: usize) -> Self {
        Self {
            stats: ShardedMap::new(),
            window,
        }
    }

    fn slot(&self, fqdn: &str) -> Arc<Mutex<FuncStats>> {
        if let Some(s) = self.stats.get(fqdn) {
            return s;
        }
        let window = self.window;
        self.stats.update_or_insert(
            fqdn.to_string(),
            || Arc::new(Mutex::new(FuncStats::new(window))),
            |s| Arc::clone(s),
        )
    }

    /// Record an arrival (invoke entry); updates the IAT estimate.
    pub fn on_arrival(&self, fqdn: &str, now: TimeMs) {
        let slot = self.slot(fqdn);
        let mut st = slot.lock();
        if let Some(prev) = st.last_arrival {
            st.iat.push(now.saturating_sub(prev) as f64);
        }
        st.last_arrival = Some(now);
    }

    /// Record a completed execution and its temperature.
    pub fn on_completion(&self, fqdn: &str, exec_ms: u64, cold: bool) {
        let slot = self.slot(fqdn);
        let mut st = slot.lock();
        st.invocations += 1;
        if cold {
            st.cold_starts += 1;
            st.cold.push(exec_ms as f64);
        } else {
            st.warm.push(exec_ms as f64);
        }
    }

    /// Record the memory footprint observed for the function's containers.
    pub fn on_memory(&self, fqdn: &str, memory_mb: u64) {
        let slot = self.slot(fqdn);
        slot.lock().memory_mb = memory_mb;
    }

    /// Expected execution time for queue ordering: the moving-window warm
    /// time when a warm container is expected, the cold time otherwise.
    /// Unseen functions report 0 so they are prioritized (§4.2).
    pub fn expected_exec_ms(&self, fqdn: &str, expect_warm: bool) -> f64 {
        match self.stats.get(fqdn) {
            None => 0.0,
            Some(slot) => {
                let st = slot.lock();
                if expect_warm {
                    if st.warm.is_empty() {
                        // Never ran warm; fall back to cold history.
                        st.cold.mean()
                    } else {
                        st.warm.mean()
                    }
                } else if st.cold.is_empty() {
                    st.warm.mean()
                } else {
                    st.cold.mean()
                }
            }
        }
    }

    /// Mean inter-arrival time; 0 if unknown (new function).
    pub fn mean_iat_ms(&self, fqdn: &str) -> f64 {
        self.stats
            .get(fqdn)
            .map(|s| s.lock().iat.mean())
            .unwrap_or(0.0)
    }

    /// Full summary for one function.
    pub fn summary(&self, fqdn: &str) -> FunctionSummary {
        match self.stats.get(fqdn) {
            None => FunctionSummary::default(),
            Some(slot) => {
                let st = slot.lock();
                FunctionSummary {
                    invocations: st.invocations,
                    cold_starts: st.cold_starts,
                    warm_ms: st.warm.mean(),
                    cold_ms: st.cold.mean(),
                    iat_ms: st.iat.mean(),
                    iat_cov: st.iat.cov(),
                    last_arrival: st.last_arrival.unwrap_or(0),
                    memory_mb: st.memory_mb,
                }
            }
        }
    }

    /// Estimated initialization cost: cold minus warm time. This is the
    /// Greedy-Dual miss cost (and matches the trace adaptation rule
    /// "cold start overhead ≈ maximum − average runtime", §6).
    pub fn init_cost_ms(&self, fqdn: &str) -> f64 {
        let s = self.summary(fqdn);
        (s.cold_ms - s.warm_ms).max(0.0)
    }

    pub fn tracked_functions(&self) -> usize {
        self.stats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_function_reports_zero() {
        let c = Characteristics::new(8);
        assert_eq!(c.expected_exec_ms("ghost-1", true), 0.0);
        assert_eq!(c.mean_iat_ms("ghost-1"), 0.0);
        assert_eq!(c.summary("ghost-1").invocations, 0);
    }

    #[test]
    fn warm_and_cold_tracked_separately() {
        let c = Characteristics::new(8);
        c.on_completion("f-1", 1000, true);
        c.on_completion("f-1", 100, false);
        c.on_completion("f-1", 120, false);
        let s = c.summary("f-1");
        assert_eq!(s.invocations, 3);
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.cold_ms, 1000.0);
        assert_eq!(s.warm_ms, 110.0);
        assert_eq!(c.init_cost_ms("f-1"), 890.0);
    }

    #[test]
    fn expected_exec_prefers_requested_temperature() {
        let c = Characteristics::new(8);
        c.on_completion("f-1", 900, true);
        c.on_completion("f-1", 100, false);
        assert_eq!(c.expected_exec_ms("f-1", true), 100.0);
        assert_eq!(c.expected_exec_ms("f-1", false), 900.0);
    }

    #[test]
    fn expected_exec_falls_back_across_temperature() {
        let c = Characteristics::new(8);
        c.on_completion("onlycold-1", 700, true);
        assert_eq!(c.expected_exec_ms("onlycold-1", true), 700.0);
        c.on_completion("onlywarm-1", 50, false);
        assert_eq!(c.expected_exec_ms("onlywarm-1", false), 50.0);
    }

    #[test]
    fn iat_tracks_arrivals() {
        let c = Characteristics::new(8);
        c.on_arrival("f-1", 1000);
        c.on_arrival("f-1", 1500);
        c.on_arrival("f-1", 2000);
        assert_eq!(c.mean_iat_ms("f-1"), 500.0);
        let s = c.summary("f-1");
        assert_eq!(s.last_arrival, 2000);
        assert_eq!(s.iat_cov, 0.0, "constant IATs have zero CoV");
    }

    #[test]
    fn moving_window_forgets_history() {
        let c = Characteristics::new(2);
        for ms in [100, 200, 300] {
            c.on_completion("f-1", ms, false);
        }
        // Window of 2: mean of 200,300.
        assert_eq!(c.summary("f-1").warm_ms, 250.0);
    }

    #[test]
    fn init_cost_never_negative() {
        let c = Characteristics::new(4);
        c.on_completion("odd-1", 10, true); // cold faster than warm
        c.on_completion("odd-1", 100, false);
        assert_eq!(c.init_cost_ms("odd-1"), 0.0);
    }

    #[test]
    fn memory_recorded() {
        let c = Characteristics::new(4);
        c.on_memory("f-1", 512);
        assert_eq!(c.summary("f-1").memory_mb, 512);
        assert_eq!(c.tracked_functions(), 1);
    }
}
