//! The worker's HTTP API (§3.1).
//!
//! "Clients/users invoke functions using an HTTP or RPC API, with the main
//! operations being `register, invoke, async_invoke, and prewarm`", plus
//! the status endpoint the load balancer polls. The server shares the
//! minimal HTTP substrate with the in-container agent; [`WorkerApiClient`]
//! is the typed client used by remote load balancers and load generators.
//!
//! Routes:
//!
//! | method & path            | body                     | response |
//! |--------------------------|--------------------------|----------|
//! | `POST /register`         | `FunctionSpec` JSON      | `{"fqdn":…}` |
//! | `POST /invoke`           | `{"fqdn":…, "args":…}`   | `InvocationResult` JSON |
//! | `POST /async_invoke`     | `{"fqdn":…, "args":…}`   | `{"cookie":…}` |
//! | `GET  /result/<cookie>`  |                          | result JSON or 404-pending |
//! | `POST /prewarm`          | `{"fqdn":…}`             | `{}` |
//! | `GET  /status`           |                          | `WorkerStatus` JSON |
//! | `GET  /metrics`          |                          | Prometheus text |
//! | `GET  /spans`            |                          | `[SpanExport]` JSON |
//! | `GET  /trace/<id>`       |                          | `TraceRecord` JSON or 404 |
//! | `GET  /traces?last=N`    |                          | `[TraceRecord]` JSON, newest first |
//! | `GET  /breakdown`        |                          | `BreakdownReport` JSON |
//! | `GET  /debug/flightrecorder` |                      | `FlightDump` JSON |
//!
//! Invocation responses (`/invoke`, `/async_invoke`, `/result/<cookie>`)
//! carry the worker's latest canonical-telemetry sequence number in the
//! `X-Iluvatar-Seq` header, so a caller can order its observation against
//! the worker's event stream.

use crate::breakdown::BreakdownReport;
use crate::exposition;
use crate::invocation::{InvocationHandle, InvocationResult, InvokeError};
use crate::journal::TraceRecord;
use crate::spans::SpanExport;
use crate::worker::{Worker, WorkerStatus};
use iluvatar_containers::FunctionSpec;
use iluvatar_http::server::{Handler, ServerHandle};
use iluvatar_http::{
    HttpServer, Method, PooledClient, Request, Response, Status, CACHE_HEADER, SEQ_HEADER,
};
use iluvatar_sync::ShardedMap;
use iluvatar_telemetry::FlightDump;
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

#[derive(Serialize, Deserialize)]
struct InvokeBody {
    fqdn: String,
    #[serde(default)]
    args: String,
    /// Tenant label for admission control; the `X-Iluvatar-Tenant` header
    /// takes precedence when both are present.
    #[serde(default)]
    tenant: Option<String>,
}

#[derive(Serialize, Deserialize)]
struct PrewarmBody {
    fqdn: String,
}

/// Wire form of an invocation result.
#[derive(Debug, Serialize, Deserialize)]
pub struct WireResult {
    pub body: String,
    pub exec_ms: u64,
    pub e2e_ms: u64,
    pub cold: bool,
    pub queue_ms: u64,
    /// End-to-end trace id; redeem via `GET /trace/{id}` on the worker.
    #[serde(default)]
    pub trace_id: u64,
    /// Tenant the invocation was accounted to.
    #[serde(default)]
    pub tenant: Option<String>,
}

impl From<InvocationResult> for WireResult {
    fn from(r: InvocationResult) -> Self {
        Self {
            body: r.body,
            exec_ms: r.exec_ms,
            e2e_ms: r.e2e_ms,
            cold: r.cold,
            queue_ms: r.queue_ms,
            trace_id: r.trace_id,
            tenant: r.tenant,
        }
    }
}

/// Wire form of the worker status.
#[derive(Debug, Serialize, Deserialize)]
pub struct WireStatus {
    pub name: String,
    pub queue_len: usize,
    pub running: usize,
    pub concurrency_limit: usize,
    pub used_mem_mb: u64,
    pub free_mem_mb: u64,
    pub normalized_load: f64,
    pub completed: u64,
    pub dropped: u64,
    #[serde(default)]
    pub failed: u64,
    pub warm_hits: u64,
    pub cold_starts: u64,
    /// Requests served by this worker's API server.
    #[serde(default)]
    pub http_requests: u64,
    /// Retries scheduled after transient backend failures.
    #[serde(default)]
    pub retries: u64,
    /// Agent calls abandoned at the agent timeout.
    #[serde(default)]
    pub agent_timeouts: u64,
    /// Containers quarantined (discarded) after a failed agent hop.
    #[serde(default)]
    pub quarantined: u64,
    /// Invocations failed after the retry budget was exhausted or shed.
    #[serde(default)]
    pub dropped_retry_exhausted: u64,
    /// Invocations rejected by admission control (throttled + shed).
    #[serde(default)]
    pub dropped_admission: u64,
    /// Per-tenant accounting; empty when admission control is disabled.
    #[serde(default)]
    pub tenants: Vec<iluvatar_admission::TenantSnapshot>,
    /// Quarantined containers released back to the pool after their TTL.
    #[serde(default)]
    pub quarantine_released: u64,
    /// Lifecycle state: `running`, `draining`, or `stopped`. Empty when
    /// talking to a pre-lifecycle worker.
    #[serde(default)]
    pub lifecycle: String,
    /// Invocations (queued + running) still to finish before a drain
    /// completes.
    #[serde(default)]
    pub drain_pending: u64,
    /// Queue delay of the most recently dequeued invocation, ms.
    #[serde(default)]
    pub queue_delay_ms: u64,
    /// Result-cache hits served without dispatching (0 when disabled).
    #[serde(default)]
    pub cache_hits: u64,
    /// Result-cache lookups that fell through to dispatch.
    #[serde(default)]
    pub cache_misses: u64,
    /// Result-cache entries evicted under the per-tenant capacity bound.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Total warm-container residency, GB·s.
    #[serde(default)]
    pub warm_gb_s: f64,
    /// Per-function warm residency — the fleet's handoff shopping list.
    #[serde(default)]
    pub warm_residency: Vec<WireWarm>,
    /// The WAL is serving in degraded (non-durable) mode.
    #[serde(default)]
    pub wal_degraded: bool,
    /// Invocations accepted while degraded — results flagged non-durable.
    #[serde(default)]
    pub wal_non_durable: u64,
    /// Appends shed at the WAL stall deadline (503 + Retry-After).
    #[serde(default)]
    pub wal_stall_sheds: u64,
    /// WAL segment rotations (size, error ladder, re-arm).
    #[serde(default)]
    pub wal_rotations: u64,
    /// Corrupt/torn WAL frames quarantined during recovery.
    #[serde(default)]
    pub wal_quarantined: u64,
}

/// One function's warm-pool residency, as reported on `/status`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireWarm {
    pub fqdn: String,
    pub gb_s: f64,
}

impl From<WorkerStatus> for WireStatus {
    fn from(s: WorkerStatus) -> Self {
        Self {
            name: s.name,
            queue_len: s.queue_len,
            running: s.running,
            concurrency_limit: s.concurrency_limit,
            used_mem_mb: s.used_mem_mb,
            free_mem_mb: s.free_mem_mb,
            normalized_load: s.normalized_load,
            completed: s.completed,
            dropped: s.dropped,
            failed: s.failed,
            warm_hits: s.warm_hits,
            cold_starts: s.cold_starts,
            http_requests: 0,
            retries: s.retries,
            agent_timeouts: s.agent_timeouts,
            quarantined: s.quarantined,
            dropped_retry_exhausted: s.dropped_retry_exhausted,
            dropped_admission: s.dropped_admission,
            tenants: Vec::new(),
            quarantine_released: s.quarantine_released,
            lifecycle: s.lifecycle,
            drain_pending: s.drain_pending,
            queue_delay_ms: s.queue_delay_ms,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_evictions: s.cache_evictions,
            // The vendored serde_json writes non-finite floats as null;
            // clamp so the wire form always parses back.
            warm_gb_s: if s.warm_gb_s.is_finite() {
                s.warm_gb_s
            } else {
                0.0
            },
            warm_residency: Vec::new(),
            wal_degraded: s.wal_degraded,
            wal_non_durable: s.wal_non_durable,
            wal_stall_sheds: s.wal_stall_sheds,
            wal_rotations: s.wal_rotations,
            wal_quarantined: s.wal_quarantined,
        }
    }
}

fn json_resp(status: Status, body: String) -> Response {
    Response::new(status)
        .with_header("Content-Type", "application/json")
        .with_body(body)
}

fn error_resp(e: &InvokeError, retry_after_secs: u64) -> Response {
    let status = match e {
        InvokeError::NotRegistered(_) => Status::NOT_FOUND,
        InvokeError::QueueFull | InvokeError::NoResources => Status::TOO_MANY_REQUESTS,
        InvokeError::Backend(_) => Status::INTERNAL_ERROR,
        InvokeError::ShuttingDown => Status::SERVICE_UNAVAILABLE,
        // A stalling or erroring disk is a worker-local condition: 503 +
        // Retry-After (same format as draining) so the LB routes around it.
        InvokeError::WalUnavailable => Status::SERVICE_UNAVAILABLE,
        // Admission rejections are backpressure, like a full queue.
        InvokeError::Throttled(_) | InvokeError::Shed(_) => Status::TOO_MANY_REQUESTS,
    };
    let resp = json_resp(status, format!("{{\"error\":{:?}}}", e.to_string()));
    if status == Status::SERVICE_UNAVAILABLE {
        // Draining/stopped/disk-stall: tell well-behaved clients when to
        // come back.
        resp.with_header("Retry-After", retry_after_secs.to_string())
    } else {
        resp
    }
}

/// The HTTP front-end of one worker.
pub struct WorkerApi {
    server: HttpServer,
}

impl WorkerApi {
    /// Serve `worker` on an ephemeral loopback port.
    pub fn serve(worker: Arc<Worker>) -> std::io::Result<Self> {
        let pending: Arc<ShardedMap<u64, InvocationHandle>> = Arc::new(ShardedMap::new());
        let cookie_seq = Arc::new(AtomicU64::new(1));
        // The handler closure exists before the server it runs in, so the
        // served-request counter arrives through a slot filled after start.
        let own_handle: Arc<OnceLock<ServerHandle>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&own_handle);
        let handler: Handler =
            Arc::new(move |req: Request| route(&worker, &pending, &cookie_seq, &slot, req));
        let server = HttpServer::start(handler)?;
        let _ = own_handle.set(server.handle());
        Ok(Self { server })
    }

    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Requests served by this API server so far.
    pub fn served(&self) -> u64 {
        self.server.handle().served()
    }
}

fn route(
    worker: &Arc<Worker>,
    pending: &Arc<ShardedMap<u64, InvocationHandle>>,
    cookie_seq: &Arc<AtomicU64>,
    own_handle: &Arc<OnceLock<ServerHandle>>,
    req: Request,
) -> Response {
    let body = std::str::from_utf8(&req.body).unwrap_or("");
    // Strip the query string; only /traces uses one.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let served = || own_handle.get().map(|h| h.served()).unwrap_or(0);
    let resp = match (req.method, path) {
        (Method::Get, "/status") => {
            let mut wire: WireStatus = worker.status().into();
            wire.http_requests = served();
            wire.tenants = worker.tenant_stats();
            wire.warm_residency = worker
                .warm_residency()
                .into_iter()
                .map(|(fqdn, gb_s)| WireWarm {
                    fqdn,
                    gb_s: if gb_s.is_finite() { gb_s } else { 0.0 },
                })
                .collect();
            json_resp(Status::OK, serde_json::to_string(&wire).unwrap())
        }
        (Method::Get, "/metrics") => Response::ok(exposition::render_worker(worker, served()))
            .with_header("Content-Type", "text/plain; version=0.0.4"),
        (Method::Get, "/spans") => json_resp(
            Status::OK,
            serde_json::to_string(&worker.spans().export()).unwrap(),
        ),
        (Method::Get, p) if p.starts_with("/trace/") => match p["/trace/".len()..].parse::<u64>() {
            Ok(id) => match worker.trace(id) {
                Some(r) => json_resp(Status::OK, serde_json::to_string(&r).unwrap()),
                None => json_resp(Status::NOT_FOUND, "{\"error\":\"unknown trace\"}".into()),
            },
            Err(_) => json_resp(Status::BAD_REQUEST, "{\"error\":\"bad trace id\"}".into()),
        },
        (Method::Get, "/traces") => {
            let last = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("last="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(20);
            json_resp(
                Status::OK,
                serde_json::to_string(&worker.recent_traces(last)).unwrap(),
            )
        }
        (Method::Get, "/breakdown") => json_resp(
            Status::OK,
            serde_json::to_string(&worker.breakdown()).unwrap(),
        ),
        (Method::Get, "/debug/flightrecorder") => json_resp(
            Status::OK,
            serde_json::to_string(&worker.flight_recorder().wire_dump()).unwrap(),
        ),
        (Method::Post, "/register") => match serde_json::from_str::<FunctionSpec>(body) {
            Ok(spec) => match worker.register(spec) {
                Ok(reg) => json_resp(Status::OK, format!("{{\"fqdn\":{:?}}}", reg.spec.fqdn)),
                Err(e) => json_resp(
                    Status::BAD_REQUEST,
                    format!("{{\"error\":{:?}}}", e.to_string()),
                ),
            },
            Err(e) => json_resp(
                Status::BAD_REQUEST,
                format!("{{\"error\":{:?}}}", e.to_string()),
            ),
        },
        (Method::Post, "/invoke") => match serde_json::from_str::<InvokeBody>(body) {
            Ok(b) => {
                let tenant = req
                    .header(iluvatar_http::TENANT_HEADER)
                    .map(str::to_string)
                    .or(b.tenant);
                match worker.invoke_tenant_cached(&b.fqdn, &b.args, tenant.as_deref()) {
                    Ok((r, cache)) => {
                        let wire: WireResult = r.into();
                        json_resp(Status::OK, serde_json::to_string(&wire).unwrap())
                            .with_header(CACHE_HEADER, cache.as_str())
                    }
                    Err(e) => {
                        error_resp(&e, worker.config().lifecycle.effective_retry_after_secs())
                    }
                }
            }
            Err(e) => json_resp(
                Status::BAD_REQUEST,
                format!("{{\"error\":{:?}}}", e.to_string()),
            ),
        },
        (Method::Post, "/async_invoke") => match serde_json::from_str::<InvokeBody>(body) {
            Ok(b) => {
                let tenant = req
                    .header(iluvatar_http::TENANT_HEADER)
                    .map(str::to_string)
                    .or(b.tenant);
                match worker.async_invoke_tenant(&b.fqdn, &b.args, tenant.as_deref()) {
                    Ok(handle) => {
                        let cookie = cookie_seq.fetch_add(1, Ordering::Relaxed);
                        pending.insert(cookie, handle);
                        json_resp(Status::OK, format!("{{\"cookie\":{cookie}}}"))
                    }
                    Err(e) => {
                        error_resp(&e, worker.config().lifecycle.effective_retry_after_secs())
                    }
                }
            }
            Err(e) => json_resp(
                Status::BAD_REQUEST,
                format!("{{\"error\":{:?}}}", e.to_string()),
            ),
        },
        (Method::Get, path) if path.starts_with("/result/") => {
            match path["/result/".len()..].parse::<u64>() {
                Ok(cookie) => match pending.remove(&cookie) {
                    Some(handle) => match handle.poll() {
                        Some(Ok(r)) => {
                            let wire: WireResult = r.into();
                            json_resp(Status::OK, serde_json::to_string(&wire).unwrap())
                        }
                        Some(Err(e)) => {
                            error_resp(&e, worker.config().lifecycle.effective_retry_after_secs())
                        }
                        None => {
                            // Still in flight: put it back, report pending.
                            pending.insert(cookie, handle);
                            json_resp(Status::NOT_FOUND, "{\"pending\":true}".into())
                        }
                    },
                    None => json_resp(Status::NOT_FOUND, "{\"error\":\"unknown cookie\"}".into()),
                },
                Err(_) => json_resp(Status::BAD_REQUEST, "{\"error\":\"bad cookie\"}".into()),
            }
        }
        (Method::Post, "/drain") => {
            // Idempotent: repeated drains just report current progress.
            worker.drain();
            let s = worker.status();
            json_resp(
                Status::OK,
                format!(
                    "{{\"lifecycle\":{:?},\"drain_pending\":{}}}",
                    s.lifecycle, s.drain_pending
                ),
            )
        }
        (Method::Post, "/prewarm") => match serde_json::from_str::<PrewarmBody>(body) {
            Ok(b) => match worker.prewarm(&b.fqdn) {
                Ok(()) => json_resp(Status::OK, "{}".into()),
                Err(e) => error_resp(&e, worker.config().lifecycle.effective_retry_after_secs()),
            },
            Err(e) => json_resp(
                Status::BAD_REQUEST,
                format!("{{\"error\":{:?}}}", e.to_string()),
            ),
        },
        _ => Response::new(Status::NOT_FOUND),
    };
    // Invocation responses carry the worker's latest canonical-telemetry
    // seqno: "everything this call caused has seq ≤ this".
    if path == "/invoke" || path == "/async_invoke" || path.starts_with("/result/") {
        resp.with_header(SEQ_HEADER, worker.telemetry().latest_seq().to_string())
    } else {
        resp
    }
}

/// Typed client for a remote worker's HTTP API, with pooled connections.
pub struct WorkerApiClient {
    addr: SocketAddr,
    client: PooledClient,
    /// Highest `X-Iluvatar-Seq` seen on any response from this worker.
    last_seq: AtomicU64,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ApiError {
    /// Transport failure.
    Http(String),
    /// Server answered with a non-success status.
    Status(u16, String),
    /// Server answered 503 (draining or stopped), with the parsed
    /// `Retry-After` hint — 0 when the server sent none. Callers routing
    /// around the worker should suppress re-probing until the hint expires.
    Unavailable { retry_after_secs: u64, body: String },
    /// Response body did not parse.
    Decode(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Http(m) => write!(f, "http: {m}"),
            ApiError::Status(c, m) => write!(f, "status {c}: {m}"),
            ApiError::Unavailable {
                retry_after_secs,
                body,
            } => {
                write!(f, "status 503 (retry after {retry_after_secs}s): {body}")
            }
            ApiError::Decode(m) => write!(f, "decode: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl WorkerApiClient {
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            client: PooledClient::new(Duration::from_secs(120)),
            last_seq: AtomicU64::new(0),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The highest telemetry sequence number the worker has reported on
    /// any response so far (via `X-Iluvatar-Seq`); 0 before the first
    /// stamped response.
    pub fn last_telemetry_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Send a raw request to the worker API (escape hatch for routes
    /// without a typed helper and for header-level assertions in tests).
    pub fn call(&self, req: Request) -> Result<Response, ApiError> {
        let resp = self
            .client
            .send(self.addr, &req)
            .map_err(|e| ApiError::Http(e.to_string()))?;
        if let Some(seq) = resp.header(SEQ_HEADER).and_then(|v| v.trim().parse().ok()) {
            self.last_seq.fetch_max(seq, Ordering::Relaxed);
        }
        Ok(resp)
    }

    fn expect_ok(resp: Response) -> Result<Response, ApiError> {
        if resp.status.is_success() {
            Ok(resp)
        } else if resp.status == Status::SERVICE_UNAVAILABLE {
            // Surface the drain hint: the balancer uses it to stop
            // re-probing the worker until the hint expires.
            let retry_after_secs = resp
                .header("Retry-After")
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            Err(ApiError::Unavailable {
                retry_after_secs,
                body: resp.body_str().to_string(),
            })
        } else {
            Err(ApiError::Status(resp.status.0, resp.body_str().to_string()))
        }
    }

    pub fn register(&self, spec: &FunctionSpec) -> Result<(), ApiError> {
        let req = Request::new(Method::Post, "/register")
            .with_body(serde_json::to_vec(spec).map_err(|e| ApiError::Decode(e.to_string()))?);
        Self::expect_ok(self.call(req)?).map(|_| ())
    }

    pub fn invoke(&self, fqdn: &str, args: &str) -> Result<WireResult, ApiError> {
        self.invoke_tenant(fqdn, args, None)
    }

    /// Invoke on behalf of a tenant: the label rides both the body and the
    /// `X-Iluvatar-Tenant` header (so proxies that only forward headers
    /// still attribute correctly).
    pub fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<WireResult, ApiError> {
        let body = serde_json::to_vec(&InvokeBody {
            fqdn: fqdn.into(),
            args: args.into(),
            tenant: tenant.map(str::to_string),
        })
        .map_err(|e| ApiError::Decode(e.to_string()))?;
        let mut req = Request::new(Method::Post, "/invoke").with_body(body);
        if let Some(t) = tenant {
            req = req.with_header(iluvatar_http::TENANT_HEADER, t);
        }
        let resp = Self::expect_ok(self.call(req)?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// Submit without waiting; redeem with [`WorkerApiClient::result`].
    pub fn async_invoke(&self, fqdn: &str, args: &str) -> Result<u64, ApiError> {
        self.async_invoke_tenant(fqdn, args, None)
    }

    /// Tenant-labelled async submission.
    pub fn async_invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<u64, ApiError> {
        let body = serde_json::to_vec(&InvokeBody {
            fqdn: fqdn.into(),
            args: args.into(),
            tenant: tenant.map(str::to_string),
        })
        .map_err(|e| ApiError::Decode(e.to_string()))?;
        let mut req = Request::new(Method::Post, "/async_invoke").with_body(body);
        if let Some(t) = tenant {
            req = req.with_header(iluvatar_http::TENANT_HEADER, t);
        }
        let resp = Self::expect_ok(self.call(req)?)?;
        #[derive(Deserialize)]
        struct Cookie {
            cookie: u64,
        }
        serde_json::from_str::<Cookie>(resp.body_str())
            .map(|c| c.cookie)
            .map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// Poll for an async result; `Ok(None)` while still pending.
    pub fn result(&self, cookie: u64) -> Result<Option<WireResult>, ApiError> {
        let resp = self.call(Request::new(Method::Get, format!("/result/{cookie}")))?;
        if resp.status == Status::NOT_FOUND && resp.body_str().contains("pending") {
            return Ok(None);
        }
        let resp = Self::expect_ok(resp)?;
        serde_json::from_str(resp.body_str())
            .map(Some)
            .map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// Ask the worker to stop accepting work and finish what it has.
    /// Returns the number of invocations still pending at request time.
    pub fn drain(&self) -> Result<u64, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Post, "/drain"))?)?;
        #[derive(Deserialize)]
        struct DrainResp {
            drain_pending: u64,
        }
        serde_json::from_str::<DrainResp>(resp.body_str())
            .map(|d| d.drain_pending)
            .map_err(|e| ApiError::Decode(e.to_string()))
    }

    pub fn prewarm(&self, fqdn: &str) -> Result<(), ApiError> {
        let body = serde_json::to_vec(&PrewarmBody { fqdn: fqdn.into() })
            .map_err(|e| ApiError::Decode(e.to_string()))?;
        Self::expect_ok(self.call(Request::new(Method::Post, "/prewarm").with_body(body))?)
            .map(|_| ())
    }

    pub fn status(&self) -> Result<WireStatus, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Get, "/status"))?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// The worker's Prometheus `/metrics` payload, verbatim.
    pub fn metrics_text(&self) -> Result<String, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Get, "/metrics"))?)?;
        Ok(resp.body_str().to_string())
    }

    /// Span distributions for cluster aggregation.
    pub fn spans(&self) -> Result<Vec<SpanExport>, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Get, "/spans"))?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// One invocation's trace timeline; `Ok(None)` if it aged out.
    pub fn trace(&self, id: u64) -> Result<Option<TraceRecord>, ApiError> {
        let resp = self.call(Request::new(Method::Get, format!("/trace/{id}")))?;
        if resp.status == Status::NOT_FOUND {
            return Ok(None);
        }
        let resp = Self::expect_ok(resp)?;
        serde_json::from_str(resp.body_str())
            .map(Some)
            .map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// The `last` most recent traces, newest first.
    pub fn traces(&self, last: usize) -> Result<Vec<TraceRecord>, ApiError> {
        let resp =
            Self::expect_ok(self.call(Request::new(Method::Get, format!("/traces?last={last}")))?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// The worker's critical-path breakdown report.
    pub fn breakdown(&self) -> Result<BreakdownReport, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Get, "/breakdown"))?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }

    /// The worker's flight-recorder dump (recent events + frozen snapshots).
    pub fn flight_recorder(&self) -> Result<FlightDump, ApiError> {
        let resp = Self::expect_ok(self.call(Request::new(Method::Get, "/debug/flightrecorder"))?)?;
        serde_json::from_str(resp.body_str()).map_err(|e| ApiError::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkerConfig;
    use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    use iluvatar_sync::SystemClock;

    fn served_worker() -> (Arc<Worker>, WorkerApi, WorkerApiClient) {
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let worker = Arc::new(Worker::new(WorkerConfig::for_testing(), backend, clock));
        let api = WorkerApi::serve(Arc::clone(&worker)).unwrap();
        let client = WorkerApiClient::new(api.addr());
        (worker, api, client)
    }

    #[test]
    fn register_invoke_over_http() {
        let (_w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let r = client.invoke("f-1", "{}").unwrap();
        assert!(r.cold);
        let r2 = client.invoke("f-1", "{}").unwrap();
        assert!(!r2.cold);
        assert!(r2.exec_ms > 0);
    }

    #[test]
    fn invoke_unregistered_is_404() {
        let (_w, _api, client) = served_worker();
        match client.invoke("ghost-1", "{}") {
            Err(ApiError::Status(404, _)) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn async_invoke_and_poll() {
        let (_w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("slow", "1").with_timing(500, 0))
            .unwrap();
        let cookie = client.async_invoke("slow-1", "{}").unwrap();
        // Poll until done.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.result(cookie).unwrap() {
                Some(r) => {
                    assert!(r.exec_ms >= 5);
                    break;
                }
                None => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // The cookie is consumed.
        match client.result(cookie) {
            Err(ApiError::Status(404, _)) => {}
            other => panic!("consumed cookie should 404, got {other:?}"),
        }
    }

    #[test]
    fn prewarm_and_status_over_http() {
        let (_w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("p", "1").with_timing(50, 1000))
            .unwrap();
        client.prewarm("p-1").unwrap();
        let r = client.invoke("p-1", "{}").unwrap();
        assert!(!r.cold, "prewarmed over HTTP");
        let st = client.status().unwrap();
        assert_eq!(st.name, "test-worker");
        assert_eq!(st.completed, 1);
        assert!(st.used_mem_mb > 0);
    }

    #[test]
    fn bad_register_body_is_400() {
        let (_w, _api, client) = served_worker();
        let resp = client
            .call(Request::new(Method::Post, "/register").with_body(&b"not json"[..]))
            .unwrap();
        assert_eq!(resp.status.0, 400);
    }

    #[test]
    fn unknown_route_is_404() {
        let (_w, _api, client) = served_worker();
        let resp = client.call(Request::new(Method::Get, "/nope")).unwrap();
        assert_eq!(resp.status.0, 404);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (_w, api, client) = served_worker();
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        client.invoke("f-1", "{}").unwrap();
        let text = client.metrics_text().unwrap();
        assert!(
            text.contains("# TYPE iluvatar_queue_depth gauge"),
            "text:\n{text}"
        );
        assert!(text.contains("iluvatar_invocations_completed_total{worker=\"test-worker\"} 1"));
        assert!(
            text.contains("iluvatar_span_seconds_bucket"),
            "span histograms exported"
        );
        // The served counter is live: /register + /invoke + this scrape.
        assert!(
            text.contains("iluvatar_http_requests_total"),
            "text:\n{text}"
        );
        assert!(api.served() >= 3);
        let st = client.status().unwrap();
        assert!(st.http_requests >= 3, "status carries the served count");
        assert_eq!(st.failed, 0);
    }

    #[test]
    fn trace_endpoints_roundtrip() {
        let (_w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let r = client.invoke("f-1", "{}").unwrap();
        assert_ne!(r.trace_id, 0, "results carry their trace id");
        // `result_returned` lands just after the result is delivered; poll.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let tr = loop {
            let tr = client.trace(r.trace_id).unwrap().expect("trace journaled");
            if tr.completed() || std::time::Instant::now() > deadline {
                break tr;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(tr.trace_id, r.trace_id);
        assert_eq!(tr.fqdn, "f-1");
        assert_eq!(tr.cold(), Some(true));
        assert!(tr.completed());
        // Unknown ids are a clean None, bad ids a 400.
        assert!(client.trace(u64::MAX).unwrap().is_none());
        let resp = client
            .call(Request::new(Method::Get, "/trace/xyz"))
            .unwrap();
        assert_eq!(resp.status.0, 400);
        // /traces lists newest-first and honors last=N.
        client.invoke("f-1", "{}").unwrap();
        let recent = client.traces(1).unwrap();
        assert_eq!(recent.len(), 1);
        assert!(recent[0].trace_id > r.trace_id);
    }

    #[test]
    fn tenant_label_and_429_over_http() {
        use iluvatar_admission::{AdmissionConfig, TenantSpec};
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let mut cfg = WorkerConfig::for_testing();
        cfg.admission =
            AdmissionConfig::enabled_with(vec![TenantSpec::new("free").with_rate(0.001, 1.0)]);
        let worker = Arc::new(Worker::new(cfg, backend, clock));
        let api = WorkerApi::serve(Arc::clone(&worker)).unwrap();
        let client = WorkerApiClient::new(api.addr());
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        let r = client.invoke_tenant("f-1", "{}", Some("free")).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("free"));
        match client.invoke_tenant("f-1", "{}", Some("free")) {
            Err(ApiError::Status(429, body)) => assert!(body.contains("throttled"), "{body}"),
            other => panic!("expected 429, got {other:?}"),
        }
        // The header alone is enough — no body field needed.
        let body = serde_json::to_vec(&InvokeBody {
            fqdn: "f-1".into(),
            args: String::new(),
            tenant: None,
        })
        .unwrap();
        let req = Request::new(Method::Post, "/invoke")
            .with_body(body)
            .with_header(iluvatar_http::TENANT_HEADER, "paid");
        let resp = client.call(req).unwrap();
        assert_eq!(resp.status.0, 200);
        let wire: WireResult = serde_json::from_str(resp.body_str()).unwrap();
        assert_eq!(wire.tenant.as_deref(), Some("paid"));
        // Status carries the per-tenant rollup and the drop counter.
        let st = client.status().unwrap();
        assert_eq!(st.dropped_admission, 1);
        let free = st.tenants.iter().find(|t| t.tenant == "free").unwrap();
        assert_eq!(free.throttled, 1);
        assert!(st
            .tenants
            .iter()
            .any(|t| t.tenant == "paid" && t.served == 1));
    }

    #[test]
    fn breakdown_and_flightrecorder_over_http() {
        let (w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        assert_eq!(client.last_telemetry_seq(), 0, "no stamped response yet");
        client.invoke("f-1", "{}").unwrap();
        client.invoke("f-1", "{}").unwrap();
        assert!(
            client.last_telemetry_seq() > 0,
            "/invoke responses carry X-Iluvatar-Seq"
        );
        // `result_returned` lands just after the result is delivered; poll
        // until both invocations are in the breakdown.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let bd = loop {
            let bd = client.breakdown().unwrap();
            if bd.invocations >= 2 || std::time::Instant::now() > deadline {
                break bd;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(bd.source, "test-worker");
        assert_eq!((bd.cold, bd.warm), (1, 1));
        let e2e = bd.stage(crate::breakdown::stages::E2E).unwrap();
        assert_eq!(e2e.count, 2);
        let ops = bd.group("Container Operations").unwrap();
        assert!(ops.count > 0, "span groups populated");
        // Drain freezes a flight-recorder snapshot; the dump carries it
        // along with the recent-event ring.
        w.drain();
        let dump = client.flight_recorder().unwrap();
        assert!(!dump.events.is_empty(), "ring holds recent events");
        assert!(
            dump.snapshots.iter().any(|s| s.reason == "drain"),
            "drain froze a snapshot"
        );
        assert!(dump
            .events
            .iter()
            .any(|e| e.kind.label() == "lifecycle:draining"));
    }

    #[test]
    fn spans_endpoint_returns_distributions() {
        let (_w, _api, client) = served_worker();
        client
            .register(&FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        client.invoke("f-1", "{}").unwrap();
        let spans = client.spans().unwrap();
        assert!(!spans.is_empty());
        let call = spans.iter().find(|s| s.name == "call_container").unwrap();
        assert_eq!(call.count, 1);
        assert_eq!(call.hist.count(), 1);
    }
}
