//! Worker configuration.
//!
//! §5: "Workers are configured with a json file on startup, with the various
//! policy options (such as queuing), keep-alive, timeouts, networking,
//! logging, etc." Every knob used by an experiment lives here so runs are
//! reproducible from a single serialized config.

use iluvatar_admission::AdmissionConfig;
use iluvatar_cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Which keep-alive eviction policy the container pool runs (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepalivePolicyKind {
    /// OpenWhisk-style fixed TTL; evicts in LRU order under pressure.
    Ttl,
    /// Least-recently-used.
    Lru,
    /// Least-frequently-used (the paper's FREQ variant).
    Lfu,
    /// Greedy-Dual-Size-Frequency (the paper's GD policy).
    Gdsf,
    /// Landlord (the paper's LND variant, GD without frequency).
    Landlord,
    /// Histogram keep-alive of Shahrad et al. (the paper's HIST baseline).
    Hist,
}

impl KeepalivePolicyKind {
    pub fn name(&self) -> &'static str {
        match self {
            KeepalivePolicyKind::Ttl => "TTL",
            KeepalivePolicyKind::Lru => "LRU",
            KeepalivePolicyKind::Lfu => "FREQ",
            KeepalivePolicyKind::Gdsf => "GD",
            KeepalivePolicyKind::Landlord => "LND",
            KeepalivePolicyKind::Hist => "HIST",
        }
    }

    /// All policies, in the order the paper's figures plot them.
    pub fn all() -> [KeepalivePolicyKind; 6] {
        [
            KeepalivePolicyKind::Ttl,
            KeepalivePolicyKind::Gdsf,
            KeepalivePolicyKind::Lru,
            KeepalivePolicyKind::Lfu,
            KeepalivePolicyKind::Landlord,
            KeepalivePolicyKind::Hist,
        ]
    }
}

/// Queue discipline (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicyKind {
    /// Arrival order.
    Fcfs,
    /// Shortest job first on the (moving-window) expected execution time.
    Sjf,
    /// Earliest effective deadline first: arrival + expected execution.
    Eedf,
    /// Prioritize the most unexpected functions (highest IAT).
    Rare,
    /// Deficit-weighted round robin across per-tenant sub-queues (the
    /// multi-tenant fair queue; not one of the paper's four heap
    /// disciplines, so excluded from [`QueuePolicyKind::all`]).
    Drr,
}

impl QueuePolicyKind {
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicyKind::Fcfs => "FCFS",
            QueuePolicyKind::Sjf => "SJF",
            QueuePolicyKind::Eedf => "EEDF",
            QueuePolicyKind::Rare => "RARE",
            QueuePolicyKind::Drr => "DRR",
        }
    }

    /// The paper's four single-queue heap disciplines (§4.2); DRR is a
    /// separate multi-queue structure and is not enumerated here.
    pub fn all() -> [QueuePolicyKind; 4] {
        [
            QueuePolicyKind::Fcfs,
            QueuePolicyKind::Sjf,
            QueuePolicyKind::Eedf,
            QueuePolicyKind::Rare,
        ]
    }
}

/// Concurrency regulator configuration (§4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencyConfig {
    /// Initial (and, in fixed mode, permanent) concurrency limit.
    pub limit: usize,
    /// Enable the TCP-like AIMD dynamic limit.
    pub dynamic: bool,
    /// Congestion threshold on normalized load (running / cores).
    pub congestion_load: f64,
    /// AIMD additive increase per control interval.
    pub aimd_increase: f64,
    /// AIMD multiplicative decrease on congestion.
    pub aimd_decrease: f64,
    /// Control interval, ms.
    pub interval_ms: u64,
    /// Hard cap for the dynamic limit.
    pub max_limit: usize,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        Self {
            limit: 48,
            dynamic: false,
            congestion_load: 1.0,
            aimd_increase: 1.0,
            aimd_decrease: 0.5,
            interval_ms: 500,
            max_limit: 512,
        }
    }
}

/// Invocation queue configuration (§4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueConfig {
    pub policy: QueuePolicyKind,
    /// Functions with expected warm time below this bypass the queue when
    /// the system is under `bypass_load_limit` (§4.1, "queue bypass").
    pub bypass_threshold_ms: u64,
    /// Normalized load above which bypass is disabled.
    pub bypass_load_limit: f64,
    /// Bound on queued invocations; beyond it, invokes are rejected
    /// (explicit backpressure, §4).
    pub max_len: usize,
    /// Concurrent cold-start ("herd") suppression, §4: when a warm miss
    /// happens while another invocation of the same function is running,
    /// wait up to this long for its container to free up before paying a
    /// concurrent cold start. 0 disables.
    pub herd_wait_ms: u64,
    /// DRR quantum: cost credit (expected-exec milliseconds) granted to a
    /// tenant per scheduling round, scaled by its weight. 0 (the serde
    /// default for older configs) means the built-in default of 50 ms.
    #[serde(default)]
    pub drr_quantum_ms: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            policy: QueuePolicyKind::Eedf,
            bypass_threshold_ms: 0, // disabled unless configured
            bypass_load_limit: 0.8,
            max_len: 16 * 1024,
            herd_wait_ms: 0,
            drr_quantum_ms: 0,
        }
    }
}

/// Retry/timeout hardening around the agent hop. All knobs default to
/// disabled so the baseline hot path is untouched; chaos/e2e configurations
/// turn them on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Retries after a transient (backend) failure; 0 disables retrying.
    pub max_retries: u32,
    /// Backoff: delay before the first retry, ms.
    pub backoff_base_ms: u64,
    /// Backoff: upper bound on any single delay, ms.
    pub backoff_cap_ms: u64,
    /// Backoff: jitter fraction in `[0, 1]` (deterministic per trace id).
    pub backoff_jitter: f64,
    /// Per-invocation deadline from arrival, ms: retries never extend past
    /// it. 0 disables the deadline.
    pub invoke_deadline_ms: u64,
    /// Agent-call timeout, ms: a call exceeding it is abandoned and the
    /// container quarantined. 0 calls inline with no timeout.
    pub agent_timeout_ms: u64,
    /// Shed fraction: when invocations currently in retry-wait exceed this
    /// fraction of the concurrency limit, further failures fail fast
    /// instead of retrying (queue-level degrade under fault storms).
    pub retry_saturation: f64,
    /// How long a quarantined container is held before being released back
    /// to the pool for another chance, ms. 0 (the default, and the serde
    /// default for older configs) destroys quarantined containers
    /// immediately — the pre-TTL behavior.
    #[serde(default)]
    pub quarantine_ttl_ms: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            backoff_jitter: 0.5,
            invoke_deadline_ms: 0,
            agent_timeout_ms: 0,
            retry_saturation: 0.5,
            quarantine_ttl_ms: 0,
        }
    }
}

/// Crash-safety / lifecycle configuration. Defaults to fully disabled (no
/// write-ahead log, no recovery) so the baseline hot path is untouched.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Path of the queue write-ahead log. `None` disables WAL journaling
    /// (and with it snapshotting and recovery).
    #[serde(default)]
    pub wal_path: Option<String>,
    /// Append a compacted snapshot after this many WAL records. 0 selects
    /// the built-in default of 64.
    #[serde(default)]
    pub snapshot_every: u64,
    /// `Retry-After` seconds advertised on 503s while draining or stopped.
    /// 0 selects the built-in default of 1.
    #[serde(default)]
    pub drain_retry_after_secs: u64,
    /// Durability / fault-handling knobs for the WAL itself.
    #[serde(default)]
    pub wal: WalConfig,
}

/// WAL durability and fault-handling knobs. Defaults reproduce the
/// historical behavior: no fsync, reject on exhausted I/O ladder, no
/// append deadline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WalConfig {
    /// Fsync policy: `"never"`, `"group"` (amortized group commit every
    /// `group_ms`), or `"always"` (fsync per record).
    #[serde(default)]
    pub fsync: String,
    /// Group-commit flush interval, ms, when `fsync = "group"`. 0 selects
    /// the built-in default of 2.
    #[serde(default)]
    pub group_ms: u64,
    /// What to do when the write ladder (retry → rotate) is exhausted:
    /// `"reject"` sheds that append with 503, `"degrade"` keeps serving
    /// with results flagged non-durable and periodically re-arms.
    #[serde(default)]
    pub on_error: String,
    /// Shed an append with 503 + Retry-After when WAL I/O has been stuck
    /// for this long, ms. 0 disables the deadline.
    #[serde(default)]
    pub append_deadline_ms: u64,
    /// Write retries before rotating to a fresh segment.
    #[serde(default)]
    pub retry_limit: u32,
    /// Base backoff between write retries, ms (linear: `base * attempt`).
    #[serde(default)]
    pub retry_backoff_ms: u64,
    /// Rotate to a new segment once the current one exceeds this size.
    /// 0 selects the built-in default of 4 MiB.
    #[serde(default)]
    pub segment_bytes: u64,
    /// While degraded, attempt re-arming after this long, ms. 0 selects
    /// the built-in default of 250.
    #[serde(default)]
    pub rearm_after_ms: u64,
}

impl LifecycleConfig {
    /// Enable the WAL at `path` with default cadence.
    pub fn with_wal(path: &str) -> Self {
        Self {
            wal_path: Some(path.to_string()),
            ..Default::default()
        }
    }

    pub fn effective_snapshot_every(&self) -> u64 {
        if self.snapshot_every == 0 {
            64
        } else {
            self.snapshot_every
        }
    }

    pub fn effective_retry_after_secs(&self) -> u64 {
        if self.drain_retry_after_secs == 0 {
            1
        } else {
            self.drain_retry_after_secs
        }
    }

    /// Resolve the serde-level [`WalConfig`] strings into the WAL's typed
    /// options. Unrecognized strings fall back to the historical defaults
    /// (`fsync = never`, `on_error = reject`).
    pub fn wal_options(&self) -> crate::wal::WalOptions {
        use crate::wal::{FsyncPolicy, WalOnError, WalOptions};
        let d = WalOptions::default();
        let w = &self.wal;
        WalOptions {
            snapshot_every: self.effective_snapshot_every(),
            fsync: match w.fsync.as_str() {
                "always" => FsyncPolicy::Always,
                "group" => FsyncPolicy::Group {
                    interval_ms: if w.group_ms == 0 { 2 } else { w.group_ms },
                },
                _ => FsyncPolicy::Never,
            },
            on_error: if w.on_error == "degrade" {
                WalOnError::Degrade
            } else {
                WalOnError::Reject
            },
            append_deadline_ms: w.append_deadline_ms,
            retry_limit: if w.retry_limit == 0 {
                d.retry_limit
            } else {
                w.retry_limit
            },
            retry_backoff_ms: if w.retry_backoff_ms == 0 {
                d.retry_backoff_ms
            } else {
                w.retry_backoff_ms
            },
            segment_bytes: if w.segment_bytes == 0 {
                d.segment_bytes
            } else {
                w.segment_bytes
            },
            rearm_after_ms: if w.rearm_after_ms == 0 {
                d.rearm_after_ms
            } else {
                w.rearm_after_ms
            },
        }
    }
}

/// Top-level worker configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Worker name (cluster identity).
    pub name: String,
    /// CPU cores available to functions; load is normalized over this.
    pub cores: usize,
    /// Keep-alive cache capacity in MB — the container pool's memory.
    pub memory_mb: u64,
    /// Free-memory buffer kept ahead of demand by background eviction
    /// ("we maintain a minimum free-memory buffer for dealing with
    /// invocation bursts", §3.3).
    pub free_buffer_mb: u64,
    /// Background eviction sweep period, ms.
    pub eviction_period_ms: u64,
    pub keepalive: KeepalivePolicyKind,
    /// TTL for the Ttl policy, ms (default: the classic 10 minutes).
    pub ttl_ms: u64,
    pub queue: QueueConfig,
    pub concurrency: ConcurrencyConfig,
    /// Predictive prewarming horizon, ms: when the keep-alive policy (HIST)
    /// anticipates an invocation within this window and no warm container
    /// exists, the worker prewarms one (§3.2). 0 disables.
    pub prewarm_horizon_ms: u64,
    /// Pre-created network namespaces to keep pooled.
    pub netns_pool: usize,
    /// Moving-window length for per-function characteristics.
    pub char_window: usize,
    /// Retry/timeout hardening; defaults to fully disabled so configs
    /// written before this field existed still parse.
    #[serde(default)]
    pub resilience: ResilienceConfig,
    /// Multi-tenant admission control; defaults to fully disabled so the
    /// baseline hot path (and Table-1 spans) are unchanged.
    #[serde(default)]
    pub admission: AdmissionConfig,
    /// Crash-safe lifecycle (queue WAL, snapshots, drain); defaults to
    /// fully disabled so configs written before this field existed parse.
    #[serde(default)]
    pub lifecycle: LifecycleConfig,
    /// Invocation result cache (worker-side consult/fill for idempotent
    /// functions); defaults to fully disabled so the baseline hot path is
    /// untouched.
    #[serde(default)]
    pub cache: CacheConfig,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            name: "worker-0".into(),
            cores: 48,
            memory_mb: 32 * 1024,
            free_buffer_mb: 1024,
            eviction_period_ms: 500,
            keepalive: KeepalivePolicyKind::Gdsf,
            ttl_ms: 10 * 60 * 1000,
            queue: QueueConfig::default(),
            concurrency: ConcurrencyConfig::default(),
            prewarm_horizon_ms: 0,
            netns_pool: 16,
            char_window: 32,
            resilience: ResilienceConfig::default(),
            admission: AdmissionConfig::default(),
            lifecycle: LifecycleConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

impl WorkerConfig {
    /// Parse from the JSON format the deployment tooling writes.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// A small config for unit tests: tiny timers, 4 cores, 1 GB.
    pub fn for_testing() -> Self {
        Self {
            name: "test-worker".into(),
            cores: 4,
            memory_mb: 1024,
            free_buffer_mb: 64,
            eviction_period_ms: 20,
            concurrency: ConcurrencyConfig {
                limit: 8,
                ..Default::default()
            },
            netns_pool: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = WorkerConfig::default();
        assert!(c.cores > 0 && c.memory_mb > 0);
        assert!(c.free_buffer_mb < c.memory_mb);
        assert_eq!(c.keepalive.name(), "GD");
    }

    #[test]
    fn json_roundtrip() {
        let c = WorkerConfig::for_testing();
        let json = c.to_json();
        let back = WorkerConfig::from_json(&json).unwrap();
        assert_eq!(back.name, "test-worker");
        assert_eq!(back.cores, 4);
        assert_eq!(back.keepalive, c.keepalive);
    }

    #[test]
    fn bad_json_rejected() {
        assert!(WorkerConfig::from_json("{\"name\": 42}").is_err());
    }

    #[test]
    fn policy_names_match_paper_labels() {
        use KeepalivePolicyKind::*;
        assert_eq!(Gdsf.name(), "GD");
        assert_eq!(Landlord.name(), "LND");
        assert_eq!(Lfu.name(), "FREQ");
        assert_eq!(Hist.name(), "HIST");
        assert_eq!(KeepalivePolicyKind::all().len(), 6);
        assert_eq!(QueuePolicyKind::all().len(), 4);
        assert_eq!(QueuePolicyKind::Drr.name(), "DRR");
        assert!(
            !QueuePolicyKind::all().contains(&QueuePolicyKind::Drr),
            "DRR is a multi-queue structure, not a heap discipline"
        );
    }

    #[test]
    fn admission_defaults_off_and_old_configs_parse() {
        let c = WorkerConfig::default();
        assert!(!c.admission.enabled, "admission must be opt-in");
        assert_eq!(c.queue.drr_quantum_ms, 0, "0 = use built-in quantum");
        // A queue config serialized before the DRR field existed still
        // parses (serde default), keeping old experiment configs stable.
        let old = r#"{"policy":"Fcfs","bypass_threshold_ms":0,
                      "bypass_load_limit":0.8,"max_len":64,"herd_wait_ms":0}"#;
        let q: QueueConfig = serde_json::from_str(old).expect("pre-DRR config parses");
        assert_eq!(q.drr_quantum_ms, 0);
        // And the full config roundtrips with admission enabled.
        let mut c = WorkerConfig::for_testing();
        c.admission.enabled = true;
        c.queue.policy = QueuePolicyKind::Drr;
        let back = WorkerConfig::from_json(&c.to_json()).unwrap();
        assert!(back.admission.enabled);
        assert_eq!(back.queue.policy, QueuePolicyKind::Drr);
    }

    #[test]
    fn partial_json_uses_no_defaults() {
        // Config requires all fields — experiments must be explicit.
        assert!(WorkerConfig::from_json("{\"name\":\"w\"}").is_err());
    }
}
