//! Per-invocation critical-path breakdown.
//!
//! §5's "single consistent view of the system performance", turned into a
//! queryable report: where did each invocation's time go on the path
//! ingest → queue → container-acquire → agent → return? The report is
//! derived from two streams the worker already maintains —
//!
//! * the [`TraceJournal`](crate::TraceJournal): per-invocation milestone
//!   timestamps, which yield the *stage* histograms (queue wait, container
//!   acquisition, agent round-trip) plus the cold/warm split, and
//! * the [`Spans`](crate::Spans) registry: per-component µs timings,
//!   folded into the paper's Table 1 *groups* ("Ingestion & Queuing",
//!   "Container Operations", "Agent Communication", "Returning").
//!
//! Everything is carried in mergeable [`LogHistogram`]s, so the load
//! balancer can fetch each worker's `GET /breakdown` and fold them into
//! one cluster-wide report with exact (lossless) bucket merges — the same
//! trick the span scrape path uses. The `abl_overhead_budget` gate
//! computes its p50/p99 per-group overhead from this report.

use crate::journal::{TraceEventKind, TraceRecord};
use crate::spans::{names, SpanExport};
use iluvatar_sync::LogHistogram;
use serde::{Deserialize, Serialize};

/// The critical-path stages derived from trace milestones, in path order.
pub mod stages {
    /// Ingest until the queue accepted (or bypassed) the invocation —
    /// admission control and enqueue bookkeeping.
    pub const INGEST: &str = "ingest";
    /// Queue residency: enqueued until the dispatch loop popped it.
    pub const QUEUE: &str = "queue";
    /// Dequeue until a container was locked (cold creates included).
    pub const ACQUIRE: &str = "acquire";
    /// Container locked until the agent call went out.
    pub const PREPARE: &str = "prepare";
    /// Agent call until the result was delivered back to the caller.
    pub const AGENT_RETURN: &str = "agent_return";
    /// Ingest until result delivery — the whole critical path.
    pub const E2E: &str = "e2e";

    pub const ALL: &[&str] = &[INGEST, QUEUE, ACQUIRE, PREPARE, AGENT_RETURN, E2E];
}

/// One stage's latency distribution (ms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageBreakdown {
    pub stage: String,
    pub count: u64,
    /// Distribution of stage durations, milliseconds.
    pub hist_ms: LogHistogram,
}

/// One Table-1 group's latency distribution (µs, from spans).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupBreakdown {
    pub group: String,
    pub count: u64,
    /// Distribution of per-component durations, microseconds.
    pub hist_us: LogHistogram,
}

/// Per-tenant completion counts riding along the breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantBreakdown {
    pub tenant: String,
    pub completed: u64,
}

/// Wire form of `GET /breakdown` — per-worker, or cluster-merged by the
/// load balancer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownReport {
    /// Emitting worker name, or `cluster` for a merged report.
    pub source: String,
    /// Completed invocations the stage histograms cover.
    pub invocations: u64,
    pub cold: u64,
    pub warm: u64,
    /// Critical-path stage distributions (ms), in path order.
    pub stages: Vec<StageBreakdown>,
    /// Table-1 group distributions (µs), in table order.
    pub groups: Vec<GroupBreakdown>,
    /// Per-tenant completion counts, sorted by tenant.
    #[serde(default)]
    pub tenants: Vec<TenantBreakdown>,
}

impl BreakdownReport {
    /// Stage distribution by name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageBreakdown> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Group distribution by name, if present.
    pub fn group(&self, name: &str) -> Option<&GroupBreakdown> {
        self.groups.iter().find(|g| g.group == name)
    }

    /// Merge many per-worker reports into one cluster view. Histogram
    /// merges are lossless; counts sum; tenants union by label.
    pub fn merge(reports: &[BreakdownReport]) -> BreakdownReport {
        let mut out = BreakdownReport {
            source: "cluster".into(),
            invocations: 0,
            cold: 0,
            warm: 0,
            stages: Vec::new(),
            groups: Vec::new(),
            tenants: Vec::new(),
        };
        for r in reports {
            out.invocations += r.invocations;
            out.cold += r.cold;
            out.warm += r.warm;
            for s in &r.stages {
                match out.stages.iter_mut().find(|m| m.stage == s.stage) {
                    Some(m) => {
                        m.count += s.count;
                        m.hist_ms.merge(&s.hist_ms);
                    }
                    None => out.stages.push(s.clone()),
                }
            }
            for g in &r.groups {
                match out.groups.iter_mut().find(|m| m.group == g.group) {
                    Some(m) => {
                        m.count += g.count;
                        m.hist_us.merge(&g.hist_us);
                    }
                    None => out.groups.push(g.clone()),
                }
            }
            for t in &r.tenants {
                match out.tenants.iter_mut().find(|m| m.tenant == t.tenant) {
                    Some(m) => m.completed += t.completed,
                    None => out.tenants.push(t.clone()),
                }
            }
        }
        out.tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

/// Milestone timestamps of one completed trace, if the record contains a
/// full critical path.
struct Milestones {
    ingest: u64,
    queued: u64,
    dequeued: u64,
    acquired: u64,
    agent: u64,
    returned: u64,
    cold: bool,
}

fn milestones(r: &TraceRecord) -> Option<Milestones> {
    let mut queued = None;
    let mut dequeued = None;
    let mut acquired = None;
    let mut cold = None;
    let mut agent = None;
    let mut returned = None;
    for e in &r.events {
        match e.kind {
            TraceEventKind::Enqueued | TraceEventKind::Recovered => {
                queued.get_or_insert(e.at_ms);
            }
            // Bypass skips the queue: it is both "queued" and "dequeued"
            // at the same instant, yielding a zero queue stage.
            TraceEventKind::Bypassed => {
                queued.get_or_insert(e.at_ms);
                dequeued.get_or_insert(e.at_ms);
            }
            TraceEventKind::Dequeued => {
                dequeued.get_or_insert(e.at_ms);
            }
            // Keep the *last* acquisition/agent call: retries restart the
            // path, and the completed attempt is the one that mattered.
            TraceEventKind::ContainerAcquired { cold: c } => {
                acquired = Some(e.at_ms);
                cold = Some(cold.unwrap_or(false) | c);
            }
            TraceEventKind::AgentCalled => agent = Some(e.at_ms),
            TraceEventKind::ResultReturned { .. } => {
                returned.get_or_insert(e.at_ms);
            }
            _ => {}
        }
    }
    Some(Milestones {
        ingest: r.ingest_ms,
        queued: queued?,
        dequeued: dequeued?,
        acquired: acquired?,
        agent: agent?,
        returned: returned?,
        cold: cold.unwrap_or(false),
    })
}

/// Derive the stage histograms (and cold/warm split) from a set of trace
/// records; incomplete timelines are skipped.
pub fn stages_from_traces(records: &[TraceRecord]) -> (Vec<StageBreakdown>, u64, u64) {
    let mut hists: Vec<(&str, LogHistogram)> = stages::ALL
        .iter()
        .map(|&s| (s, LogHistogram::new()))
        .collect();
    let mut cold = 0u64;
    let mut warm = 0u64;
    let mut covered = 0u64;
    for r in records {
        let Some(m) = milestones(r) else { continue };
        covered += 1;
        if m.cold {
            cold += 1;
        } else {
            warm += 1;
        }
        let durations = [
            (stages::INGEST, m.queued.saturating_sub(m.ingest)),
            (stages::QUEUE, m.dequeued.saturating_sub(m.queued)),
            (stages::ACQUIRE, m.acquired.saturating_sub(m.dequeued)),
            (stages::PREPARE, m.agent.saturating_sub(m.acquired)),
            (stages::AGENT_RETURN, m.returned.saturating_sub(m.agent)),
            (stages::E2E, m.returned.saturating_sub(m.ingest)),
        ];
        for (name, ms) in durations {
            if let Some((_, h)) = hists.iter_mut().find(|(n, _)| *n == name) {
                h.record(ms);
            }
        }
    }
    let stages = hists
        .into_iter()
        .map(|(stage, hist_ms)| StageBreakdown {
            stage: stage.to_string(),
            count: covered,
            hist_ms,
        })
        .collect();
    (stages, cold, warm)
}

/// Fold span exports into the paper's Table-1 groups: each group's
/// histogram is the lossless union of its member spans' histograms.
pub fn groups_from_spans(exports: &[SpanExport]) -> Vec<GroupBreakdown> {
    names::GROUPS
        .iter()
        .map(|(group, members)| {
            let mut hist_us = LogHistogram::new();
            let mut count = 0u64;
            for e in exports
                .iter()
                .filter(|e| members.contains(&e.name.as_str()))
            {
                hist_us.merge(&e.hist);
                count += e.count;
            }
            GroupBreakdown {
                group: group.to_string(),
                count,
                hist_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::TraceEvent;

    fn trace(id: u64, t0: u64, steps: &[(u64, TraceEventKind)]) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            fqdn: "f-1".into(),
            ingest_ms: t0,
            events: std::iter::once(TraceEvent {
                at_ms: t0,
                kind: TraceEventKind::Ingested,
            })
            .chain(steps.iter().map(|(at, k)| TraceEvent {
                at_ms: *at,
                kind: k.clone(),
            }))
            .collect(),
        }
    }

    fn full_trace(id: u64, t0: u64, cold: bool) -> TraceRecord {
        trace(
            id,
            t0,
            &[
                (t0 + 1, TraceEventKind::Enqueued),
                (t0 + 5, TraceEventKind::Dequeued),
                (t0 + 8, TraceEventKind::ContainerAcquired { cold }),
                (t0 + 9, TraceEventKind::AgentCalled),
                (t0 + 29, TraceEventKind::ResultReturned { ok: true }),
            ],
        )
    }

    #[test]
    fn stage_durations_come_from_milestone_deltas() {
        let records = vec![full_trace(1, 100, false), full_trace(2, 200, true)];
        let (stages, cold, warm) = stages_from_traces(&records);
        assert_eq!((cold, warm), (1, 1));
        let get = |n: &str| {
            stages
                .iter()
                .find(|s| s.stage == n)
                .unwrap_or_else(|| panic!("stage {n}"))
        };
        assert_eq!(get(stages::INGEST).hist_ms.percentile(0.5), 1.0);
        assert_eq!(get(stages::QUEUE).hist_ms.percentile(0.5), 4.0);
        assert_eq!(get(stages::ACQUIRE).hist_ms.percentile(0.5), 3.0);
        assert_eq!(get(stages::PREPARE).hist_ms.percentile(0.5), 1.0);
        assert_eq!(get(stages::AGENT_RETURN).hist_ms.percentile(0.5), 20.0);
        assert_eq!(get(stages::E2E).hist_ms.percentile(0.5), 29.0);
        assert!(stages.iter().all(|s| s.count == 2));
    }

    #[test]
    fn bypassed_traces_have_zero_queue_stage() {
        let r = trace(
            1,
            50,
            &[
                (51, TraceEventKind::Bypassed),
                (53, TraceEventKind::ContainerAcquired { cold: false }),
                (54, TraceEventKind::AgentCalled),
                (60, TraceEventKind::ResultReturned { ok: true }),
            ],
        );
        let (stages, _, warm) = stages_from_traces(&[r]);
        assert_eq!(warm, 1);
        let queue = stages.iter().find(|s| s.stage == stages::QUEUE).unwrap();
        assert_eq!(queue.hist_ms.percentile(1.0), 0.0);
        let acquire = stages.iter().find(|s| s.stage == stages::ACQUIRE).unwrap();
        assert_eq!(acquire.hist_ms.percentile(1.0), 2.0);
    }

    #[test]
    fn incomplete_traces_are_skipped() {
        let r = trace(1, 10, &[(11, TraceEventKind::Enqueued)]);
        let (stages, cold, warm) = stages_from_traces(&[r]);
        assert_eq!((cold, warm), (0, 0));
        assert!(stages.iter().all(|s| s.hist_ms.is_empty()));
    }

    #[test]
    fn groups_fold_member_spans_losslessly() {
        let mk = |name: &str, values: &[u64]| {
            let mut hist = LogHistogram::new();
            let mut total = 0u64;
            for &v in values {
                hist.record(v);
                total += v;
            }
            SpanExport {
                name: name.into(),
                count: values.len() as u64,
                total_us: total,
                hist,
            }
        };
        let exports = vec![
            mk(names::INVOKE, &[10, 20]),
            mk(names::ENQUEUE_INVOCATION, &[30]),
            mk(names::CALL_CONTAINER, &[1000, 2000]),
        ];
        let groups = groups_from_spans(&exports);
        assert_eq!(groups.len(), names::GROUPS.len());
        let iq = &groups[0];
        assert_eq!(iq.group, "Ingestion & Queuing");
        assert_eq!(iq.count, 3);
        assert_eq!(iq.hist_us.count(), 3);
        let agent = groups
            .iter()
            .find(|g| g.group == "Agent Communication")
            .unwrap();
        assert_eq!(agent.count, 2);
        // Groups with no member samples render empty, not absent.
        let ret = groups.iter().find(|g| g.group == "Returning").unwrap();
        assert_eq!(ret.count, 0);
    }

    #[test]
    fn merge_is_lossless_and_serde_roundtrips() {
        let a = {
            let (stages, cold, warm) = stages_from_traces(&[full_trace(1, 0, true)]);
            BreakdownReport {
                source: "w0".into(),
                invocations: 1,
                cold,
                warm,
                stages,
                groups: groups_from_spans(&[]),
                tenants: vec![TenantBreakdown {
                    tenant: "t0".into(),
                    completed: 1,
                }],
            }
        };
        let b = {
            let (stages, cold, warm) =
                stages_from_traces(&[full_trace(2, 10, false), full_trace(3, 20, false)]);
            BreakdownReport {
                source: "w1".into(),
                invocations: 2,
                cold,
                warm,
                stages,
                groups: groups_from_spans(&[]),
                tenants: vec![TenantBreakdown {
                    tenant: "t0".into(),
                    completed: 2,
                }],
            }
        };
        let merged = BreakdownReport::merge(&[a, b]);
        assert_eq!(merged.source, "cluster");
        assert_eq!(merged.invocations, 3);
        assert_eq!((merged.cold, merged.warm), (1, 2));
        let e2e = merged.stage(stages::E2E).unwrap();
        assert_eq!(e2e.count, 3);
        assert_eq!(e2e.hist_ms.count(), 3);
        assert_eq!(merged.tenants[0].completed, 3);
        let json = serde_json::to_string(&merged).unwrap();
        let back: BreakdownReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.invocations, 3);
        assert_eq!(
            back.stage(stages::E2E).unwrap().hist_ms.percentile(0.5),
            e2e.hist_ms.percentile(0.5)
        );
    }
}
