//! Prometheus text-format exposition (§5).
//!
//! The paper's worker tracks "key system metrics like CPU usage, load
//! averages ... and system energy usage" and exports function latencies for
//! analysis. This module renders that state — span histograms, queue depth,
//! pool occupancy, cold/warm/failed counters, load averages, energy — in the
//! Prometheus text format, so `GET /metrics` on a worker (or the merged
//! cluster view on the load balancer) is scrapeable by any standard stack.
//!
//! The writer emits `# HELP`/`# TYPE` once per metric family even when a
//! family repeats with different label sets, as the format requires.

use crate::spans::SpanExport;
use crate::worker::Worker;
use iluvatar_sync::LogHistogram;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Bucket edges for span histograms, µs. Spans range from sub-millisecond
/// control-plane hops to multi-second cold starts; `le` labels are rendered
/// in seconds per Prometheus convention.
pub const DEFAULT_EDGES_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Incremental Prometheus text writer.
pub struct PromWriter {
    out: String,
    seen: HashSet<String>,
}

impl PromWriter {
    pub fn new() -> Self {
        Self {
            out: String::new(),
            seen: HashSet::new(),
        }
    }

    fn preamble(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn label_str(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
        format!("{{{}}}", inner.join(","))
    }

    /// Extend a label set with one more pair (for `le` on buckets).
    fn label_str_plus(labels: &[(&str, &str)], extra: (&str, &str)) -> String {
        let mut all: Vec<(&str, &str)> = labels.to_vec();
        all.push(extra);
        Self::label_str(&all)
    }

    /// Exposition must never emit an unparseable sample: a NaN or ±Inf
    /// value (a mean over zero samples, a ratio against a zero gauge)
    /// renders as `0` rather than poisoning the whole scrape.
    fn finite(value: f64) -> f64 {
        if value.is_finite() {
            value
        } else {
            0.0
        }
    }

    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.preamble(name, help, "counter");
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            Self::label_str(labels),
            Self::finite(value)
        );
    }

    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.preamble(name, help, "gauge");
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            Self::label_str(labels),
            Self::finite(value)
        );
    }

    /// Render a [`LogHistogram`] of **microsecond** samples as a Prometheus
    /// histogram in **seconds** at the given µs bucket edges.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        edges_us: &[u64],
    ) {
        self.preamble(name, help, "histogram");
        for &edge in edges_us {
            let le = edge as f64 / 1e6;
            let ls = Self::label_str_plus(labels, ("le", &le.to_string()));
            let _ = writeln!(self.out, "{name}_bucket{ls} {}", hist.count_le(edge));
        }
        let inf = Self::label_str_plus(labels, ("le", "+Inf"));
        let _ = writeln!(self.out, "{name}_bucket{inf} {}", hist.count());
        let ls = Self::label_str(labels);
        let _ = writeln!(self.out, "{name}_sum{ls} {}", hist.sum() as f64 / 1e6);
        let _ = writeln!(self.out, "{name}_count{ls} {}", hist.count());
    }

    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for PromWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Render one `iluvatar_span_seconds` histogram per span export, labeled
/// with the span name. Shared by the worker and the load balancer's merged
/// cluster view.
pub fn render_span_histograms(w: &mut PromWriter, base: &[(&str, &str)], spans: &[SpanExport]) {
    for e in spans {
        let mut labels: Vec<(&str, &str)> = base.to_vec();
        labels.push(("span", &e.name));
        w.histogram(
            "iluvatar_span_seconds",
            "Control-plane component latency (Table 1 spans)",
            &labels,
            &e.hist,
            DEFAULT_EDGES_US,
        );
    }
}

/// The full `/metrics` payload for one worker. `http_requests` is the API
/// server's served-request count (0 when unserved).
pub fn render_worker(worker: &Worker, http_requests: u64) -> String {
    let st = worker.status();
    let pool = worker.pool_stats();
    let m = worker.metrics();
    let base: &[(&str, &str)] = &[("worker", &st.name)];
    let mut w = PromWriter::new();

    w.gauge(
        "iluvatar_queue_depth",
        "Invocations waiting in the queue",
        base,
        st.queue_len as f64,
    );
    w.gauge(
        "iluvatar_running_invocations",
        "Invocations currently executing",
        base,
        st.running as f64,
    );
    w.gauge(
        "iluvatar_concurrency_limit",
        "Current concurrency limit (fixed or AIMD)",
        base,
        st.concurrency_limit as f64,
    );
    w.gauge(
        "iluvatar_normalized_load",
        "(running + queued) / cores",
        base,
        st.normalized_load,
    );
    w.gauge(
        "iluvatar_pool_used_mem_mb",
        "Memory held by pooled containers, MB",
        base,
        st.used_mem_mb as f64,
    );
    w.gauge(
        "iluvatar_pool_free_mem_mb",
        "Memory available for cold starts, MB",
        base,
        st.free_mem_mb as f64,
    );
    w.gauge(
        "iluvatar_pool_idle_containers",
        "Warm containers parked in the pool",
        base,
        pool.idle_containers as f64,
    );

    w.counter(
        "iluvatar_invocations_completed_total",
        "Successfully completed invocations",
        base,
        st.completed as f64,
    );
    w.counter(
        "iluvatar_invocations_dropped_total",
        "Invocations dropped (backpressure / no memory)",
        base,
        st.dropped as f64,
    );
    w.counter(
        "iluvatar_invocations_failed_total",
        "Invocations that errored at dispatch",
        base,
        st.failed as f64,
    );
    w.counter(
        "iluvatar_cold_starts_total",
        "Invocations that paid a cold start",
        base,
        st.cold_starts as f64,
    );
    w.counter(
        "iluvatar_warm_hits_total",
        "Invocations served by a warm container",
        base,
        st.warm_hits as f64,
    );
    w.counter(
        "iluvatar_pool_evictions_total",
        "Keep-alive evictions",
        base,
        pool.evictions as f64,
    );
    w.counter(
        "iluvatar_http_requests_total",
        "Requests served by the worker API",
        base,
        http_requests as f64,
    );

    w.counter(
        "iluvatar_retries_total",
        "Retries scheduled after transient backend failures",
        base,
        st.retries as f64,
    );
    w.counter(
        "iluvatar_agent_timeouts_total",
        "Agent calls abandoned at the agent timeout",
        base,
        st.agent_timeouts as f64,
    );
    w.counter(
        "iluvatar_containers_quarantined_total",
        "Containers quarantined after a failed agent hop",
        base,
        st.quarantined as f64,
    );
    w.counter(
        "iluvatar_quarantine_released_total",
        "Quarantined containers released back to the pool after their TTL",
        base,
        st.quarantine_released as f64,
    );
    w.counter(
        "iluvatar_dropped_retry_exhausted_total",
        "Invocations failed after the retry budget was exhausted or shed",
        base,
        st.dropped_retry_exhausted as f64,
    );

    w.counter(
        "iluvatar_dropped_admission_total",
        "Invocations rejected by admission control (throttled + shed)",
        base,
        st.dropped_admission as f64,
    );

    // Result cache: totals always, per-tenant evictions when the cache has
    // seen traffic (the tenant label is the cache partition).
    w.counter(
        "iluvatar_cache_hits_total",
        "Invocations served from the result cache without dispatching",
        base,
        st.cache_hits as f64,
    );
    w.counter(
        "iluvatar_cache_misses_total",
        "Result-cache lookups that fell through to dispatch",
        base,
        st.cache_misses as f64,
    );
    for t in worker.cache_stats() {
        let labels: &[(&str, &str)] = &[("worker", &st.name), ("tenant", &t.tenant)];
        w.counter(
            "iluvatar_cache_evictions_total",
            "Result-cache entries evicted under the per-tenant capacity bound",
            labels,
            t.evictions as f64,
        );
    }
    w.gauge(
        "iluvatar_warm_gb_seconds",
        "Warm-container residency across the keep-alive pool, GB*s",
        base,
        st.warm_gb_s,
    );

    // WAL durability health: is the disk failing, stalling, or lying?
    w.gauge(
        "iluvatar_wal_degraded",
        "1 while the WAL serves in degraded (non-durable) mode",
        base,
        if st.wal_degraded { 1.0 } else { 0.0 },
    );
    w.counter(
        "iluvatar_wal_non_durable_total",
        "Invocations accepted while the WAL was degraded",
        base,
        st.wal_non_durable as f64,
    );
    w.counter(
        "iluvatar_wal_stall_sheds_total",
        "Appends shed at the WAL stall deadline (503 + Retry-After)",
        base,
        st.wal_stall_sheds as f64,
    );
    w.counter(
        "iluvatar_wal_rotations_total",
        "WAL segment rotations (size, error ladder, re-arm)",
        base,
        st.wal_rotations as f64,
    );
    w.counter(
        "iluvatar_wal_quarantined_total",
        "Corrupt or torn WAL frames quarantined during recovery",
        base,
        st.wal_quarantined as f64,
    );
    for t in worker.tenant_stats() {
        let labels: &[(&str, &str)] = &[("worker", &st.name), ("tenant", &t.tenant)];
        w.gauge(
            "iluvatar_tenant_weight",
            "DRR fair-share weight",
            labels,
            t.weight,
        );
        w.counter(
            "iluvatar_tenant_admitted_total",
            "Invocations admitted for the tenant",
            labels,
            t.admitted as f64,
        );
        w.counter(
            "iluvatar_tenant_throttled_total",
            "Invocations throttled by the tenant rate limit",
            labels,
            t.throttled as f64,
        );
        w.counter(
            "iluvatar_tenant_shed_total",
            "Best-effort invocations shed under overload",
            labels,
            t.shed as f64,
        );
        w.counter(
            "iluvatar_tenant_served_total",
            "Invocations completed for the tenant",
            labels,
            t.served as f64,
        );
    }

    w.gauge(
        "iluvatar_load_average",
        "Damped busy-core load average",
        &[("worker", &st.name), ("window", "1m")],
        m.load_1,
    );
    w.gauge(
        "iluvatar_load_average",
        "Damped busy-core load average",
        &[("worker", &st.name), ("window", "5m")],
        m.load_5,
    );
    w.gauge(
        "iluvatar_load_average",
        "Damped busy-core load average",
        &[("worker", &st.name), ("window", "15m")],
        m.load_15,
    );
    w.counter(
        "iluvatar_energy_joules_total",
        "Modelled cumulative energy",
        base,
        m.energy_j,
    );
    w.gauge(
        "iluvatar_power_watts",
        "Modelled instantaneous power",
        base,
        m.power_w,
    );

    // The canonical telemetry stream, bridged to counters by kind.
    for (kind, tenant, count) in worker.telemetry_counts() {
        let mut labels: Vec<(&str, &str)> = vec![("worker", &st.name), ("kind", &kind)];
        if !tenant.is_empty() {
            labels.push(("tenant", &tenant));
        }
        w.counter(
            "iluvatar_telemetry_events_total",
            "Canonical telemetry events by kind",
            &labels,
            count as f64,
        );
    }

    render_span_histograms(&mut w, base, &worker.spans().export());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkerConfig;
    use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    use iluvatar_containers::FunctionSpec;
    use iluvatar_sync::SystemClock;
    use std::sync::Arc;

    /// Minimal validity check for the Prometheus text format: every line is
    /// a comment or `name{labels} value` with a parseable float value.
    fn assert_valid_prom(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("bad line: {line}"));
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value in line: {line}"
            );
        }
    }

    #[test]
    fn writer_emits_help_and_type_once() {
        let mut w = PromWriter::new();
        w.gauge("x_depth", "depth", &[("worker", "a")], 1.0);
        w.gauge("x_depth", "depth", &[("worker", "b")], 2.0);
        let out = w.finish();
        assert_eq!(out.matches("# HELP x_depth").count(), 1);
        assert_eq!(out.matches("# TYPE x_depth gauge").count(), 1);
        assert!(out.contains("x_depth{worker=\"a\"} 1"));
        assert!(out.contains("x_depth{worker=\"b\"} 2"));
        assert_valid_prom(&out);
    }

    #[test]
    fn non_finite_values_render_as_zero() {
        // `f64::parse` accepts "NaN" and "inf", so assert_valid_prom alone
        // would let an unscrapeable line through — check the rendered text.
        let mut w = PromWriter::new();
        w.gauge("x_nan", "not-a-number gauge", &[("worker", "a")], f64::NAN);
        w.gauge("x_pos", "overflow gauge", &[("worker", "a")], f64::INFINITY);
        w.counter(
            "x_neg",
            "underflow counter",
            &[("worker", "a")],
            f64::NEG_INFINITY,
        );
        w.gauge("x_ok", "ok", &[("worker", "a")], 1.5);
        let out = w.finish();
        assert!(out.contains("x_nan{worker=\"a\"} 0"), "out: {out}");
        assert!(out.contains("x_pos{worker=\"a\"} 0"), "out: {out}");
        assert!(out.contains("x_neg{worker=\"a\"} 0"), "out: {out}");
        assert!(out.contains("x_ok{worker=\"a\"} 1.5"), "out: {out}");
        assert!(!out.contains("NaN"), "out: {out}");
        assert!(!out.contains("inf"), "out: {out}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut h = LogHistogram::new();
        for us in [50u64, 200, 900, 40_000] {
            h.record(us);
        }
        let mut w = PromWriter::new();
        w.histogram("x_seconds", "x", &[("span", "s")], &h, DEFAULT_EDGES_US);
        let out = w.finish();
        assert!(
            out.contains("x_seconds_bucket{span=\"s\",le=\"0.0001\"} 1"),
            "out: {out}"
        );
        assert!(
            out.contains("x_seconds_bucket{span=\"s\",le=\"0.001\"} 3"),
            "out: {out}"
        );
        assert!(out.contains("x_seconds_bucket{span=\"s\",le=\"+Inf\"} 4"));
        assert!(out.contains("x_seconds_count{span=\"s\"} 4"));
        // Cumulative counts never decrease across increasing edges.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("x_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_valid_prom(&out);
    }

    #[test]
    fn worker_metrics_cover_the_checklist() {
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let worker = Worker::new(WorkerConfig::for_testing(), backend, clock);
        worker
            .register(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        worker.invoke("f-1", "{}").unwrap();
        worker.invoke("f-1", "{}").unwrap();
        let text = render_worker(&worker, 7);
        assert_valid_prom(&text);
        for family in [
            "iluvatar_queue_depth",
            "iluvatar_running_invocations",
            "iluvatar_pool_used_mem_mb",
            "iluvatar_pool_free_mem_mb",
            "iluvatar_invocations_completed_total",
            "iluvatar_invocations_dropped_total",
            "iluvatar_invocations_failed_total",
            "iluvatar_cold_starts_total",
            "iluvatar_warm_hits_total",
            "iluvatar_load_average",
            "iluvatar_energy_joules_total",
            "iluvatar_power_watts",
            "iluvatar_http_requests_total",
            "iluvatar_retries_total",
            "iluvatar_agent_timeouts_total",
            "iluvatar_containers_quarantined_total",
            "iluvatar_quarantine_released_total",
            "iluvatar_dropped_retry_exhausted_total",
            "iluvatar_dropped_admission_total",
            "iluvatar_cache_hits_total",
            "iluvatar_cache_misses_total",
            "iluvatar_warm_gb_seconds",
            "iluvatar_wal_degraded",
            "iluvatar_wal_non_durable_total",
            "iluvatar_wal_stall_sheds_total",
            "iluvatar_wal_rotations_total",
            "iluvatar_wal_quarantined_total",
            "iluvatar_telemetry_events_total",
            "iluvatar_span_seconds_bucket",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("iluvatar_http_requests_total{worker=\"test-worker\"} 7"));
        // At least one span histogram per Table-1 group that ran.
        assert!(
            text.contains("span=\"call_container\""),
            "span labels present"
        );
        assert!(text.contains("span=\"invoke\""));
        // Admission disabled: no per-tenant families rendered.
        assert!(!text.contains("iluvatar_tenant_admitted_total{"));
    }

    #[test]
    fn per_tenant_metrics_render_when_admission_enabled() {
        use iluvatar_admission::{AdmissionConfig, TenantSpec};
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.02,
                ..Default::default()
            },
        ));
        let mut cfg = WorkerConfig::for_testing();
        cfg.admission = AdmissionConfig::enabled_with(vec![
            TenantSpec::new("gold").with_weight(3.0),
            TenantSpec::new("free").with_rate(0.001, 1.0),
        ]);
        let worker = Worker::new(cfg, backend, clock);
        worker
            .register(FunctionSpec::new("f", "1").with_timing(100, 400))
            .unwrap();
        worker.invoke_tenant("f-1", "{}", Some("gold")).unwrap();
        worker.invoke_tenant("f-1", "{}", Some("free")).unwrap();
        let _ = worker.invoke_tenant("f-1", "{}", Some("free")); // throttled
        let text = render_worker(&worker, 0);
        assert_valid_prom(&text);
        assert!(
            text.contains("iluvatar_tenant_weight{worker=\"test-worker\",tenant=\"gold\"} 3"),
            "{text}"
        );
        assert!(text
            .contains("iluvatar_tenant_admitted_total{worker=\"test-worker\",tenant=\"gold\"} 1"));
        assert!(text
            .contains("iluvatar_tenant_throttled_total{worker=\"test-worker\",tenant=\"free\"} 1"));
        assert!(
            text.contains("iluvatar_tenant_served_total{worker=\"test-worker\",tenant=\"gold\"} 1")
        );
        assert!(text.contains("iluvatar_dropped_admission_total{worker=\"test-worker\"} 1"));
    }
}
