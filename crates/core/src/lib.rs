//! The Ilúvatar worker — a fast, predictable FaaS control plane.
//!
//! This crate is the paper's primary contribution: a worker-centric control
//! plane (§3) whose per-invocation overhead is ~2 ms against OpenWhisk's
//! 10–600 ms. The worker API mirrors §3.1: `register`, `invoke`,
//! `async_invoke`, and `prewarm`.
//!
//! Structure:
//!
//! * [`registration`] — function registration and image preparation (§3.2).
//! * [`characteristics`] — per-function warm/cold time and IAT histories,
//!   the inputs to every data-driven policy (§3.1, §4.2).
//! * [`policies`] — keep-alive eviction policies: TTL, LRU, LFU, the
//!   Greedy-Dual-Size-Frequency family, Landlord, and the histogram (HIST)
//!   policy of Shahrad et al. (§6.1).
//! * [`pool`] — the container pool / keep-alive cache with background
//!   eviction and a free-memory buffer (§3.3).
//! * [`queue`] — the per-worker invocation queue: FCFS/SJF/EEDF/RARE
//!   disciplines plus a deficit-weighted-round-robin (DRR) multi-tenant
//!   fair queue, short-function bypass, and the concurrency regulator with
//!   fixed or AIMD-dynamic limits (§4).
//! * [`worker`] — the assembled worker and its invocation hot path.
//! * [`spans`] — lightweight per-component latency tracking (Table 1).
//! * [`journal`] — per-invocation trace timelines (`GET /trace/{id}`).
//! * [`breakdown`] — the critical-path breakdown report (`GET /breakdown`),
//!   derived from the journal and span streams.
//! * [`exposition`] — Prometheus text rendering for `GET /metrics`.

pub mod api;
pub mod breakdown;
pub mod characteristics;
pub mod config;
pub mod exposition;
pub mod invocation;
pub mod journal;
pub mod metrics;
pub mod policies;
pub mod pool;
pub mod queue;
pub mod registration;
pub mod spans;
pub mod wal;
pub mod worker;

pub use breakdown::{BreakdownReport, GroupBreakdown, StageBreakdown, TenantBreakdown};
pub use config::{
    ConcurrencyConfig, KeepalivePolicyKind, LifecycleConfig, QueueConfig, QueuePolicyKind,
    ResilienceConfig, WalConfig, WorkerConfig,
};
pub use invocation::{InvocationHandle, InvocationResult, InvokeError};
pub use journal::{journal_digest, TraceEvent, TraceEventKind, TraceJournal, TraceRecord};
pub use queue::{DrrQueue, DEFAULT_DRR_QUANTUM_MS};
pub use registration::{RegisterError, Registration, Registry};
pub use spans::{merge_span_exports, SpanExport, Spans};
pub use wal::{CounterBaselines, PendingInvocation, ReplayState, Wal, WalRecord, WalSnapshot};
pub use worker::{RecoveryReport, Worker, WorkerStatus};

// Re-export the substrate types callers need to build a worker.
pub use iluvatar_containers::{ContainerBackend, FunctionSpec, ResourceLimits};

// Re-export the canonical telemetry stream so worker embedders can attach
// sinks without a direct dependency edge.
pub use iluvatar_telemetry::{
    FlightDump, FlightRecorder, FlightSnapshot, TelemetryBus, TelemetryEvent, TelemetryKind,
    TelemetrySink,
};

// Re-export the admission-control surface so downstream crates (load
// balancer, binaries) don't need a direct dependency edge.
pub use iluvatar_admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, PriorityClass, TenantRegistry,
    TenantSnapshot, TenantSpec, DEFAULT_TENANT,
};
