//! The assembled Ilúvatar worker.
//!
//! Ties together the registry, characteristics store, keep-alive container
//! pool, invocation queue, and concurrency regulator into the worker API of
//! §3.1: `register`, `invoke`, `async_invoke`, `prewarm`, plus load/status
//! reporting for the load balancer.
//!
//! The invocation hot path (Figure 3 / Table 1):
//!
//! ```text
//! invoke → enqueue_invocation → add_item_to_q ─┐            (caller thread)
//!                                              ▼
//!    dequeue → acquire_container → prepare_invoke → call_container
//!            → download_result → return_container → return_results
//!                                              (dispatch thread, permit-bound)
//! ```

use crate::breakdown::{groups_from_spans, stages_from_traces, BreakdownReport, TenantBreakdown};
use crate::characteristics::Characteristics;
use crate::config::WorkerConfig;
use crate::invocation::{InvocationHandle, InvocationResult, InvokeError};
use crate::journal::{TraceEventKind, TraceJournal, TraceRecord};
use crate::metrics::{MetricsSnapshot, PowerModel, SystemMetrics};
use crate::policies::make_policy;
use crate::pool::{ContainerPool, EvictSink};
use crate::queue::regulator::ConcurrencyRegulator;
use crate::queue::{InvocationQueue, PushError, QueuedInvocation};
use crate::registration::{RegisterError, Registration, Registry};
use crate::spans::{names, Spans};
use crate::wal::{
    AppendOutcome, BucketLevel, CounterBaselines, DrrDeficit, PendingInvocation, Wal, WalRecord,
    WalSnapshot,
};
use crossbeam::channel::{bounded, unbounded, Sender};
use iluvatar_admission::{AdmissionController, AdmissionDecision, TenantSnapshot, DEFAULT_TENANT};
use iluvatar_cache::{CacheLookup, CacheStatus, ResultCache, TenantCacheStats};
use iluvatar_containers::image::Platform;
use iluvatar_containers::types::SharedContainer;
use iluvatar_containers::{BackendError, ContainerBackend, FunctionSpec};
use iluvatar_sync::storage::{RealStorage, Storage};
use iluvatar_sync::{Backoff, BackoffConfig, Clock, TaskPool, TimeMs};
use iluvatar_telemetry::{
    CounterBridge, FlightRecorder, TelemetryBus, TelemetryKind, TelemetrySink,
};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Point-in-time worker load/status, the load balancer's CH-BL input.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    pub name: String,
    pub queue_len: usize,
    pub running: usize,
    pub concurrency_limit: usize,
    pub used_mem_mb: u64,
    pub free_mem_mb: u64,
    /// (running + queued) / cores — the queue-aware load signal §4 argues
    /// is less stale and noisy than the OS load average.
    pub normalized_load: f64,
    pub completed: u64,
    pub dropped: u64,
    /// Invocations that reached dispatch but errored (backend failures).
    pub failed: u64,
    pub warm_hits: u64,
    pub cold_starts: u64,
    /// Retries taken after transient backend failures.
    pub retries: u64,
    /// Agent calls abandoned at the configured timeout.
    pub agent_timeouts: u64,
    /// Containers quarantined (destroyed instead of pooled) after failures.
    pub quarantined: u64,
    /// Invocations that failed after exhausting (or shedding) their retry
    /// budget.
    pub dropped_retry_exhausted: u64,
    /// Invocations rejected at ingest by admission control (tenant rate
    /// limit or overload shedding). 0 while admission is disabled.
    pub dropped_admission: u64,
    /// Quarantined containers released back to the pool after their TTL.
    pub quarantine_released: u64,
    /// Lifecycle state: `running`, `draining`, or `stopped`.
    pub lifecycle: String,
    /// Invocations (queued + running) still to finish before a drain
    /// completes.
    pub drain_pending: u64,
    /// Queue delay of the most recently dequeued invocation, ms — the
    /// autoscaler's reactive signal.
    pub queue_delay_ms: u64,
    /// Result-cache hits served without touching a container. 0 while the
    /// cache is disabled.
    pub cache_hits: u64,
    /// Result-cache lookups that fell through to dispatch.
    pub cache_misses: u64,
    /// Result-cache entries evicted under the per-tenant capacity bound.
    pub cache_evictions: u64,
    /// Warm-container residency across all idle pool entries, GB·s — the
    /// fleet's least-warm scale-down victim signal.
    pub warm_gb_s: f64,
    /// WAL degraded mode: the disk is failing, serving continues with
    /// results flagged non-durable until a re-arm succeeds.
    pub wal_degraded: bool,
    /// Invocations accepted while the WAL was degraded (non-durable).
    pub wal_non_durable: u64,
    /// Invocations shed by WAL stall backpressure (503 + Retry-After).
    pub wal_stall_sheds: u64,
    /// WAL segment rotations (size limit, error ladder, re-arm).
    pub wal_rotations: u64,
    /// Damaged WAL records quarantined by the last recovery (torn tails +
    /// corrupt frames).
    pub wal_quarantined: u64,
}

/// Lifecycle state machine: Running → Draining → Stopped.
const LIFECYCLE_RUNNING: u8 = 0;
const LIFECYCLE_DRAINING: u8 = 1;
const LIFECYCLE_STOPPED: u8 = 2;

/// Traces the journal remembers before the oldest age out.
const TRACE_CAPACITY: usize = 4096;

/// Telemetry events the flight recorder retains (`GET /debug/flightrecorder`).
const FLIGHT_RECORDER_CAPACITY: usize = 256;

struct Shared {
    cfg: WorkerConfig,
    clock: Arc<dyn Clock>,
    registry: Registry,
    chars: Characteristics,
    pool: ContainerPool,
    queue: InvocationQueue,
    regulator: ConcurrencyRegulator,
    backend: Arc<dyn ContainerBackend>,
    spans: Spans,
    journal: TraceJournal,
    metrics: SystemMetrics,
    /// Currently executing invocations per function (herd suppression).
    running_fn: iluvatar_sync::ShardedMap<String, u64>,
    running: AtomicUsize,
    completed: AtomicU64,
    dropped: AtomicU64,
    failed: AtomicU64,
    cold_starts: AtomicU64,
    retries: AtomicU64,
    agent_timeouts: AtomicU64,
    quarantined: AtomicU64,
    dropped_retry_exhausted: AtomicU64,
    /// Invocations currently sleeping out a retry backoff (shed signal).
    retrying: AtomicUsize,
    /// Multi-tenant admission control; a no-op pass-through when disabled.
    admission: AdmissionController,
    /// Queue delay of the most recently dequeued invocation, ms — the
    /// overload signal feeding best-effort shedding.
    last_queue_delay_ms: AtomicU64,
    shutdown: AtomicBool,
    /// Queue write-ahead log; `None` when lifecycle journaling is disabled.
    wal: Option<Wal>,
    /// Invocations accepted while the WAL was degraded (non-durable).
    wal_non_durable: AtomicU64,
    /// Invocations shed on the acceptance path by WAL stall backpressure.
    wal_stall_shed: AtomicU64,
    /// Damaged records the last recovery quarantined (torn + corrupt).
    wal_quarantined_frames: AtomicU64,
    /// Containers quarantined with a TTL, awaiting probe-on-idle release.
    quarantine: Mutex<Vec<(SharedContainer, TimeMs)>>,
    quarantine_released: AtomicU64,
    /// Running → Draining → Stopped (see the `LIFECYCLE_*` constants).
    lifecycle: AtomicU8,
    /// Hard-stop (crash simulation): abandon queued work immediately.
    killed: AtomicBool,
    /// The canonical telemetry stream (journal stages, WAL ops, lifecycle
    /// transitions all fan out through here to attached sinks).
    telemetry: Arc<TelemetryBus>,
    /// Black-box ring of the most recent telemetry events, dumped on
    /// crash/drain and snapshotted by the chaos harness on faults.
    recorder: Arc<FlightRecorder>,
    /// Per-kind event counters for the Prometheus exposition
    /// (`iluvatar_telemetry_events_total`).
    tel_counts: Arc<CounterBridge>,
    /// Invocation result cache; `Some` only when `cfg.cache.enabled`.
    cache: Option<Arc<ResultCache>>,
}

impl Shared {
    fn normalized_load(&self) -> f64 {
        (self.running.load(Ordering::Relaxed) + self.queue.len()) as f64
            / self.cfg.cores.max(1) as f64
    }

    fn lifecycle_label(&self) -> &'static str {
        match self.lifecycle.load(Ordering::Relaxed) {
            LIFECYCLE_DRAINING => "draining",
            LIFECYCLE_STOPPED => "stopped",
            _ => "running",
        }
    }

    /// Append to the WAL; trivially succeeds when journaling is disabled.
    /// Every *landed* record is mirrored onto the telemetry stream (a
    /// rejected or non-durable append is the WAL's verdict, not an event
    /// that happened).
    fn wal_append(&self, rec: &WalRecord) -> AppendOutcome {
        match &self.wal {
            Some(w) => {
                let outcome = w.append(rec);
                if outcome.is_landed() {
                    // Mirror the record payload onto the event so stream
                    // consumers (the conformance checker in particular) can
                    // drive the WAL/DRR reference models without the file.
                    let (tenant, cost_ms, weight, done_ok, throttled) = match rec {
                        WalRecord::Enqueued { inv } => (
                            inv.tenant.clone(),
                            Some(inv.expected_exec_ms),
                            Some(inv.tenant_weight),
                            None,
                            None,
                        ),
                        WalRecord::Completed { tenant, ok, .. } => {
                            (tenant.clone(), None, None, Some(*ok), None)
                        }
                        WalRecord::Shed {
                            tenant, throttled, ..
                        } => (tenant.clone(), None, None, None, Some(*throttled)),
                        _ => (None, None, None, None, None),
                    };
                    self.telemetry.emit(
                        rec.trace_id(),
                        tenant.as_deref(),
                        TelemetryKind::Wal {
                            op: rec.op_label().to_string(),
                            cost_ms,
                            weight,
                            ok: done_ok,
                            throttled,
                        },
                    );
                }
                outcome
            }
            None => AppendOutcome::Landed,
        }
    }

    /// Map a rejected acceptance-path append to the caller-facing error:
    /// stall/ladder rejections become `WalUnavailable` (503 + Retry-After,
    /// so the balancer routes around the failing disk); a poisoned log
    /// keeps its crash-simulation semantics.
    fn wal_reject(&self, outcome: AppendOutcome) -> InvokeError {
        match outcome {
            AppendOutcome::Stalled => {
                self.wal_stall_shed.fetch_add(1, Ordering::Relaxed);
                InvokeError::WalUnavailable
            }
            AppendOutcome::Unavailable => InvokeError::WalUnavailable,
            _ => InvokeError::ShuttingDown,
        }
    }

    /// Book an accepted enqueue append; true when the caller may proceed.
    fn wal_accepted(&self, outcome: AppendOutcome) -> bool {
        if outcome == AppendOutcome::NotDurable {
            self.wal_non_durable.fetch_add(1, Ordering::Relaxed);
        }
        outcome.accepted()
    }

    /// Emit a lifecycle transition on the telemetry stream.
    fn emit_lifecycle(&self, state: &str) {
        self.telemetry.emit(
            None,
            None,
            TelemetryKind::Lifecycle {
                state: state.to_string(),
            },
        );
    }

    /// Freeze the flight-recorder tail and leave a marker event in the
    /// stream so readers can see *that* (and why) a snapshot was taken.
    fn snapshot_recorder(&self, reason: &str) {
        self.recorder.snapshot(reason);
        self.telemetry.emit(
            None,
            None,
            TelemetryKind::RecorderSnapshot {
                reason: reason.to_string(),
            },
        );
    }
}

/// The Ilúvatar worker.
pub struct Worker {
    shared: Arc<Shared>,
    tasks: TaskPool,
    monitor: Option<JoinHandle<()>>,
    destroyer: Option<JoinHandle<()>>,
    destroy_tx: Option<Sender<SharedContainer>>,
}

impl Worker {
    /// Build and start a worker over `backend`.
    pub fn new(
        cfg: WorkerConfig,
        backend: Arc<dyn ContainerBackend>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::new_with_storage(cfg, backend, clock, Arc::new(RealStorage))
    }

    /// [`Worker::new`] with a pluggable storage layer under the WAL, so the
    /// chaos harness can inject disk faults (`FaultyStorage`).
    pub fn new_with_storage(
        cfg: WorkerConfig,
        backend: Arc<dyn ContainerBackend>,
        clock: Arc<dyn Clock>,
        storage: Arc<dyn Storage>,
    ) -> Self {
        // Async container destruction: eviction hands containers to a
        // dedicated destroyer thread, keeping teardown off every hot path.
        let (destroy_tx, destroy_rx) = unbounded::<SharedContainer>();
        let sink_tx = destroy_tx.clone();
        let sink: EvictSink = Arc::new(move |c: SharedContainer| {
            let _ = sink_tx.send(c);
        });
        let policy = make_policy(cfg.keepalive, cfg.ttl_ms);
        // FNV-1a of the worker name seeds the trace id space, so ids from
        // different workers in one cluster rarely collide.
        let trace_seed = cfg.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let wal = cfg.lifecycle.wal_path.as_ref().and_then(|p| {
            Wal::open_with(
                Path::new(p),
                cfg.lifecycle.wal_options(),
                Arc::clone(&storage),
            )
            .ok()
        });
        // The canonical telemetry stream is always on; the flight recorder
        // is its first sink, so the last N events are always dumpable even
        // when no external sink was attached.
        let telemetry = TelemetryBus::new(&cfg.name, Arc::clone(&clock));
        // Bridge WAL I/O health transitions (rotations, retries, degraded /
        // re-armed, stall sheds) onto the canonical stream as `wal_io`.
        if let Some(w) = &wal {
            let bus = Arc::clone(&telemetry);
            w.set_io_notify(Arc::new(move |op: &'static str| {
                bus.emit(None, None, TelemetryKind::WalIo { op: op.to_string() });
            }));
        }
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_RECORDER_CAPACITY));
        telemetry.add_sink(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
        let tel_counts = Arc::new(CounterBridge::new());
        telemetry.add_sink(Arc::clone(&tel_counts) as Arc<dyn TelemetrySink>);
        // The result cache shares the worker's clock (deterministic TTL
        // under an injected clock) and mirrors its ops onto the same
        // canonical stream.
        let cache = cfg.cache.enabled.then(|| {
            let c = Arc::new(ResultCache::new(cfg.cache.clone(), Arc::clone(&clock)));
            c.set_telemetry(Arc::clone(&telemetry));
            c
        });
        let shared = Arc::new(Shared {
            registry: Registry::new(Platform::LINUX_AMD64),
            chars: Characteristics::new(cfg.char_window),
            pool: ContainerPool::new(cfg.memory_mb, policy, Arc::clone(&clock), sink),
            queue: InvocationQueue::new(cfg.queue.clone()),
            regulator: ConcurrencyRegulator::new(cfg.concurrency.clone()),
            backend: Arc::clone(&backend),
            spans: Spans::new(),
            journal: TraceJournal::new(TRACE_CAPACITY, trace_seed, Arc::clone(&clock)),
            metrics: SystemMetrics::new(PowerModel::default(), Arc::clone(&clock)),
            running_fn: iluvatar_sync::ShardedMap::new(),
            running: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cold_starts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            agent_timeouts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            dropped_retry_exhausted: AtomicU64::new(0),
            retrying: AtomicUsize::new(0),
            admission: AdmissionController::new(cfg.admission.clone(), Arc::clone(&clock)),
            last_queue_delay_ms: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            wal,
            wal_non_durable: AtomicU64::new(0),
            wal_stall_shed: AtomicU64::new(0),
            wal_quarantined_frames: AtomicU64::new(0),
            quarantine: Mutex::new(Vec::new()),
            quarantine_released: AtomicU64::new(0),
            lifecycle: AtomicU8::new(LIFECYCLE_RUNNING),
            killed: AtomicBool::new(false),
            telemetry,
            recorder,
            tel_counts,
            cache,
            clock,
            cfg,
        });
        // The journal mirrors every trace stage onto the same stream.
        shared.journal.set_telemetry(Arc::clone(&shared.telemetry));

        // The pool's evict sink holds a sender clone for the worker's whole
        // lifetime, so the destroyer cannot rely on channel disconnect for
        // shutdown; it polls the shutdown flag between receives.
        let destroy_backend = Arc::clone(&backend);
        let destroy_shared = Arc::clone(&shared);
        let destroyer = std::thread::Builder::new()
            .name("iluvatar-destroyer".into())
            .spawn(move || loop {
                match destroy_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(c) => {
                        let _ = destroy_backend.destroy(&c);
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if destroy_shared.shutdown.load(Ordering::Relaxed) && destroy_rx.is_empty()
                        {
                            return;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawn destroyer");

        let tasks = TaskPool::new(2);
        // Background keep-alive eviction sweep (§3.3).
        {
            let s = Arc::clone(&shared);
            tasks.spawn_periodic(
                "keepalive-evict",
                Duration::from_millis(s.cfg.eviction_period_ms),
                move || s.pool.background_sweep(s.cfg.free_buffer_mb),
            );
        }
        // System metrics sampling (§5): load averages + energy model.
        {
            let s = Arc::clone(&shared);
            tasks.spawn_periodic("metrics-sample", Duration::from_millis(250), move || {
                let busy = s.running.load(Ordering::Relaxed).min(s.cfg.cores) as f64;
                s.metrics.sample(busy);
                maybe_finalize(&s);
            });
        }
        // Quarantine probe-on-idle: containers parked after a failure are
        // released back to the pool once their TTL expires, so a transient
        // agent hiccup doesn't permanently shrink the pool.
        if shared.cfg.resilience.quarantine_ttl_ms > 0 {
            let s = Arc::clone(&shared);
            tasks.spawn_periodic("quarantine-sweep", Duration::from_millis(50), move || {
                release_expired_quarantine(&s);
            });
        }
        // Degraded-WAL re-arm driver: appends retry lazily, but an idle
        // worker has no appends — this periodic attempt re-arms it anyway,
        // then pins the recovered log to live state with a fresh snapshot.
        if shared.wal.is_some() {
            let s = Arc::clone(&shared);
            tasks.spawn_periodic("wal-rearm", Duration::from_millis(100), move || {
                if let Some(w) = &s.wal {
                    if w.is_degraded() && w.try_rearm() {
                        wal_snapshot_now(&s);
                    }
                }
            });
        }
        // Predictive prewarm (§3.2): prepare containers the policy expects
        // to be needed soon. Only meaningful with a predictive keep-alive
        // policy (HIST); other policies never recommend.
        if shared.cfg.prewarm_horizon_ms > 0 {
            let s = Arc::clone(&shared);
            let period = (s.cfg.prewarm_horizon_ms / 2).max(50);
            tasks.spawn_periodic(
                "predictive-prewarm",
                Duration::from_millis(period),
                move || {
                    for fqdn in s.pool.prewarm_recommendations(s.cfg.prewarm_horizon_ms) {
                        let _ = prewarm_inner(&s, &fqdn);
                    }
                },
            );
        }
        // AIMD control loop (§4.1), only when dynamic.
        if shared.regulator.is_dynamic() {
            let s = Arc::clone(&shared);
            tasks.spawn_periodic(
                "aimd-tick",
                Duration::from_millis(s.regulator.interval_ms()),
                move || {
                    s.regulator.tick(s.normalized_load());
                },
            );
        }

        // The queue monitor dispatches invocations under the concurrency
        // limit (§3.3, "Function Queuing").
        let monitor = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("iluvatar-queue-monitor".into())
                .spawn(move || monitor_loop(s))
                .expect("spawn queue monitor")
        };

        Self {
            shared,
            tasks,
            monitor: Some(monitor),
            destroyer: Some(destroyer),
            destroy_tx: Some(destroy_tx),
        }
    }

    /// Register a function (§3.2). Out-of-band of the invocation path.
    /// Re-registering an fqdn invalidates any cached results for it — new
    /// code must never be answered with the old version's outputs.
    pub fn register(&self, spec: FunctionSpec) -> Result<Arc<Registration>, RegisterError> {
        if let Some(cache) = &self.shared.cache {
            cache.note_spec(&spec);
        }
        self.shared.registry.register(spec)
    }

    /// Synchronous invocation: blocks until the function completes.
    pub fn invoke(&self, fqdn: &str, args: &str) -> Result<InvocationResult, InvokeError> {
        self.invoke_tenant(fqdn, args, None)
    }

    /// Synchronous invocation on behalf of an explicit tenant.
    pub fn invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationResult, InvokeError> {
        let _g = self.shared.spans.time(names::SYNC_INVOKE);
        self.async_invoke_tenant(fqdn, args, tenant)?.wait()
    }

    /// Synchronous invocation through the result cache. A hit returns the
    /// cached body without touching the queue, pool, or a container; a miss
    /// dispatches via [`Worker::invoke_tenant`] and fills the cache from
    /// the completed result (after its `Completed` WAL record is durable,
    /// so a served hit always points at a logged completion); bypass (cache
    /// disabled, or the function not registered idempotent) is a plain
    /// dispatch. The returned [`CacheStatus`] feeds the
    /// `X-Iluvatar-Cache` response header.
    pub fn invoke_tenant_cached(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<(InvocationResult, CacheStatus), InvokeError> {
        let Some(cache) = &self.shared.cache else {
            return Ok((self.invoke_tenant(fqdn, args, tenant)?, CacheStatus::Bypass));
        };
        match cache.lookup(fqdn, tenant, args) {
            CacheLookup::Hit(hit) => {
                let now = self.shared.clock.now_ms();
                Ok((
                    InvocationResult {
                        body: hit.body,
                        exec_ms: hit.exec_ms,
                        e2e_ms: 0,
                        cold: false,
                        queue_ms: 0,
                        arrived_at: now,
                        trace_id: 0,
                        tenant: Some(hit.tenant),
                    },
                    CacheStatus::Hit,
                ))
            }
            CacheLookup::Miss(_) => {
                let r = self.invoke_tenant(fqdn, args, tenant)?;
                cache.fill(fqdn, tenant, args, &r.body, r.exec_ms, Some(r.trace_id));
                Ok((r, CacheStatus::Miss))
            }
            CacheLookup::Bypass => {
                Ok((self.invoke_tenant(fqdn, args, tenant)?, CacheStatus::Bypass))
            }
        }
    }

    /// Asynchronous invocation: returns a handle immediately.
    pub fn async_invoke(&self, fqdn: &str, args: &str) -> Result<InvocationHandle, InvokeError> {
        self.async_invoke_tenant(fqdn, args, None)
    }

    /// Asynchronous invocation on behalf of an explicit tenant. A `None`
    /// tenant falls back to the function registration's tenant, then to the
    /// default tenant.
    pub fn async_invoke_tenant(
        &self,
        fqdn: &str,
        args: &str,
        tenant: Option<&str>,
    ) -> Result<InvocationHandle, InvokeError> {
        let s = &self.shared;
        let _g = s.spans.time(names::INVOKE);
        if s.shutdown.load(Ordering::Relaxed)
            || s.lifecycle.load(Ordering::Relaxed) != LIFECYCLE_RUNNING
        {
            return Err(InvokeError::ShuttingDown);
        }
        let now = s.clock.now_ms();
        let reg = s
            .registry
            .get(fqdn)
            .ok_or_else(|| InvokeError::NotRegistered(fqdn.to_string()))?;
        // Tenant resolution: explicit label → registration default → None
        // (accounted to the platform default tenant when admission is on).
        let tenant: Option<String> = tenant
            .map(|t| t.to_string())
            .or_else(|| reg.spec.tenant.clone());
        let mut tenant_weight = 1.0;
        if s.admission.enabled() {
            let tname = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
            tenant_weight = s.admission.weight_of(tname);
            let queue_delay = s.last_queue_delay_ms.load(Ordering::Relaxed);
            match s.admission.admit(tname, queue_delay) {
                AdmissionDecision::Admit => {}
                AdmissionDecision::Throttled => {
                    let trace_id = s.journal.begin(fqdn);
                    s.journal.record(trace_id, TraceEventKind::TenantThrottled);
                    s.journal
                        .record(trace_id, TraceEventKind::ResultReturned { ok: false });
                    let _ = s.wal_append(&WalRecord::Shed {
                        id: trace_id,
                        tenant: Some(tname.to_string()),
                        throttled: true,
                    });
                    return Err(InvokeError::Throttled(tname.to_string()));
                }
                AdmissionDecision::Shed => {
                    let trace_id = s.journal.begin(fqdn);
                    s.journal
                        .record(trace_id, TraceEventKind::AdmissionRejected);
                    s.journal
                        .record(trace_id, TraceEventKind::ResultReturned { ok: false });
                    let _ = s.wal_append(&WalRecord::Shed {
                        id: trace_id,
                        tenant: Some(tname.to_string()),
                        throttled: false,
                    });
                    return Err(InvokeError::Shed(tname.to_string()));
                }
            }
        }
        s.chars.on_arrival(fqdn, now);
        s.pool.note_arrival(fqdn);
        s.chars.on_memory(fqdn, reg.spec.limits.memory_mb);

        let expect_warm = s.pool.idle_count(fqdn) > 0;
        let expected_exec_ms = s.chars.expected_exec_ms(fqdn, expect_warm);
        let iat_ms = s.chars.mean_iat_ms(fqdn);
        let (tx, handle) = InvocationHandle::pair();
        // Mint the end-to-end trace at ingest; every later stage appends to
        // this timeline, and the id crosses the agent hop as a header.
        let trace_id = s.journal.begin(fqdn);

        // Queue bypass (§4.1): short functions run immediately when load
        // allows and a run slot is free right now.
        if s.queue.should_bypass(expected_exec_ms, s.normalized_load()) {
            if let Some(permit) = s.regulator.try_acquire() {
                let item = QueuedInvocation {
                    fqdn: fqdn.to_string(),
                    args: args.to_string(),
                    trace_id,
                    arrived_at: now,
                    expected_exec_ms,
                    iat_ms,
                    expect_warm,
                    tenant,
                    tenant_weight,
                    result_tx: tx,
                };
                // A bypassed invocation is logged as enqueued+dequeued in
                // one record; if the record can't land, don't accept it.
                let outcome = s.wal_append(&WalRecord::Enqueued {
                    inv: pending_of(&item, true),
                });
                if !s.wal_accepted(outcome) {
                    return Err(s.wal_reject(outcome));
                }
                s.queue.note_bypass();
                s.journal.record(trace_id, TraceEventKind::Bypassed);
                let s2 = Arc::clone(s);
                std::thread::Builder::new()
                    .name("iluvatar-bypass".into())
                    .spawn(move || {
                        run_invocation(&s2, item, now);
                        drop(permit);
                    })
                    .expect("spawn bypass thread");
                return Ok(handle);
            }
        }

        let enq = s.spans.time(names::ENQUEUE_INVOCATION);
        let item = QueuedInvocation {
            fqdn: fqdn.to_string(),
            args: args.to_string(),
            trace_id,
            arrived_at: now,
            expected_exec_ms,
            iat_ms,
            expect_warm,
            tenant,
            tenant_weight,
            result_tx: tx,
        };
        // WAL before the push: an invocation is *accepted* only once its
        // `Enqueued` record is durable (or explicitly flagged non-durable
        // in degraded mode), so a crash can never silently lose an accepted
        // invocation. A poisoned log rejects; a stalling or erroring disk
        // sheds with 503 + Retry-After.
        let outcome = s.wal_append(&WalRecord::Enqueued {
            inv: pending_of(&item, false),
        });
        if !s.wal_accepted(outcome) {
            drop(enq);
            s.journal
                .record(trace_id, TraceEventKind::ResultReturned { ok: false });
            return Err(s.wal_reject(outcome));
        }
        // Journal `Enqueued` before the push: once the item is in the queue
        // the dispatch loop races us, and a `Dequeued` landing first would
        // scramble the timeline (and the deterministic journal digest). On
        // the rare rejected push the event is immediately contradicted by
        // `ResultReturned(false)`, which reads fine.
        s.journal.record(trace_id, TraceEventKind::Enqueued);
        let push = {
            let _g = s.spans.time(names::ADD_ITEM_TO_Q);
            s.queue.push(item)
        };
        drop(enq);
        match push {
            Ok(()) => Ok(handle),
            Err(PushError::Full) => {
                s.dropped.fetch_add(1, Ordering::Relaxed);
                s.journal
                    .record(trace_id, TraceEventKind::ResultReturned { ok: false });
                // The enqueue record already landed; retract it so replay
                // doesn't resurrect a rejected invocation.
                let _ = s.wal_append(&WalRecord::Completed {
                    id: trace_id,
                    ok: false,
                    tenant: None,
                });
                Err(InvokeError::QueueFull)
            }
            Err(PushError::Closed) => {
                let _ = s.wal_append(&WalRecord::Completed {
                    id: trace_id,
                    ok: false,
                    tenant: None,
                });
                Err(InvokeError::ShuttingDown)
            }
        }
    }

    /// Prewarm (§3.2): start a container + agent and park it in the pool,
    /// absorbing the cold-start cost ahead of the first invocation.
    pub fn prewarm(&self, fqdn: &str) -> Result<(), InvokeError> {
        prewarm_inner(&self.shared, fqdn)
    }

    pub fn status(&self) -> WorkerStatus {
        let s = &self.shared;
        let pool = s.pool.stats();
        let (cache_hits, cache_misses, cache_evictions) =
            s.cache.as_ref().map(|c| c.totals()).unwrap_or((0, 0, 0));
        WorkerStatus {
            name: s.cfg.name.clone(),
            queue_len: s.queue.len(),
            running: s.running.load(Ordering::Relaxed),
            concurrency_limit: s.regulator.limit(),
            used_mem_mb: pool.used_mb,
            free_mem_mb: s.pool.free_mb(),
            normalized_load: s.normalized_load(),
            completed: s.completed.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            warm_hits: pool.warm_hits,
            cold_starts: s.cold_starts.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            agent_timeouts: s.agent_timeouts.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            dropped_retry_exhausted: s.dropped_retry_exhausted.load(Ordering::Relaxed),
            dropped_admission: s.admission.dropped_admission(),
            quarantine_released: s.quarantine_released.load(Ordering::Relaxed),
            lifecycle: s.lifecycle_label().to_string(),
            drain_pending: (s.queue.len() + s.running.load(Ordering::Relaxed)) as u64,
            queue_delay_ms: s.last_queue_delay_ms.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            warm_gb_s: self.warm_residency().iter().map(|(_, g)| g).sum(),
            wal_degraded: s.wal.as_ref().is_some_and(|w| w.is_degraded()),
            wal_non_durable: s.wal_non_durable.load(Ordering::Relaxed),
            wal_stall_sheds: s.wal_stall_shed.load(Ordering::Relaxed),
            wal_rotations: s.wal.as_ref().map(|w| w.io_counts().rotations).unwrap_or(0),
            wal_quarantined: s.wal_quarantined_frames.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant result-cache counters; empty while the cache is disabled.
    pub fn cache_stats(&self) -> Vec<TenantCacheStats> {
        self.shared
            .cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Warm-container residency per function, `(fqdn, GB·s)` — memory each
    /// idle pooled container holds, weighted by how long it has held it.
    /// The fleet reads this (via `/status`) to pick least-warm scale-down
    /// victims and to hand hot functions off to survivors.
    pub fn warm_residency(&self) -> Vec<(String, f64)> {
        self.shared.pool.warm_residency()
    }

    /// Per-tenant admission/serve counters; empty while admission control
    /// is disabled.
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        if !self.shared.admission.enabled() {
            return Vec::new();
        }
        self.shared.admission.snapshot()
    }

    /// Per-component latency spans (Table 1).
    pub fn spans(&self) -> &Spans {
        &self.shared.spans
    }

    /// The worker's canonical telemetry stream. Attach sinks here to tap
    /// the unified event feed (journal stages, WAL ops, lifecycle).
    pub fn telemetry(&self) -> &Arc<TelemetryBus> {
        &self.shared.telemetry
    }

    /// The flight recorder — the bounded black box of recent telemetry
    /// events, served at `GET /debug/flightrecorder`.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.shared.recorder
    }

    /// Per-kind telemetry event counts `(kind, tenant, count)` for the
    /// Prometheus exposition.
    pub fn telemetry_counts(&self) -> Vec<(String, String, u64)> {
        self.shared.tel_counts.counts()
    }

    /// The critical-path breakdown (`GET /breakdown`): stage histograms
    /// from the journaled trace milestones, Table-1 group histograms from
    /// the span registry, and per-tenant completion counts.
    pub fn breakdown(&self) -> BreakdownReport {
        let s = &self.shared;
        let traces = s.journal.recent(TRACE_CAPACITY);
        let (stages, cold, warm) = stages_from_traces(&traces);
        let invocations = stages
            .iter()
            .find(|st| st.stage == crate::breakdown::stages::E2E)
            .map(|st| st.count)
            .unwrap_or(0);
        let mut tenants: Vec<TenantBreakdown> = self
            .tenant_stats()
            .into_iter()
            .map(|t| TenantBreakdown {
                tenant: t.tenant,
                completed: t.served,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        BreakdownReport {
            source: s.cfg.name.clone(),
            invocations,
            cold,
            warm,
            stages,
            groups: groups_from_spans(&s.spans.export()),
            tenants,
        }
    }

    /// The full timeline of one invocation, if still journaled.
    pub fn trace(&self, id: u64) -> Option<TraceRecord> {
        self.shared.journal.get(id)
    }

    /// The `n` most recent invocation traces, newest first.
    pub fn recent_traces(&self, n: usize) -> Vec<TraceRecord> {
        self.shared.journal.recent(n)
    }

    /// Per-function characteristics (§3.1 data-driven policy API).
    pub fn characteristics(&self) -> &Characteristics {
        &self.shared.chars
    }

    /// Keep-alive pool statistics.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.shared.pool.stats()
    }

    /// System metrics: load averages and modelled energy (§5).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    pub fn config(&self) -> &WorkerConfig {
        &self.shared.cfg
    }

    /// Begin a graceful drain: new invocations are rejected with
    /// `ShuttingDown` (503 + `Retry-After` over HTTP) while queued and
    /// in-flight ones finish. Once idle, the worker writes a final WAL
    /// snapshot and reports `stopped` on `/status`. Idempotent; does not
    /// stop the worker's threads — use [`Worker::shutdown`] for that.
    pub fn drain(&self) {
        let s = &self.shared;
        if s.lifecycle
            .compare_exchange(
                LIFECYCLE_RUNNING,
                LIFECYCLE_DRAINING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            return;
        }
        s.emit_lifecycle("draining");
        s.snapshot_recorder("drain");
        maybe_finalize(s);
    }

    /// Hard stop simulating a crash: the WAL is poisoned first (no further
    /// record lands), queued invocations are abandoned, and no final
    /// snapshot is written — recovery must rebuild from the pre-kill log
    /// image. In-flight invocations may still execute, but their unlogged
    /// completions are replayed after restart (at-least-once execution,
    /// exactly-once accounting).
    pub fn kill(&mut self) {
        let s = &self.shared;
        s.killed.store(true, Ordering::SeqCst);
        if let Some(w) = &s.wal {
            w.poison();
            s.telemetry.emit(None, None, TelemetryKind::WalPoisoned);
        }
        s.lifecycle.store(LIFECYCLE_STOPPED, Ordering::SeqCst);
        s.emit_lifecycle("killed");
        // Freeze the black box at the moment of death — this is the dump a
        // post-mortem `GET /debug/flightrecorder` reads.
        s.snapshot_recorder("kill");
        if s.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        s.queue.close();
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        self.tasks.shutdown();
        self.destroy_tx = None;
        if let Some(d) = self.destroyer.take() {
            let _ = d.join();
        }
    }

    /// Rebuild a worker from its write-ahead log: replay the last snapshot
    /// plus tail (idempotent, deduplicated by invocation id), restore the
    /// counter baselines, tenant books, token-bucket levels, and DRR
    /// deficits, then re-enqueue every incomplete invocation with its
    /// original arrival time and tenant label. `specs` re-registers the
    /// function set — registration is control-plane configuration, not
    /// queue state, and is re-applied on boot exactly like the load
    /// balancer re-registers a re-admitted worker.
    pub fn recover(
        cfg: WorkerConfig,
        backend: Arc<dyn ContainerBackend>,
        clock: Arc<dyn Clock>,
        specs: &[FunctionSpec],
    ) -> (Worker, RecoveryReport) {
        Self::recover_with_sinks(cfg, backend, clock, specs, &[])
    }

    /// [`Worker::recover`] with telemetry sinks attached *before* the
    /// replayed invocations are re-enqueued. Replay starts executing the
    /// moment items hit the queue — a sink attached after `recover`
    /// returns races the re-execution and observes a torn stream. Stream
    /// consumers that must see the complete recovered timeline (the
    /// conformance checker) pass their sinks here.
    pub fn recover_with_sinks(
        cfg: WorkerConfig,
        backend: Arc<dyn ContainerBackend>,
        clock: Arc<dyn Clock>,
        specs: &[FunctionSpec],
        sinks: &[Arc<dyn TelemetrySink>],
    ) -> (Worker, RecoveryReport) {
        Self::recover_full(cfg, backend, clock, specs, sinks, Arc::new(RealStorage))
    }

    /// [`Worker::recover_with_sinks`] with a pluggable storage layer, so
    /// recovery-path reads (and the recovered worker's appends) run under
    /// an injected fault plan.
    pub fn recover_full(
        cfg: WorkerConfig,
        backend: Arc<dyn ContainerBackend>,
        clock: Arc<dyn Clock>,
        specs: &[FunctionSpec],
        sinks: &[Arc<dyn TelemetrySink>],
        storage: Arc<dyn Storage>,
    ) -> (Worker, RecoveryReport) {
        let st = cfg
            .lifecycle
            .wal_path
            .as_ref()
            .and_then(|p| crate::wal::replay_with(Path::new(p), storage.as_ref()).ok())
            .unwrap_or_default();
        let worker = Worker::new_with_storage(cfg, backend, clock, storage);
        for sink in sinks {
            worker.shared.telemetry.add_sink(Arc::clone(sink));
        }
        for spec in specs {
            let _ = worker.register(spec.clone());
        }
        let s = &worker.shared;
        // Fresh ids must mint above every replayed id.
        s.journal.ensure_ids_above(st.max_id);
        let c = &st.counters;
        s.completed.store(c.completed, Ordering::Relaxed);
        s.dropped.store(c.dropped, Ordering::Relaxed);
        s.failed.store(c.failed, Ordering::Relaxed);
        s.cold_starts.store(c.cold_starts, Ordering::Relaxed);
        s.retries.store(c.retries, Ordering::Relaxed);
        s.agent_timeouts.store(c.agent_timeouts, Ordering::Relaxed);
        s.quarantined.store(c.quarantined, Ordering::Relaxed);
        s.quarantine_released
            .store(c.quarantine_released, Ordering::Relaxed);
        s.dropped_retry_exhausted
            .store(c.dropped_retry_exhausted, Ordering::Relaxed);
        if s.admission.enabled() {
            s.admission.restore_counters(&st.tenants);
            for bl in &st.bucket_levels {
                s.admission.restore_bucket_level(&bl.tenant, bl.tokens);
            }
        }
        if let Some(w) = &s.wal {
            // The re-enqueued invocations are already durable in the
            // replayed prefix; they must reappear in the next snapshot
            // without re-appending their records.
            w.prime_pending(&st.pending);
        }
        let mut handles = Vec::with_capacity(st.pending.len());
        for p in &st.pending {
            s.journal.begin_recovered(p.id, &p.fqdn);
            s.journal.record(p.id, TraceEventKind::Enqueued);
            let (tx, handle) = InvocationHandle::pair();
            let item = QueuedInvocation {
                fqdn: p.fqdn.clone(),
                args: p.args.clone(),
                trace_id: p.id,
                arrived_at: p.arrived_at,
                expected_exec_ms: p.expected_exec_ms,
                iat_ms: p.iat_ms,
                expect_warm: p.expect_warm,
                tenant: p.tenant.clone(),
                tenant_weight: p.tenant_weight,
                result_tx: tx,
            };
            if s.queue.push(item).is_ok() {
                handles.push((p.id, handle));
            } else {
                // Re-enqueue over a smaller queue bound: not silently lost —
                // book the drop and retract the record.
                s.dropped.fetch_add(1, Ordering::Relaxed);
                let _ = s.wal_append(&WalRecord::Completed {
                    id: p.id,
                    ok: false,
                    tenant: None,
                });
            }
        }
        let deficits: Vec<(String, f64)> = st
            .drr_deficits
            .iter()
            .map(|d| (d.tenant.clone(), d.deficit))
            .collect();
        s.queue.restore_drr_deficits(&deficits);
        // Quarantined damage is sticky across the worker's lifetime: it is
        // what `/status` reports so an operator can see the disk lied.
        s.wal_quarantined_frames
            .store(st.torn_lines + st.corrupt_frames, Ordering::Relaxed);
        // Compact immediately: the recovered state becomes the new
        // baseline, so a second crash replays from here, not from genesis.
        wal_snapshot_now(s);
        s.emit_lifecycle("recovered");
        let report = RecoveryReport {
            replayed: handles.len(),
            handles,
            records_read: st.records_read,
            torn_lines: st.torn_lines,
            corrupt_frames: st.corrupt_frames,
            max_trace_id: st.max_id,
        };
        (worker, report)
    }

    /// Drain and stop. Queued invocations are completed first; a final
    /// compacted snapshot is written unless the worker was killed.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let s = Arc::clone(&self.shared);
        let _ = s.lifecycle.compare_exchange(
            LIFECYCLE_RUNNING,
            LIFECYCLE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        s.queue.close();
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        if !s.killed.load(Ordering::SeqCst) {
            // Final compaction + flush (the WAL flushes per append; this
            // folds the tail into one authoritative snapshot).
            wal_snapshot_now(&s);
            if s.lifecycle.swap(LIFECYCLE_STOPPED, Ordering::SeqCst) != LIFECYCLE_STOPPED {
                s.emit_lifecycle("stopped");
            }
        }
        // Destroy any containers still parked in quarantine.
        let parked: Vec<SharedContainer> = s.quarantine.lock().drain(..).map(|(c, _)| c).collect();
        for c in parked {
            s.pool.discard(c);
        }
        self.tasks.shutdown();
        self.destroy_tx = None; // disconnects the destroyer
        if let Some(d) = self.destroyer.take() {
            let _ = d.join();
        }
    }
}

/// What [`Worker::recover`] rebuilt from the write-ahead log.
pub struct RecoveryReport {
    /// Incomplete invocations re-enqueued with their original ids.
    pub replayed: usize,
    /// Completion handles for the re-enqueued invocations, by trace id, so
    /// a caller can await the replayed executions.
    pub handles: Vec<(u64, InvocationHandle)>,
    pub records_read: u64,
    /// Unparseable log lines skipped (torn tail writes).
    pub torn_lines: u64,
    /// Framed records quarantined for CRC mismatch / bad magic (bit-rot).
    pub corrupt_frames: u64,
    /// Highest trace id found in the log; fresh ids mint above it.
    pub max_trace_id: u64,
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn monitor_loop(s: Arc<Shared>) {
    loop {
        if s.killed.load(Ordering::Relaxed) {
            return;
        }
        // Fast path: time the dequeue op itself (a Table 1 row); fall back
        // to a blocking wait when the queue is momentarily empty.
        let fast = {
            let _g = s.spans.time(names::DEQUEUE);
            s.queue.try_pop()
        };
        let item = match fast.or_else(|| s.queue.pop_timeout(Duration::from_millis(50))) {
            Some(i) => i,
            None => {
                if s.queue.is_closed() {
                    return;
                }
                continue;
            }
        };
        if s.killed.load(Ordering::Relaxed) {
            // Crash semantics: abandon the popped item. Its WAL state (no
            // Dequeued/Completed record) replays it after recovery.
            return;
        }
        let dequeued_at = s.clock.now_ms();
        // Publish the observed queue delay — the overload-shedding signal.
        s.last_queue_delay_ms.store(
            dequeued_at.saturating_sub(item.arrived_at),
            Ordering::Relaxed,
        );
        s.journal.record(item.trace_id, TraceEventKind::Dequeued);
        let _ = s.wal_append(&WalRecord::Dequeued { id: item.trace_id });
        // Hold dispatch until a run slot frees up — the concurrency limit.
        let permit = s.regulator.acquire();
        let spawn_g = s.spans.time(names::SPAWN_WORKER);
        let s2 = Arc::clone(&s);
        let res = std::thread::Builder::new()
            .name("iluvatar-invoke".into())
            .spawn(move || {
                run_invocation(&s2, item, dequeued_at);
                drop(permit);
            });
        drop(spawn_g);
        if res.is_err() {
            // Thread spawn failure: treat as a drop.
            s.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn prewarm_inner(s: &Arc<Shared>, fqdn: &str) -> Result<(), InvokeError> {
    let reg = s
        .registry
        .get(fqdn)
        .ok_or_else(|| InvokeError::NotRegistered(fqdn.to_string()))?;
    let mb = reg.spec.limits.memory_mb;
    if !s.pool.reserve(mb) {
        return Err(InvokeError::NoResources);
    }
    match s.backend.create(&reg.spec) {
        Ok(c) => {
            // Pre-initialize: a prewarmed container should serve its first
            // invocation warm, so absorb init here when the backend models
            // init lazily (null backend).
            let container = Arc::new(c);
            s.pool.release(container, init_cost(s, &reg));
            Ok(())
        }
        Err(e) => {
            s.pool.unreserve(mb);
            Err(InvokeError::Backend(e.to_string()))
        }
    }
}

fn init_cost(s: &Shared, reg: &Registration) -> f64 {
    let measured = s.chars.init_cost_ms(&reg.spec.fqdn);
    if measured > 0.0 {
        measured
    } else {
        reg.spec.init_ms as f64
    }
}

/// The dispatch-side hot path.
fn run_invocation(s: &Shared, item: QueuedInvocation, dequeued_at: TimeMs) {
    s.running.fetch_add(1, Ordering::Relaxed);
    s.running_fn
        .update_or_insert(item.fqdn.clone(), || 0, |n| *n += 1);
    let outcome = execute(s, &item, dequeued_at);
    s.running_fn
        .update(&item.fqdn, |n| *n = n.saturating_sub(1));
    s.running.fetch_sub(1, Ordering::Relaxed);
    let ret_g = s.spans.time(names::RETURN_RESULTS);
    let ok = outcome.is_ok();
    match &outcome {
        Ok(result) => {
            s.completed.fetch_add(1, Ordering::Relaxed);
            s.chars
                .on_completion(&item.fqdn, result.exec_ms, result.cold);
            if s.admission.enabled() {
                s.admission
                    .on_served(item.tenant.as_deref().unwrap_or(DEFAULT_TENANT));
            }
        }
        Err(InvokeError::NoResources) => {
            s.dropped.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            s.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Book the completion before the client sees it: once this record
    // lands the invocation will never be replayed. An unlogged completion
    // (crash in between) is re-executed on recovery — at-least-once
    // execution, exactly-once accounting.
    let _ = s.wal_append(&WalRecord::Completed {
        id: item.trace_id,
        ok,
        tenant: item.tenant.clone(),
    });
    let _ = item.result_tx.send(outcome);
    s.journal
        .record(item.trace_id, TraceEventKind::ResultReturned { ok });
    drop(ret_g);
    if s.wal.as_ref().is_some_and(|w| w.snapshot_due()) {
        wal_snapshot_now(s);
    }
    maybe_finalize(s);
}

/// The WAL image of a queue item (shared between the enqueue and bypass
/// paths).
fn pending_of(item: &QueuedInvocation, dequeued: bool) -> PendingInvocation {
    PendingInvocation {
        id: item.trace_id,
        fqdn: item.fqdn.clone(),
        args: item.args.clone(),
        tenant: item.tenant.clone(),
        tenant_weight: item.tenant_weight,
        arrived_at: item.arrived_at,
        expected_exec_ms: item.expected_exec_ms,
        iat_ms: item.iat_ms,
        expect_warm: item.expect_warm,
        dequeued,
    }
}

/// Append a compacted snapshot of all recoverable state. The state reads
/// run under the WAL writer lock (see [`Wal::snapshot_with`]) so no
/// mutation record can interleave between reading the live counters and
/// writing the snapshot.
fn wal_snapshot_now(s: &Shared) {
    let Some(wal) = &s.wal else { return };
    wal.snapshot_with(|| WalSnapshot {
        pending: Vec::new(), // filled from the WAL's own book
        counters: CounterBaselines {
            completed: s.completed.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            cold_starts: s.cold_starts.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            agent_timeouts: s.agent_timeouts.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            quarantine_released: s.quarantine_released.load(Ordering::Relaxed),
            dropped_retry_exhausted: s.dropped_retry_exhausted.load(Ordering::Relaxed),
        },
        tenants: if s.admission.enabled() {
            s.admission.snapshot()
        } else {
            Vec::new()
        },
        bucket_levels: s
            .admission
            .bucket_levels()
            .into_iter()
            .map(|(tenant, tokens)| BucketLevel { tenant, tokens })
            .collect(),
        drr_deficits: s
            .queue
            .drr_deficits()
            .into_iter()
            .map(|(tenant, deficit)| DrrDeficit { tenant, deficit })
            .collect(),
        quarantine: s
            .quarantine
            .lock()
            .iter()
            .map(|(c, _)| c.fqdn.clone())
            .collect(),
    });
}

/// Drain completion check: once draining and idle (nothing queued, running,
/// retrying, or incomplete in the WAL book), write the final snapshot and
/// move to Stopped. Called from the completion path and the periodic
/// metrics task, so a drain with an empty queue still terminates.
fn maybe_finalize(s: &Shared) {
    if s.lifecycle.load(Ordering::SeqCst) != LIFECYCLE_DRAINING {
        return;
    }
    if !s.queue.is_empty()
        || s.running.load(Ordering::Relaxed) > 0
        || s.retrying.load(Ordering::Relaxed) > 0
    {
        return;
    }
    if let Some(w) = &s.wal {
        if w.pending_len() > 0 {
            return;
        }
    }
    if s.lifecycle
        .compare_exchange(
            LIFECYCLE_DRAINING,
            LIFECYCLE_STOPPED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_ok()
    {
        wal_snapshot_now(s);
        s.emit_lifecycle("stopped");
    }
}

/// Release quarantined containers whose TTL expired back to the pool. The
/// next invocation probes the container; a still-bad one fails again and is
/// re-quarantined.
fn release_expired_quarantine(s: &Shared) {
    let now = s.clock.now_ms();
    let expired: Vec<SharedContainer> = {
        let mut parked = s.quarantine.lock();
        let mut out = Vec::new();
        let mut i = 0;
        while i < parked.len() {
            if parked[i].1 <= now {
                out.push(parked.remove(i).0);
            } else {
                i += 1;
            }
        }
        out
    };
    for c in expired {
        let init = s
            .registry
            .get(&c.fqdn)
            .map(|r| init_cost(s, &r))
            .unwrap_or(0.0);
        s.pool.release(c, init);
        s.quarantine_released.fetch_add(1, Ordering::Relaxed);
    }
}

/// One invocation, hardened: transient backend failures (cold-start
/// failures, agent errors, agent timeouts) are retried on a **fresh**
/// container with seeded exponential backoff — the failed container was
/// quarantined by the attempt. The retry budget is bounded three ways:
/// `max_retries`, the per-invocation deadline, and a saturation shed that
/// fails fast when too many invocations are already waiting out backoffs
/// (a fault storm must degrade, not amplify).
fn execute(
    s: &Shared,
    item: &QueuedInvocation,
    dequeued_at: TimeMs,
) -> Result<InvocationResult, InvokeError> {
    let res = &s.cfg.resilience;
    if res.max_retries == 0 {
        return attempt_invoke(s, item, dequeued_at);
    }
    // Seeding with the trace id keeps the whole schedule deterministic per
    // invocation while decorrelating concurrent retriers.
    let backoff = Backoff::new(
        BackoffConfig {
            base_ms: res.backoff_base_ms,
            cap_ms: res.backoff_cap_ms,
            max_retries: res.max_retries,
            jitter: res.backoff_jitter,
            deadline_ms: res.invoke_deadline_ms,
        },
        item.trace_id,
    );
    let deadline = (res.invoke_deadline_ms > 0).then(|| item.arrived_at + res.invoke_deadline_ms);
    let mut attempt: u32 = 0;
    loop {
        let err = match attempt_invoke(s, item, dequeued_at) {
            Ok(r) => return Ok(r),
            // Backend failures are transient by assumption (the container
            // was quarantined); everything else is a control-plane verdict.
            Err(e @ InvokeError::Backend(_)) => e,
            Err(e) => return Err(e),
        };
        if attempt >= res.max_retries {
            return retries_exhausted(s, item, err);
        }
        let shed_at = ((s.regulator.limit() as f64) * res.retry_saturation).max(1.0) as usize;
        if s.retrying.load(Ordering::Relaxed) >= shed_at {
            return retries_exhausted(s, item, err);
        }
        let delay = backoff.delay_ms(attempt);
        if let Some(d) = deadline {
            if s.clock.now_ms().saturating_add(delay) >= d {
                return retries_exhausted(s, item, err);
            }
        }
        s.journal.record(
            item.trace_id,
            TraceEventKind::RetryScheduled {
                attempt,
                delay_ms: delay,
            },
        );
        s.retries.fetch_add(1, Ordering::Relaxed);
        s.retrying.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(delay));
        s.retrying.fetch_sub(1, Ordering::Relaxed);
        attempt += 1;
    }
}

fn retries_exhausted(
    s: &Shared,
    item: &QueuedInvocation,
    err: InvokeError,
) -> Result<InvocationResult, InvokeError> {
    s.dropped_retry_exhausted.fetch_add(1, Ordering::Relaxed);
    s.journal
        .record(item.trace_id, TraceEventKind::RetriesExhausted);
    Err(err)
}

fn attempt_invoke(
    s: &Shared,
    item: &QueuedInvocation,
    dequeued_at: TimeMs,
) -> Result<InvocationResult, InvokeError> {
    let reg = s
        .registry
        .get(&item.fqdn)
        .ok_or_else(|| InvokeError::NotRegistered(item.fqdn.clone()))?;

    // --- acquire_container: warm hit or cold start -----------------------
    let acq_g = s.spans.time(names::ACQUIRE_CONTAINER);
    let lock_g = s.spans.time(names::TRY_LOCK_CONTAINER);
    let warm = s.pool.acquire(&item.fqdn);
    drop(lock_g);
    let (container, cold) = match warm {
        Some(c) => (c, false),
        None => {
            // Herd suppression (§4): if another invocation of this function
            // is running, briefly wait for its warm container rather than
            // paying a concurrent ("spawn start") cold start.
            let herd_ms = s.cfg.queue.herd_wait_ms;
            let mut herd_hit = None;
            if herd_ms > 0 && s.running_fn.get(&item.fqdn).unwrap_or(0) > 1 {
                let deadline = s.clock.now_ms() + herd_ms;
                while s.clock.now_ms() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                    if let Some(c) = s.pool.acquire(&item.fqdn) {
                        herd_hit = Some(c);
                        break;
                    }
                }
            }
            if let Some(c) = herd_hit {
                drop(acq_g);
                s.journal.record(
                    item.trace_id,
                    TraceEventKind::ContainerAcquired { cold: false },
                );
                return finish_invoke(s, item, dequeued_at, c, false);
            }
            let mb = reg.spec.limits.memory_mb;
            if !s.pool.reserve(mb) {
                drop(acq_g);
                return Err(InvokeError::NoResources);
            }
            match s.backend.create(&reg.spec) {
                Ok(c) => {
                    s.cold_starts.fetch_add(1, Ordering::Relaxed);
                    (Arc::new(c), true)
                }
                Err(e) => {
                    s.pool.unreserve(mb);
                    drop(acq_g);
                    return Err(InvokeError::Backend(e.to_string()));
                }
            }
        }
    };
    drop(acq_g);
    s.journal
        .record(item.trace_id, TraceEventKind::ContainerAcquired { cold });
    finish_invoke(s, item, dequeued_at, container, cold)
}

/// The post-acquisition half of the hot path: agent round trip, container
/// return, result assembly.
fn finish_invoke(
    s: &Shared,
    item: &QueuedInvocation,
    dequeued_at: TimeMs,
    container: SharedContainer,
    cold: bool,
) -> Result<InvocationResult, InvokeError> {
    let reg = s
        .registry
        .get(&item.fqdn)
        .ok_or_else(|| InvokeError::NotRegistered(item.fqdn.clone()))?;
    // --- agent communication ---------------------------------------------
    let prep_g = s.spans.time(names::PREPARE_INVOKE);
    let args: &str = &item.args;
    drop(prep_g);
    let call_g = s.spans.time(names::CALL_CONTAINER);
    s.journal.record(item.trace_id, TraceEventKind::AgentCalled);
    let trace_hex = format!("{:016x}", item.trace_id);
    let tenant = item.tenant.as_deref();
    let timeout_ms = s.cfg.resilience.agent_timeout_ms;
    let invoked = if timeout_ms == 0 {
        s.backend
            .invoke_ctx(&container, args, Some(&trace_hex), tenant)
    } else {
        // Bound the agent hop: run the call on a helper thread and abandon
        // it on timeout. The container is quarantined below, so the orphaned
        // call can only touch a container already leaving the pool.
        let (tx, rx) = bounded(1);
        let backend = Arc::clone(&s.backend);
        let c2 = Arc::clone(&container);
        let args2 = args.to_string();
        let hex2 = trace_hex.clone();
        let tenant2 = item.tenant.clone();
        let spawned = std::thread::Builder::new()
            .name("iluvatar-agent-call".into())
            .spawn(move || {
                let _ = tx.send(backend.invoke_ctx(&c2, &args2, Some(&hex2), tenant2.as_deref()));
            });
        match spawned {
            Err(_) => s
                .backend
                .invoke_ctx(&container, args, Some(&trace_hex), tenant),
            Ok(_) => match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
                Ok(r) => r,
                Err(_) => {
                    s.agent_timeouts.fetch_add(1, Ordering::Relaxed);
                    s.journal
                        .record(item.trace_id, TraceEventKind::AgentTimeout);
                    Err(BackendError::InvokeFailed(format!(
                        "agent call timed out after {timeout_ms}ms"
                    )))
                }
            },
        }
    };
    drop(call_g);
    let output = match invoked {
        Ok(o) => o,
        Err(e) => {
            // A failed container is not returned to the pool: quarantine it.
            s.quarantined.fetch_add(1, Ordering::Relaxed);
            s.journal
                .record(item.trace_id, TraceEventKind::ContainerQuarantined);
            let ttl = s.cfg.resilience.quarantine_ttl_ms;
            if ttl == 0 {
                // No TTL configured: destroy immediately (memory freed,
                // container routed to the destroyer).
                s.pool.discard(container);
            } else {
                // Park it; the sweep releases it back to the pool after the
                // TTL so a transient agent hiccup doesn't permanently
                // shrink the pool.
                let until = s.clock.now_ms() + ttl;
                s.quarantine.lock().push((container, until));
            }
            return Err(InvokeError::Backend(e.to_string()));
        }
    };
    let dl_g = s.spans.time(names::DOWNLOAD_RESULT);
    let body = output.body;
    drop(dl_g);

    // --- return container to keep-alive pool ------------------------------
    let ret_g = s.spans.time(names::RETURN_CONTAINER);
    s.pool.release(container, init_cost(s, &reg));
    drop(ret_g);

    let now = s.clock.now_ms();
    Ok(InvocationResult {
        body,
        exec_ms: output.exec_ms,
        e2e_ms: now.saturating_sub(item.arrived_at),
        cold,
        queue_ms: dequeued_at.saturating_sub(item.arrived_at),
        arrived_at: item.arrived_at,
        trace_id: item.trace_id,
        tenant: item.tenant.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KeepalivePolicyKind, QueuePolicyKind};
    use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
    use iluvatar_containers::ResourceLimits;
    use iluvatar_sync::SystemClock;

    /// A worker over the null backend with real (system) time, with all
    /// modelled latencies shrunk 100× so tests run in milliseconds.
    fn test_worker(cfg: WorkerConfig) -> Worker {
        let clock = SystemClock::shared();
        let backend = Arc::new(SimBackend::new(
            Arc::clone(&clock),
            SimBackendConfig {
                time_scale: 0.05,
                ..Default::default()
            },
        ));
        Worker::new(cfg, backend, clock)
    }

    fn spec(name: &str, warm: u64, init: u64, mb: u64) -> FunctionSpec {
        FunctionSpec::new(name, "1")
            .with_timing(warm, init)
            .with_limits(ResourceLimits {
                cpus: 1.0,
                memory_mb: mb,
            })
    }

    #[test]
    fn invoke_unregistered_fails() {
        let w = test_worker(WorkerConfig::for_testing());
        assert!(matches!(
            w.invoke("ghost-1", "{}"),
            Err(InvokeError::NotRegistered(_))
        ));
    }

    #[test]
    fn cold_then_warm_invocation() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 100, 900, 128)).unwrap();
        let r1 = w.invoke("f-1", "{}").unwrap();
        assert!(r1.cold, "first invocation is a cold start");
        assert_eq!(r1.exec_ms, 50, "cold = (warm + init) at 0.05 time scale");
        let r2 = w.invoke("f-1", "{}").unwrap();
        assert!(!r2.cold, "second hits the warm container");
        assert_eq!(r2.exec_ms, 5, "warm at 0.05 time scale");
        let st = w.status();
        assert_eq!(st.completed, 2);
        assert_eq!(st.cold_starts, 1);
        assert_eq!(st.warm_hits, 1);
    }

    #[test]
    fn prewarm_absorbs_cold_start() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 100, 900, 128)).unwrap();
        w.prewarm("f-1").unwrap();
        let r = w.invoke("f-1", "{}").unwrap();
        assert!(!r.cold, "prewarmed container serves a warm start");
        // Note: the null backend charges init on the first *invoke*; the
        // control plane still counts it warm because no sandbox was created
        // on the critical path.
        assert_eq!(w.status().cold_starts, 0);
    }

    #[test]
    fn async_invoke_returns_immediately() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 200, 0, 128)).unwrap();
        let h = w.async_invoke("f-1", "{}").unwrap();
        let r = h.wait().unwrap();
        assert_eq!(r.exec_ms, 10, "200ms at 0.05 time scale");
    }

    #[test]
    fn concurrent_invocations_bounded_by_limit() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.concurrency.limit = 2;
        let w = Arc::new(test_worker(cfg));
        w.register(spec("f", 500, 0, 64)).unwrap();
        let handles: Vec<_> = (0..6)
            .map(|_| w.async_invoke("f-1", "{}").unwrap())
            .collect();
        // While in flight, running may never exceed the limit.
        let mut peak = 0;
        for _ in 0..50 {
            peak = peak.max(w.status().running);
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in handles {
            h.wait().unwrap();
        }
        assert!(peak <= 2, "running peaked at {peak} > limit 2");
        assert_eq!(w.status().completed, 6);
    }

    #[test]
    fn queue_full_drops() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.queue.max_len = 1;
        cfg.concurrency.limit = 1;
        let w = test_worker(cfg);
        w.register(spec("f", 300, 0, 64)).unwrap();
        let _h1 = w.async_invoke("f-1", "{}").unwrap();
        // Fill: one running (may still be queued briefly), one queued, rest dropped.
        let mut dropped = 0;
        let mut handles = Vec::new();
        for _ in 0..12 {
            match w.async_invoke("f-1", "{}") {
                Ok(h) => handles.push(h),
                Err(InvokeError::QueueFull) => dropped += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(dropped > 0, "backpressure must trigger");
        assert!(w.status().dropped >= dropped as u64);
    }

    #[test]
    fn memory_exhaustion_drops_invocation() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.memory_mb = 100; // too small for even one container
        let w = test_worker(cfg);
        w.register(spec("f", 10, 0, 128)).unwrap();
        assert!(matches!(
            w.invoke("f-1", "{}"),
            Err(InvokeError::NoResources)
        ));
        assert_eq!(w.status().dropped, 1);
    }

    #[test]
    fn keepalive_eviction_under_memory_pressure() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.memory_mb = 256;
        cfg.free_buffer_mb = 0;
        cfg.keepalive = KeepalivePolicyKind::Lru;
        let w = test_worker(cfg);
        w.register(spec("a", 10, 0, 128)).unwrap();
        w.register(spec("b", 10, 0, 128)).unwrap();
        w.register(spec("c", 10, 0, 128)).unwrap();
        w.invoke("a-1", "{}").unwrap();
        w.invoke("b-1", "{}").unwrap();
        w.invoke("c-1", "{}").unwrap(); // forces eviction of a
        let r = w.invoke("b-1", "{}").unwrap();
        assert!(!r.cold, "b stayed warm");
        let r = w.invoke("a-1", "{}").unwrap();
        assert!(r.cold, "a was evicted (LRU)");
    }

    #[test]
    fn bypass_short_functions() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.queue.bypass_threshold_ms = 1000;
        cfg.queue.policy = QueuePolicyKind::Eedf;
        let w = test_worker(cfg);
        w.register(spec("tiny", 100, 0, 64)).unwrap();
        w.invoke("tiny-1", "{}").unwrap(); // first: unseen, expected 0 → queued
        w.invoke("tiny-1", "{}").unwrap(); // now known-short → bypass
        w.invoke("tiny-1", "{}").unwrap();
        let s = &w.shared;
        assert!(s.queue.bypassed() >= 2, "bypassed {}", s.queue.bypassed());
    }

    #[test]
    fn status_reports_load() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 50, 0, 64)).unwrap();
        let st = w.status();
        assert_eq!(st.name, "test-worker");
        assert_eq!(st.normalized_load, 0.0);
        assert_eq!(st.free_mem_mb, 1024);
        let _h: Vec<_> = (0..4)
            .map(|_| w.async_invoke("f-1", "{}").unwrap())
            .collect();
        // Some load should be visible while in flight (best effort).
        let _ = w.status();
    }

    #[test]
    fn spans_populated_after_invocations() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 20, 0, 64)).unwrap();
        for _ in 0..3 {
            w.invoke("f-1", "{}").unwrap();
        }
        for name in [
            names::INVOKE,
            names::SYNC_INVOKE,
            names::ENQUEUE_INVOCATION,
            names::ACQUIRE_CONTAINER,
            names::CALL_CONTAINER,
            names::RETURN_CONTAINER,
            names::RETURN_RESULTS,
        ] {
            assert!(
                w.spans().summary(name).is_some(),
                "span {name} missing after invocations"
            );
        }
    }

    #[test]
    fn shutdown_then_invoke_fails() {
        let mut w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 10, 0, 64)).unwrap();
        w.invoke("f-1", "{}").unwrap();
        w.shutdown();
        assert!(matches!(
            w.invoke("f-1", "{}"),
            Err(InvokeError::ShuttingDown)
        ));
    }

    #[test]
    fn herd_suppression_waits_for_warm_container() {
        // Limit 2 so the herd invocations can run concurrently; the herd
        // waiter should reuse the first invocation's container instead of
        // paying a second ("spawn start") cold start.
        let mut cfg = WorkerConfig::for_testing();
        cfg.queue.herd_wait_ms = 2_000;
        cfg.concurrency.limit = 4;
        let w = test_worker(cfg);
        w.register(spec("f", 1000, 4000, 128)).unwrap();
        // Two near-simultaneous invocations of the same cold function.
        let h1 = w.async_invoke("f-1", "{}").unwrap();
        let h2 = w.async_invoke("f-1", "{}").unwrap();
        let r1 = h1.wait().unwrap();
        let r2 = h2.wait().unwrap();
        let colds = [r1.cold, r2.cold].iter().filter(|&&c| c).count();
        assert_eq!(
            colds, 1,
            "herd suppression avoids the concurrent cold start"
        );
        assert_eq!(w.status().cold_starts, 1);
    }

    #[test]
    fn herd_disabled_spawn_starts() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.queue.herd_wait_ms = 0;
        cfg.concurrency.limit = 4;
        let w = test_worker(cfg);
        w.register(spec("f", 1000, 4000, 128)).unwrap();
        let h1 = w.async_invoke("f-1", "{}").unwrap();
        let h2 = w.async_invoke("f-1", "{}").unwrap();
        let r1 = h1.wait().unwrap();
        let r2 = h2.wait().unwrap();
        assert!(r1.cold && r2.cold, "without suppression both cold-start");
    }

    #[test]
    fn predictive_prewarm_with_hist_policy() {
        let mut cfg = WorkerConfig::for_testing();
        cfg.keepalive = KeepalivePolicyKind::Hist;
        cfg.prewarm_horizon_ms = 200;
        let w = test_worker(cfg);
        w.register(spec("p", 100, 2000, 128)).unwrap();
        // HIST needs enough arrivals to call the function predictable; it
        // only observes arrivals through invoke, so the prediction test is
        // limited to: recommendations are empty for unpredictable fns and
        // the periodic task doesn't crash while running.
        for _ in 0..3 {
            w.invoke("p-1", "{}").unwrap();
        }
        std::thread::sleep(Duration::from_millis(300));
        assert!(w.status().completed == 3);
    }

    #[test]
    fn metrics_collected_in_background() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 200, 0, 64)).unwrap();
        w.invoke("f-1", "{}").unwrap();
        std::thread::sleep(Duration::from_millis(600));
        let m = w.metrics();
        assert!(m.samples >= 1, "metrics task must run");
        assert!(m.power_w >= 100.0, "at least idle power");
    }

    #[test]
    fn admission_throttles_rate_limited_tenant() {
        use iluvatar_admission::{AdmissionConfig, TenantSpec};
        let mut cfg = WorkerConfig::for_testing();
        // Burst of 1 and a negligible refill rate: the first invocation is
        // admitted, the second deterministically throttled.
        cfg.admission =
            AdmissionConfig::enabled_with(vec![TenantSpec::new("free").with_rate(0.001, 1.0)]);
        let w = test_worker(cfg);
        w.register(spec("f", 20, 0, 64)).unwrap();
        let r = w.invoke_tenant("f-1", "{}", Some("free")).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("free"));
        match w.invoke_tenant("f-1", "{}", Some("free")) {
            Err(InvokeError::Throttled(t)) => assert_eq!(t, "free"),
            other => panic!("expected Throttled, got {other:?}"),
        }
        let st = w.status();
        assert_eq!(st.dropped_admission, 1);
        let tstats = w.tenant_stats();
        let free = tstats.iter().find(|t| t.tenant == "free").unwrap();
        assert_eq!(free.admitted, 1);
        assert_eq!(free.throttled, 1);
        assert_eq!(free.served, 1);
        // Unlimited tenants are unaffected.
        w.invoke_tenant("f-1", "{}", Some("other")).unwrap();
    }

    #[test]
    fn admission_sheds_best_effort_but_not_guaranteed() {
        use iluvatar_admission::{AdmissionConfig, PriorityClass, TenantSpec};
        let mut cfg = WorkerConfig::for_testing();
        cfg.concurrency.limit = 1;
        cfg.admission = AdmissionConfig {
            enabled: true,
            shed_queue_delay_ms: 5,
            tenants: vec![
                TenantSpec::new("paid").with_class(PriorityClass::Guaranteed),
                TenantSpec::new("free"),
            ],
        };
        let w = test_worker(cfg);
        w.register(spec("slow", 1500, 0, 64)).unwrap(); // 75ms at 0.05 scale
                                                        // Saturate: one runs, the rest queue behind it.
        let handles: Vec<_> = (0..4)
            .map(|_| w.async_invoke_tenant("slow-1", "{}", Some("paid")).unwrap())
            .collect();
        // Wait until a queued invocation has been dequeued, so the observed
        // queue delay (≥ one execution, 75ms) exceeds the 5ms threshold.
        for _ in 0..500 {
            if w.status().completed >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(w.status().completed >= 2, "saturation did not develop");
        match w.invoke_tenant("slow-1", "{}", Some("free")) {
            Err(InvokeError::Shed(t)) => assert_eq!(t, "free"),
            other => panic!("expected Shed for best-effort, got {other:?}"),
        }
        // Guaranteed class is still admitted under the same overload.
        let h = w.async_invoke_tenant("slow-1", "{}", Some("paid")).unwrap();
        for hh in handles {
            hh.wait().unwrap();
        }
        h.wait().unwrap();
        let tstats = w.tenant_stats();
        let freet = tstats.iter().find(|t| t.tenant == "free").unwrap();
        let paid = tstats.iter().find(|t| t.tenant == "paid").unwrap();
        assert_eq!(freet.shed, 1);
        assert_eq!(paid.shed, 0);
        assert_eq!(paid.served, 5);
    }

    #[test]
    fn registration_tenant_is_the_default_label() {
        use iluvatar_admission::AdmissionConfig;
        let mut cfg = WorkerConfig::for_testing();
        cfg.admission = AdmissionConfig {
            enabled: true,
            ..Default::default()
        };
        let w = test_worker(cfg);
        w.register(spec("f", 20, 0, 64).with_tenant("acme"))
            .unwrap();
        let r = w.invoke("f-1", "{}").unwrap();
        assert_eq!(
            r.tenant.as_deref(),
            Some("acme"),
            "spec tenant used by default"
        );
        // An explicit per-invocation label overrides the registration.
        let r = w.invoke_tenant("f-1", "{}", Some("umbrella")).unwrap();
        assert_eq!(r.tenant.as_deref(), Some("umbrella"));
        let tstats = w.tenant_stats();
        assert!(tstats.iter().any(|t| t.tenant == "acme" && t.served == 1));
        assert!(tstats
            .iter()
            .any(|t| t.tenant == "umbrella" && t.served == 1));
    }

    #[test]
    fn admission_disabled_reports_no_tenants() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 20, 0, 64)).unwrap();
        let r = w.invoke_tenant("f-1", "{}", Some("acme")).unwrap();
        // The label still threads through to the result and agent hop...
        assert_eq!(r.tenant.as_deref(), Some("acme"));
        // ...but no accounting happens on the disabled hot path.
        assert!(w.tenant_stats().is_empty());
        assert_eq!(w.status().dropped_admission, 0);
    }

    #[test]
    fn drr_worker_serves_tenants_by_weight() {
        use iluvatar_admission::{AdmissionConfig, TenantSpec};
        let mut cfg = WorkerConfig::for_testing();
        cfg.queue.policy = QueuePolicyKind::Drr;
        cfg.concurrency.limit = 1;
        cfg.admission = AdmissionConfig::enabled_with(vec![
            TenantSpec::new("gold").with_weight(3.0),
            TenantSpec::new("bronze").with_weight(1.0),
        ]);
        let w = test_worker(cfg);
        w.register(spec("f", 200, 0, 64)).unwrap();
        // Prime the characteristics store so queued items carry a cost.
        w.invoke_tenant("f-1", "{}", Some("gold")).unwrap();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let t = if i % 2 == 0 { "gold" } else { "bronze" };
                w.async_invoke_tenant("f-1", "{}", Some(t)).unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let tstats = w.tenant_stats();
        let gold = tstats.iter().find(|t| t.tenant == "gold").unwrap();
        let bronze = tstats.iter().find(|t| t.tenant == "bronze").unwrap();
        // Everything completes eventually (work-conserving, no starvation).
        assert_eq!(gold.served + bronze.served, 13);
    }

    #[test]
    fn characteristics_learned_from_invocations() {
        let w = test_worker(WorkerConfig::for_testing());
        w.register(spec("f", 100, 400, 64)).unwrap();
        w.invoke("f-1", "{}").unwrap();
        w.invoke("f-1", "{}").unwrap();
        let s = w.characteristics().summary("f-1");
        assert_eq!(s.invocations, 2);
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.cold_ms, 25.0, "(100+400)ms at 0.05 scale");
        assert_eq!(s.warm_ms, 5.0);
        assert_eq!(w.characteristics().init_cost_ms("f-1"), 20.0);
    }
}
