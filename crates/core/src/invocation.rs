//! Invocation request/response types and the async invocation handle.

use crossbeam::channel::{bounded, Receiver, Sender};
use iluvatar_sync::TimeMs;

/// Why an invocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// The function was never registered.
    NotRegistered(String),
    /// The queue hit its length bound — explicit backpressure.
    QueueFull,
    /// The container backend failed the invocation.
    Backend(String),
    /// No memory could be freed for a cold start — the request is dropped.
    NoResources,
    /// The worker is shutting down.
    ShuttingDown,
    /// Rejected by admission control: the tenant's rate limit fired.
    Throttled(String),
    /// Rejected by admission control: best-effort tenant shed under
    /// overload (queue delay past the configured threshold).
    Shed(String),
    /// The write-ahead log cannot accept the record right now (stalling or
    /// erroring disk with `on_error = reject`). Retryable: the next append
    /// re-runs the recovery ladder from the top.
    WalUnavailable,
}

impl std::fmt::Display for InvokeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvokeError::NotRegistered(f_) => write!(f, "function not registered: {f_}"),
            InvokeError::QueueFull => write!(f, "invocation queue full"),
            InvokeError::Backend(m) => write!(f, "backend error: {m}"),
            InvokeError::NoResources => write!(f, "insufficient memory for cold start"),
            InvokeError::ShuttingDown => write!(f, "worker shutting down"),
            InvokeError::Throttled(t) => write!(f, "tenant throttled: {t}"),
            InvokeError::Shed(t) => write!(f, "tenant shed under overload: {t}"),
            InvokeError::WalUnavailable => write!(f, "write-ahead log unavailable"),
        }
    }
}

impl std::error::Error for InvokeError {}

/// The completed invocation, with the latency breakdown of Figure 3:
/// end-to-end *flow time* = control-plane overhead + execution time.
#[derive(Debug, Clone)]
pub struct InvocationResult {
    /// Function result payload.
    pub body: String,
    /// Function-code execution time, ms (the *stretch* denominator).
    pub exec_ms: u64,
    /// End-to-end latency from `invoke` entry to result, ms.
    pub e2e_ms: u64,
    /// Whether this run paid a cold start.
    pub cold: bool,
    /// Time spent queued, ms (part of the overhead).
    pub queue_ms: u64,
    /// Arrival timestamp (worker clock).
    pub arrived_at: TimeMs,
    /// End-to-end trace id; redeem via `GET /trace/{id}` on the worker.
    pub trace_id: u64,
    /// Tenant the invocation was accounted to (None when admission control
    /// is disabled and no label was supplied).
    pub tenant: Option<String>,
}

impl InvocationResult {
    /// Control-plane overhead: everything that was not function execution.
    pub fn overhead_ms(&self) -> u64 {
        self.e2e_ms.saturating_sub(self.exec_ms)
    }

    /// The paper's *stretch*: end-to-end latency normalized by execution
    /// time. Returns `None` for zero-length executions.
    pub fn stretch(&self) -> Option<f64> {
        if self.exec_ms == 0 {
            None
        } else {
            Some(self.e2e_ms as f64 / self.exec_ms as f64)
        }
    }
}

/// Sender half for delivering an invocation outcome (the queue item's
/// completion channel).
pub type ResultSender = Sender<Result<InvocationResult, InvokeError>>;

/// Handle returned by `async_invoke`; redeem with [`InvocationHandle::wait`].
pub struct InvocationHandle {
    rx: Receiver<Result<InvocationResult, InvokeError>>,
}

impl InvocationHandle {
    /// Create a connected (sender, handle) pair — public so external queue
    /// drivers and benchmarks can construct `QueuedInvocation`s.
    pub fn pair() -> (ResultSender, Self) {
        let (tx, rx) = bounded(1);
        (tx, Self { rx })
    }

    /// Block until the invocation completes.
    pub fn wait(self) -> Result<InvocationResult, InvokeError> {
        self.rx.recv().unwrap_or(Err(InvokeError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while still in flight.
    pub fn poll(&self) -> Option<Result<InvocationResult, InvokeError>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(e2e: u64, exec: u64) -> InvocationResult {
        InvocationResult {
            body: String::new(),
            exec_ms: exec,
            e2e_ms: e2e,
            cold: false,
            queue_ms: 0,
            arrived_at: 0,
            trace_id: 0,
            tenant: None,
        }
    }

    #[test]
    fn overhead_and_stretch() {
        let r = result(150, 100);
        assert_eq!(r.overhead_ms(), 50);
        assert_eq!(r.stretch(), Some(1.5));
        let zero = result(10, 0);
        assert_eq!(zero.stretch(), None);
        assert_eq!(zero.overhead_ms(), 10);
    }

    #[test]
    fn overhead_saturates() {
        // exec reported larger than e2e (clock skew) must not underflow.
        let r = result(5, 9);
        assert_eq!(r.overhead_ms(), 0);
    }

    #[test]
    fn handle_wait_receives() {
        let (tx, handle) = InvocationHandle::pair();
        tx.send(Ok(result(10, 5))).unwrap();
        let r = handle.wait().unwrap();
        assert_eq!(r.e2e_ms, 10);
    }

    #[test]
    fn handle_poll_pending_then_ready() {
        let (tx, handle) = InvocationHandle::pair();
        assert!(handle.poll().is_none());
        tx.send(Err(InvokeError::QueueFull)).unwrap();
        assert_eq!(handle.poll().unwrap().unwrap_err(), InvokeError::QueueFull);
    }

    #[test]
    fn dropped_sender_means_shutdown() {
        let (tx, handle) = InvocationHandle::pair();
        drop(tx);
        assert_eq!(handle.wait().unwrap_err(), InvokeError::ShuttingDown);
    }
}
