//! The container pool — the keep-alive cache.
//!
//! §3.3: "The primary and exemplary application of resource caching is in
//! the container keep-alive cache that Ilúvatar workers maintain. ... We
//! maintain a pool of all in-use and available containers for each
//! registered function." Eviction runs periodically in the background, off
//! the critical path, keeping a free-memory buffer ahead of bursts — "this
//! is similar to the Linux kernel page-cache implementation."
//!
//! The pool's memory accounting covers in-use *and* idle containers; only
//! idle (warm, available) containers are eviction candidates.

use crate::policies::{EntryMeta, KeepalivePolicy};
use iluvatar_containers::types::SharedContainer;
use iluvatar_sync::{Clock, ShardedMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// An idle warm container plus its cache metadata.
struct PoolEntry {
    container: SharedContainer,
    meta: EntryMeta,
}

/// Callback invoked with each evicted container (the worker wires backend
/// destruction here, typically via the background task pool).
pub type EvictSink = Arc<dyn Fn(SharedContainer) + Send + Sync>;

/// Counters for pool observability.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    pub warm_hits: u64,
    pub cold_misses: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub used_mb: u64,
    pub idle_mb: u64,
    pub idle_containers: usize,
}

/// The keep-alive container pool.
pub struct ContainerPool {
    capacity_mb: u64,
    /// Memory of all live containers (idle + in-use), MB.
    used_mb: AtomicI64,
    /// Memory of idle containers only, MB.
    idle_mb: AtomicI64,
    /// Idle containers per function.
    slots: ShardedMap<String, Arc<Mutex<Vec<PoolEntry>>>>,
    /// Per-function access frequency (the GD `Freq` term).
    freq: ShardedMap<String, u64>,
    policy: Mutex<Box<dyn KeepalivePolicy>>,
    clock: Arc<dyn Clock>,
    evict_sink: EvictSink,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

impl ContainerPool {
    pub fn new(
        capacity_mb: u64,
        policy: Box<dyn KeepalivePolicy>,
        clock: Arc<dyn Clock>,
        evict_sink: EvictSink,
    ) -> Self {
        Self {
            capacity_mb,
            used_mb: AtomicI64::new(0),
            idle_mb: AtomicI64::new(0),
            slots: ShardedMap::new(),
            freq: ShardedMap::new(),
            policy: Mutex::new(policy),
            clock,
            evict_sink,
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
        }
    }

    fn slot(&self, fqdn: &str) -> Arc<Mutex<Vec<PoolEntry>>> {
        if let Some(s) = self.slots.get(fqdn) {
            return s;
        }
        self.slots.update_or_insert(
            fqdn.to_string(),
            || Arc::new(Mutex::new(Vec::new())),
            |s| Arc::clone(s),
        )
    }

    fn bump_freq(&self, fqdn: &str) -> u64 {
        self.freq.update_or_insert(
            fqdn.to_string(),
            || 0,
            |f| {
                *f += 1;
                *f
            },
        )
    }

    /// Forward an invocation arrival to the policy (HIST histograms).
    pub fn note_arrival(&self, fqdn: &str) {
        let now = self.clock.now_ms();
        self.policy.lock().on_arrival(fqdn, now);
    }

    /// Functions the policy predicts will be invoked within `horizon_ms`
    /// that currently have no idle warm container — the input to the
    /// predictive-prewarm task (§3.2: the control plane "anticipates
    /// invocations and prepares containers for them").
    pub fn prewarm_recommendations(&self, horizon_ms: u64) -> Vec<String> {
        let now = self.clock.now_ms();
        let fqdns = self.freq.keys();
        let policy = self.policy.lock();
        fqdns
            .into_iter()
            .filter(|f| {
                if self.idle_count(f) > 0 {
                    return false;
                }
                match policy.predicted_next(f, now) {
                    // Due within the horizon, or slightly overdue.
                    Some(at) => at <= now + horizon_ms && at + horizon_ms >= now,
                    None => false,
                }
            })
            .collect()
    }

    /// Try to take an idle warm container for `fqdn`. `Some` is a warm hit.
    pub fn acquire(&self, fqdn: &str) -> Option<SharedContainer> {
        let slot = self.slot(fqdn);
        let entry = {
            let mut entries = slot.lock();
            entries.pop()
        };
        match entry {
            Some(mut e) => {
                let now = self.clock.now_ms();
                e.meta.freq = self.bump_freq(fqdn);
                self.policy.lock().on_access(&mut e.meta, now);
                self.idle_mb
                    .fetch_sub(e.meta.memory_mb as i64, Ordering::Relaxed);
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                Some(e.container)
            }
            None => {
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reserve `memory_mb` for a new (cold) container, inline-evicting idle
    /// containers if needed. Returns false when even a full idle purge
    /// cannot free enough memory (everything is in use).
    pub fn reserve(&self, memory_mb: u64) -> bool {
        loop {
            let used = self.used_mb.load(Ordering::Relaxed);
            if used as u64 + memory_mb <= self.capacity_mb {
                if self
                    .used_mb
                    .compare_exchange(
                        used,
                        used + memory_mb as i64,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return true;
                }
                continue; // raced; retry
            }
            // Need to evict: free at least the shortfall from idle entries.
            let shortfall = used as u64 + memory_mb - self.capacity_mb;
            if self.evict_bytes(shortfall) == 0 {
                return false;
            }
        }
    }

    /// Release reserved memory for a container that failed to start.
    pub fn unreserve(&self, memory_mb: u64) {
        self.used_mb.fetch_sub(memory_mb as i64, Ordering::Relaxed);
    }

    /// Return a finished container to the pool as an idle warm entry.
    /// `init_cost_ms` is the function's miss cost (Greedy-Dual input).
    pub fn release(&self, container: SharedContainer, init_cost_ms: f64) {
        let now = self.clock.now_ms();
        let fqdn = container.fqdn.clone();
        let memory_mb = container.limits.memory_mb;
        let mut meta = EntryMeta::new(&fqdn, memory_mb, init_cost_ms, now);
        meta.freq = self.bump_freq(&fqdn);
        self.policy.lock().on_insert(&mut meta, now);
        self.idle_mb.fetch_add(memory_mb as i64, Ordering::Relaxed);
        self.slot(&fqdn).lock().push(PoolEntry { container, meta });
    }

    /// Remove a container permanently (failed invocation, or caller chose
    /// not to keep it). Its memory is freed and the sink is invoked.
    pub fn discard(&self, container: SharedContainer) {
        let memory_mb = container.limits.memory_mb;
        self.used_mb.fetch_sub(memory_mb as i64, Ordering::Relaxed);
        (self.evict_sink)(container);
    }

    /// Evict the lowest-priority idle entries until at least `target_mb`
    /// has been freed. Returns the MB actually freed.
    fn evict_bytes(&self, target_mb: u64) -> u64 {
        // Snapshot (fqdn, container id, priority) of all idle entries.
        let now = self.clock.now_ms();
        let mut candidates: Vec<(String, u64, f64, u64)> = Vec::new();
        {
            let policy = self.policy.lock();
            for (fqdn, slot) in self.slots.snapshot() {
                for e in slot.lock().iter() {
                    candidates.push((
                        fqdn.clone(),
                        e.container.id.0,
                        policy.priority(&e.meta, now),
                        e.meta.memory_mb,
                    ));
                }
            }
        }
        candidates.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut freed = 0u64;
        for (fqdn, cid, _prio, mb) in candidates {
            if freed >= target_mb {
                break;
            }
            if self.remove_idle(&fqdn, cid, false) {
                freed += mb;
            }
        }
        freed
    }

    /// Remove one idle entry by id; returns true if it was still present.
    fn remove_idle(&self, fqdn: &str, container_id: u64, expired: bool) -> bool {
        let slot = self.slot(fqdn);
        let entry = {
            let mut entries = slot.lock();
            let idx = entries
                .iter()
                .position(|e| e.container.id.0 == container_id);
            idx.map(|i| entries.swap_remove(i))
        };
        match entry {
            Some(e) => {
                let now = self.clock.now_ms();
                self.policy.lock().on_evict(&e.meta, now);
                self.idle_mb
                    .fetch_sub(e.meta.memory_mb as i64, Ordering::Relaxed);
                self.used_mb
                    .fetch_sub(e.meta.memory_mb as i64, Ordering::Relaxed);
                if expired {
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                (self.evict_sink)(e.container);
                true
            }
            None => false,
        }
    }

    /// One background sweep (§3.3): drop expired entries, then restore the
    /// free-memory buffer by priority eviction.
    pub fn background_sweep(&self, free_buffer_mb: u64) {
        let now = self.clock.now_ms();
        // Expiry pass.
        let mut expired: Vec<(String, u64)> = Vec::new();
        {
            let policy = self.policy.lock();
            for (fqdn, slot) in self.slots.snapshot() {
                for e in slot.lock().iter() {
                    if policy.expired(&e.meta, now) {
                        expired.push((fqdn.clone(), e.container.id.0));
                    }
                }
            }
        }
        for (fqdn, cid) in expired {
            self.remove_idle(&fqdn, cid, true);
        }
        // Buffer pass.
        let free = self.free_mb();
        if free < free_buffer_mb {
            self.evict_bytes(free_buffer_mb - free);
        }
    }

    pub fn capacity_mb(&self) -> u64 {
        self.capacity_mb
    }

    pub fn used_mb(&self) -> u64 {
        self.used_mb.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn free_mb(&self) -> u64 {
        self.capacity_mb.saturating_sub(self.used_mb())
    }

    /// Idle warm containers for `fqdn`.
    pub fn idle_count(&self, fqdn: &str) -> usize {
        self.slots.get_with(fqdn, |s| s.lock().len()).unwrap_or(0)
    }

    /// Per-function warm-memory residency: for each fqdn with idle warm
    /// containers, the GB·s its entries have accumulated since insertion
    /// ("The High Cost of Keeping Warm" metric). Sorted by fqdn so callers
    /// fold it into deterministic digests; the fleet uses it both to rank
    /// scale-down victims (least warm first) and to pick which functions to
    /// hand off to survivors (hottest first).
    pub fn warm_residency(&self) -> Vec<(String, f64)> {
        let now = self.clock.now_ms();
        let mut out: Vec<(String, f64)> = Vec::new();
        for (fqdn, slot) in self.slots.snapshot() {
            let entries = slot.lock();
            if entries.is_empty() {
                continue;
            }
            let gb_s: f64 = entries
                .iter()
                .map(|e| {
                    (e.meta.memory_mb as f64 / 1024.0)
                        * (now.saturating_sub(e.meta.inserted_ms) as f64 / 1000.0)
                })
                .sum();
            out.push((fqdn, gb_s));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub fn stats(&self) -> PoolStats {
        let mut idle_containers = 0;
        self.slots
            .for_each(|_, slot| idle_containers += slot.lock().len());
        PoolStats {
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            used_mb: self.used_mb(),
            idle_mb: self.idle_mb.load(Ordering::Relaxed).max(0) as u64,
            idle_containers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KeepalivePolicyKind;
    use crate::policies::make_policy;
    use iluvatar_containers::types::Container;
    use iluvatar_containers::ResourceLimits;
    use iluvatar_sync::ManualClock;

    fn pool_with(
        capacity: u64,
        kind: KeepalivePolicyKind,
    ) -> (Arc<ManualClock>, Arc<Mutex<Vec<u64>>>, ContainerPool) {
        let clock = Arc::new(ManualClock::new());
        let destroyed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let d2 = Arc::clone(&destroyed);
        let sink: EvictSink = Arc::new(move |c: SharedContainer| d2.lock().push(c.id.0));
        let pool = ContainerPool::new(capacity, make_policy(kind, 600_000), clock.clone(), sink);
        (clock, destroyed, pool)
    }

    fn container(fqdn: &str, mb: u64) -> SharedContainer {
        Arc::new(Container::new(
            fqdn,
            ResourceLimits {
                cpus: 1.0,
                memory_mb: mb,
            },
        ))
    }

    #[test]
    fn miss_then_warm_hit() {
        let (_c, _d, pool) = pool_with(1024, KeepalivePolicyKind::Lru);
        assert!(pool.acquire("f-1").is_none(), "empty pool misses");
        assert!(pool.reserve(128));
        let ctr = container("f-1", 128);
        let id = ctr.id;
        pool.release(ctr, 100.0);
        assert_eq!(pool.idle_count("f-1"), 1);
        let hit = pool.acquire("f-1").unwrap();
        assert_eq!(hit.id, id, "warm hit returns the cached container");
        let st = pool.stats();
        assert_eq!(st.warm_hits, 1);
        assert_eq!(st.cold_misses, 1);
        assert_eq!(st.used_mb, 128, "in-use memory still counted");
        assert_eq!(st.idle_mb, 0);
    }

    #[test]
    fn reserve_respects_capacity_and_evicts_idle() {
        let (clock, destroyed, pool) = pool_with(256, KeepalivePolicyKind::Lru);
        assert!(pool.reserve(128));
        pool.release(container("a-1", 128), 10.0);
        clock.advance(10); // distinguish recency: b-1 is newer than a-1
        assert!(pool.reserve(128));
        pool.release(container("b-1", 128), 10.0);
        assert_eq!(pool.free_mb(), 0);
        // Third reservation forces eviction of the LRU idle entry (a-1).
        assert!(pool.reserve(128));
        assert_eq!(destroyed.lock().len(), 1);
        assert_eq!(pool.idle_count("a-1"), 0, "LRU victim was a-1");
        assert_eq!(pool.idle_count("b-1"), 1);
    }

    #[test]
    fn reserve_fails_when_all_in_use() {
        let (_c, _d, pool) = pool_with(256, KeepalivePolicyKind::Lru);
        assert!(pool.reserve(256)); // in-use, never released
        assert!(!pool.reserve(1), "nothing idle to evict");
        pool.unreserve(256);
        assert!(pool.reserve(1));
    }

    #[test]
    fn ttl_expiry_in_background_sweep() {
        let (clock, destroyed, pool) = pool_with(1024, KeepalivePolicyKind::Ttl);
        pool.reserve(128);
        pool.release(container("f-1", 128), 10.0);
        clock.advance(600_001);
        pool.background_sweep(0);
        assert_eq!(pool.idle_count("f-1"), 0, "expired past the 10min TTL");
        assert_eq!(pool.stats().expirations, 1);
        assert_eq!(destroyed.lock().len(), 1);
        assert_eq!(pool.used_mb(), 0);
    }

    #[test]
    fn lru_entries_survive_sweep_without_pressure() {
        let (clock, _d, pool) = pool_with(1024, KeepalivePolicyKind::Lru);
        pool.reserve(128);
        pool.release(container("f-1", 128), 10.0);
        clock.advance(24 * 3600 * 1000);
        pool.background_sweep(0);
        assert_eq!(pool.idle_count("f-1"), 1, "work-conserving: no expiry");
    }

    #[test]
    fn sweep_restores_free_buffer() {
        let (_c, destroyed, pool) = pool_with(256, KeepalivePolicyKind::Lru);
        pool.reserve(128);
        pool.release(container("a-1", 128), 10.0);
        pool.reserve(128);
        pool.release(container("b-1", 128), 10.0);
        assert_eq!(pool.free_mb(), 0);
        pool.background_sweep(100);
        assert!(pool.free_mb() >= 100, "buffer restored by eviction");
        assert_eq!(destroyed.lock().len(), 1);
    }

    #[test]
    fn gdsf_evicts_cheap_large_first() {
        let (_c, _d, pool) = pool_with(1024, KeepalivePolicyKind::Gdsf);
        pool.reserve(512);
        pool.release(container("big-cheap-1", 512), 100.0);
        pool.reserve(128);
        pool.release(container("small-dear-1", 128), 2000.0);
        // 640MB used of 1024: reserving 500 forces ≥116MB of eviction.
        assert!(pool.reserve(500));
        assert_eq!(pool.idle_count("big-cheap-1"), 0, "GD evicts low H first");
        assert_eq!(pool.idle_count("small-dear-1"), 1);
    }

    #[test]
    fn discard_frees_memory_without_pooling() {
        let (_c, destroyed, pool) = pool_with(256, KeepalivePolicyKind::Lru);
        pool.reserve(128);
        let ctr = container("f-1", 128);
        pool.discard(ctr);
        assert_eq!(pool.used_mb(), 0);
        assert_eq!(destroyed.lock().len(), 1);
        assert_eq!(pool.stats().evictions, 0, "discard is not an eviction");
    }

    #[test]
    fn multiple_idle_containers_per_function() {
        let (_c, _d, pool) = pool_with(1024, KeepalivePolicyKind::Lru);
        for _ in 0..3 {
            pool.reserve(64);
            pool.release(container("f-1", 64), 10.0);
        }
        assert_eq!(pool.idle_count("f-1"), 3);
        assert!(pool.acquire("f-1").is_some());
        assert!(pool.acquire("f-1").is_some());
        assert!(pool.acquire("f-1").is_some());
        assert!(pool.acquire("f-1").is_none());
        assert_eq!(pool.used_mb(), 192, "all three still in use");
    }

    #[test]
    fn prewarm_recommendations_from_hist() {
        let (clock, _d, pool) = pool_with(4096, KeepalivePolicyKind::Hist);
        // Feed a strictly periodic arrival pattern (every 10 min) so HIST
        // learns the rhythm; release/acquire keep the freq map populated.
        let period = 10 * 60_000u64;
        for i in 0..8 {
            pool.note_arrival("p-1");
            if i == 0 {
                pool.reserve(128);
                pool.release(container("p-1", 128), 50.0);
            } else if let Some(c) = pool.acquire("p-1") {
                pool.release(c, 50.0);
            }
            clock.advance(period);
        }
        // Remove the idle container so a recommendation is needed, then
        // advance to just before the predicted next arrival.
        let c = pool.acquire("p-1").unwrap();
        pool.discard(c);
        // predicted next ≈ last_arrival + preload offset (~8.5 min); a
        // wide horizon must include it.
        let recs = pool.prewarm_recommendations(15 * 60_000);
        assert_eq!(recs, vec!["p-1".to_string()]);
        // With an idle container present, no recommendation.
        pool.reserve(128);
        pool.release(container("p-1", 128), 50.0);
        assert!(pool.prewarm_recommendations(15 * 60_000).is_empty());
    }

    #[test]
    fn no_recommendations_from_non_predictive_policies() {
        let (_c, _d, pool) = pool_with(1024, KeepalivePolicyKind::Gdsf);
        for _ in 0..5 {
            pool.note_arrival("f-1");
        }
        assert!(pool.prewarm_recommendations(60_000).is_empty());
    }

    #[test]
    fn frequency_counts_shared_across_entries() {
        let (_c, _d, pool) = pool_with(1024, KeepalivePolicyKind::Lfu);
        pool.reserve(64);
        pool.release(container("f-1", 64), 10.0);
        for _ in 0..5 {
            let c = pool.acquire("f-1").unwrap();
            pool.release(c, 10.0);
        }
        // 1 insert + 5 (acquire+release) pairs = 11 bumps.
        assert_eq!(pool.freq.get("f-1"), Some(11));
    }
}
