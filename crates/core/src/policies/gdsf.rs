//! Greedy-Dual-Size-Frequency — the paper's GD policy.
//!
//! The FaasCache priority of a warm container is
//!
//! ```text
//!   H = Clock + Freq × InitCost / Size
//! ```
//!
//! where `Clock` is a monotonically increasing "inflation" value set to the
//! H of the last evicted entry. The four-way tradeoff (recency via Clock,
//! frequency, miss cost, memory size) is what lets GD keep expensive-to-
//! initialize, small, popular functions warm: §6.2 reports it cuts cold
//! start overhead >3× vs TTL on the representative trace and reaches the
//! same overhead with a 3× smaller cache.

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::TimeMs;

pub struct GdsfPolicy {
    /// The Greedy-Dual inflation clock, in priority units.
    clock: f64,
}

impl GdsfPolicy {
    pub fn new() -> Self {
        Self { clock: 0.0 }
    }

    pub fn clock(&self) -> f64 {
        self.clock
    }

    fn h_value(&self, e: &EntryMeta) -> f64 {
        self.clock + e.freq as f64 * e.init_cost_ms / e.memory_mb as f64
    }
}

impl Default for GdsfPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepalivePolicy for GdsfPolicy {
    fn name(&self) -> &'static str {
        "GD"
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
        e.tag = self.h_value(e);
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
        e.tag = self.h_value(e);
    }

    fn priority(&self, e: &EntryMeta, _now: TimeMs) -> f64 {
        e.tag
    }

    fn on_evict(&mut self, e: &EntryMeta, _now: TimeMs) {
        // Inflate the clock to the victim's credit: older entries must
        // re-earn their place via fresh accesses.
        if e.tag > self.clock {
            self.clock = e.tag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fqdn: &str, mem: u64, cost: f64, freq: u64) -> EntryMeta {
        let mut e = EntryMeta::new(fqdn, mem, cost, 0);
        e.freq = freq;
        e
    }

    #[test]
    fn expensive_small_functions_rank_higher() {
        let mut p = GdsfPolicy::new();
        // High init cost, small memory (the paper's floating-point fn).
        let mut fp = entry("fp-1", 128, 1700.0, 1);
        // Large memory, moderate cost (the ML inference fn).
        let mut ml = entry("ml-1", 512, 4500.0, 1);
        p.on_insert(&mut fp, 0);
        p.on_insert(&mut ml, 0);
        assert!(
            p.priority(&fp, 1) > p.priority(&ml, 1),
            "1700/128 > 4500/512: FP survives, ML evicted first"
        );
    }

    #[test]
    fn frequency_raises_priority() {
        let mut p = GdsfPolicy::new();
        let mut rare = entry("rare-1", 128, 1000.0, 1);
        let mut hot = entry("hot-1", 128, 1000.0, 50);
        p.on_insert(&mut rare, 0);
        p.on_insert(&mut hot, 0);
        assert!(p.priority(&hot, 1) > p.priority(&rare, 1));
    }

    #[test]
    fn clock_inflates_on_eviction() {
        let mut p = GdsfPolicy::new();
        let mut victim = entry("v-1", 100, 500.0, 1);
        p.on_insert(&mut victim, 0);
        assert_eq!(p.clock(), 0.0);
        p.on_evict(&victim, 1);
        assert_eq!(p.clock(), 5.0); // 1 * 500 / 100

        // A new entry inserted after the eviction starts above the clock,
        // beating stale survivors with smaller tags.
        let mut fresh = entry("f-1", 1000, 1.0, 1);
        p.on_insert(&mut fresh, 2);
        assert!(p.priority(&fresh, 2) > 5.0);
    }

    #[test]
    fn clock_never_decreases() {
        let mut p = GdsfPolicy::new();
        let mut big = entry("b-1", 1, 1000.0, 1);
        p.on_insert(&mut big, 0);
        p.on_evict(&big, 1);
        let hi = p.clock();
        // A low-credit entry inserted post-inflation sits just above the
        // clock; evicting it may nudge the clock up but never down.
        let mut small = entry("s-1", 1000, 1.0, 1);
        p.on_insert(&mut small, 2);
        p.on_evict(&small, 3);
        assert!(p.clock() >= hi, "clock rolled back: {} < {hi}", p.clock());
        assert!(p.clock() <= hi + 1.0, "tiny victim must not inflate much");
    }

    #[test]
    fn recency_via_clock_recapture() {
        // An entry re-accessed after inflation recaptures the clock and
        // outranks an entry that was never touched again.
        let mut p = GdsfPolicy::new();
        let mut stale = entry("stale-1", 100, 100.0, 1);
        let mut live = entry("live-1", 100, 100.0, 1);
        p.on_insert(&mut stale, 0);
        p.on_insert(&mut live, 0);
        let mut victim = entry("v-1", 1, 10_000.0, 1);
        p.on_insert(&mut victim, 0);
        p.on_evict(&victim, 1); // clock jumps to 10_000
        live.freq += 1;
        p.on_access(&mut live, 2);
        assert!(p.priority(&live, 3) > p.priority(&stale, 3));
    }

    #[test]
    fn work_conserving() {
        let p = GdsfPolicy::new();
        let e = entry("f-1", 128, 10.0, 1);
        assert!(!p.expired(&e, u64::MAX));
    }
}
