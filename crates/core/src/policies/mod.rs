//! Keep-alive eviction policies.
//!
//! The paper's central insight is that "keep-alive is analogous to caching":
//! a warm container is a cache entry whose *size* is its memory footprint,
//! whose *miss cost* is the function's initialization time, and whose
//! *frequency* is the function's invocation rate. The policies here are the
//! exact set the evaluation compares (§6.1):
//!
//! | label | module | family |
//! |-------|--------|--------|
//! | TTL   | [`ttl`]      | OpenWhisk's 10-minute fixed TTL, LRU order under pressure |
//! | GD    | [`gdsf`]     | Greedy-Dual-Size-Frequency |
//! | LND   | [`landlord`] | Landlord (Greedy-Dual without frequency) |
//! | LRU   | [`lru`]      | recency |
//! | FREQ  | [`lfu`]      | frequency |
//! | HIST  | [`hist`]     | Shahrad et al.'s histogram keep-alive ("TTL + prefetching") |
//!
//! A policy sees three kinds of events: function arrivals (every invocation,
//! warm or cold — HIST builds its IAT histograms from these), cache entry
//! insertion/access, and eviction. Eviction candidates are ranked by
//! [`KeepalivePolicy::priority`], lowest first. Work-*non*-conserving
//! policies additionally expire entries via [`KeepalivePolicy::expired`]
//! even when memory is free.

pub mod gdsf;
pub mod hist;
pub mod landlord;
pub mod lfu;
pub mod lru;
pub mod ttl;

use crate::config::KeepalivePolicyKind;
use iluvatar_sync::TimeMs;

/// Cache metadata for one warm container.
#[derive(Debug, Clone)]
pub struct EntryMeta {
    /// Owning function.
    pub fqdn: String,
    /// Entry size: the container's memory footprint, MB.
    pub memory_mb: u64,
    /// Per-function access frequency, maintained by the cache.
    pub freq: u64,
    /// Miss cost: the function's initialization overhead, ms.
    pub init_cost_ms: f64,
    pub inserted_ms: TimeMs,
    pub last_access_ms: TimeMs,
    /// Policy-owned value (Greedy-Dual H-value / Landlord credit).
    pub tag: f64,
}

impl EntryMeta {
    pub fn new(fqdn: impl Into<String>, memory_mb: u64, init_cost_ms: f64, now: TimeMs) -> Self {
        Self {
            fqdn: fqdn.into(),
            memory_mb: memory_mb.max(1),
            freq: 1,
            init_cost_ms,
            inserted_ms: now,
            last_access_ms: now,
            tag: 0.0,
        }
    }
}

/// A keep-alive eviction policy. Implementations are driven by the container
/// pool (live worker) and by the discrete-event keep-alive simulator —
/// identical code, per the in-situ simulation principle (§3.4).
pub trait KeepalivePolicy: Send {
    /// Paper label (e.g. "GD").
    fn name(&self) -> &'static str;

    /// Every invocation arrival of `fqdn`, before cache lookup. Default:
    /// ignored; HIST builds its per-function histograms here.
    fn on_arrival(&mut self, _fqdn: &str, _now: TimeMs) {}

    /// A new warm container entered the cache.
    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs);

    /// A warm hit on an existing entry.
    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs);

    /// Eviction rank; the entry with the LOWEST priority is evicted first.
    fn priority(&self, e: &EntryMeta, now: TimeMs) -> f64;

    /// The entry was evicted (Greedy-Dual advances its clock here).
    fn on_evict(&mut self, _e: &EntryMeta, _now: TimeMs) {}

    /// Proactive expiry for non-work-conserving policies (TTL, HIST).
    fn expired(&self, _e: &EntryMeta, _now: TimeMs) -> bool {
        false
    }

    /// HIST prefetching: when should `fqdn` be preloaded next, if the policy
    /// anticipates an invocation? `None` for every other policy.
    fn predicted_next(&self, _fqdn: &str, _now: TimeMs) -> Option<TimeMs> {
        None
    }
}

/// Construct a policy by kind. `ttl_ms` parameterizes the TTL policy (the
/// classic OpenWhisk value is 10 minutes).
pub fn make_policy(kind: KeepalivePolicyKind, ttl_ms: u64) -> Box<dyn KeepalivePolicy> {
    match kind {
        KeepalivePolicyKind::Ttl => Box::new(ttl::TtlPolicy::new(ttl_ms)),
        KeepalivePolicyKind::Lru => Box::new(lru::LruPolicy::new()),
        KeepalivePolicyKind::Lfu => Box::new(lfu::LfuPolicy::new()),
        KeepalivePolicyKind::Gdsf => Box::new(gdsf::GdsfPolicy::new()),
        KeepalivePolicyKind::Landlord => Box::new(landlord::LandlordPolicy::new()),
        KeepalivePolicyKind::Hist => Box::new(hist::HistPolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_kinds() {
        for kind in KeepalivePolicyKind::all() {
            let p = make_policy(kind, 600_000);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn entry_meta_clamps_zero_memory() {
        let e = EntryMeta::new("f-1", 0, 100.0, 5);
        assert_eq!(
            e.memory_mb, 1,
            "zero-size entries would break size-aware policies"
        );
        assert_eq!(e.freq, 1);
        assert_eq!(e.last_access_ms, 5);
    }
}
