//! Least-recently-used keep-alive.
//!
//! Work-conserving recency: containers stay warm until memory pressure, and
//! the longest-idle one goes first. §6.2 finds LRU the best policy for the
//! Rare and Random traces, where "recency is a more pertinent
//! characteristic" than the Greedy-Dual four-way tradeoff.

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::TimeMs;

#[derive(Default)]
pub struct LruPolicy;

impl LruPolicy {
    pub fn new() -> Self {
        Self
    }
}

impl KeepalivePolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    fn priority(&self, e: &EntryMeta, _now: TimeMs) -> f64 {
        e.last_access_ms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_expires() {
        let p = LruPolicy::new();
        let e = EntryMeta::new("f-1", 128, 0.0, 0);
        assert!(!p.expired(&e, u64::MAX), "LRU is work-conserving");
    }

    #[test]
    fn recency_ordering() {
        let mut p = LruPolicy::new();
        let mut a = EntryMeta::new("a-1", 128, 0.0, 0);
        let mut b = EntryMeta::new("b-1", 128, 0.0, 0);
        p.on_insert(&mut a, 100);
        p.on_insert(&mut b, 200);
        assert!(p.priority(&a, 300) < p.priority(&b, 300));
        p.on_access(&mut a, 400);
        assert!(
            p.priority(&a, 500) > p.priority(&b, 500),
            "access moves to MRU"
        );
    }
}
