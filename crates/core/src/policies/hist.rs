//! The histogram keep-alive policy of Shahrad et al. — the paper's HIST
//! baseline, reproduced per §6.1's description:
//!
//! * Per-function inter-arrival times are recorded "in minute granularity
//!   buckets, tracking up to four hours between executions".
//! * The coefficient of variation of the IAT is computed "using Welford's
//!   online algorithm".
//! * Predictable functions (CoV ≤ 2) get a customized preload time (just
//!   before the histogram's head) and TTL (just past its tail); eager
//!   eviction happens before the preload point.
//! * Unpredictable functions fall back to "a generic TTL of two hours".
//! * The ARIMA path for >4 h IATs (~0.56% of invocations) is deliberately
//!   not implemented, exactly as in the paper.

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::stats::{Histogram, Welford};
use iluvatar_sync::TimeMs;
use std::collections::HashMap;

/// One minute, in ms — the histogram bucket width.
const BUCKET_MS: f64 = 60_000.0;
/// Four hours of one-minute buckets.
const BUCKETS: usize = 240;
/// Generic fallback TTL: two hours.
const GENERIC_TTL_MS: u64 = 2 * 60 * 60 * 1000;
/// CoV threshold for "predictable".
const COV_LIMIT: f64 = 2.0;
/// Head/tail margins applied to the histogram window (the original uses
/// safety margins around the predicted range).
const HEAD_MARGIN: f64 = 0.85;
const TAIL_MARGIN: f64 = 1.15;
/// Minimum samples before trusting the histogram.
const MIN_SAMPLES: u64 = 4;

struct FnHistory {
    hist: Histogram,
    welford: Welford,
    last_arrival: Option<TimeMs>,
}

impl FnHistory {
    fn new() -> Self {
        Self {
            hist: Histogram::new(BUCKET_MS, BUCKETS),
            welford: Welford::new(),
            last_arrival: None,
        }
    }

    fn predictable(&self) -> bool {
        self.welford.count() >= MIN_SAMPLES
            && self.welford.cov() <= COV_LIMIT
            && self.hist.overflow_fraction() < 0.5
    }

    /// Keep-alive window after the last invocation: `[preload, ttl)` in ms
    /// offsets. Outside the window the container may be evicted eagerly.
    fn window(&self) -> (u64, u64) {
        if self.predictable() {
            let head = self.hist.quantile_lower_edge(0.05) * HEAD_MARGIN;
            let tail = (self.hist.quantile_lower_edge(0.99) + BUCKET_MS) * TAIL_MARGIN;
            (head as u64, tail as u64)
        } else {
            (0, GENERIC_TTL_MS)
        }
    }
}

pub struct HistPolicy {
    functions: HashMap<String, FnHistory>,
}

impl HistPolicy {
    pub fn new() -> Self {
        Self {
            functions: HashMap::new(),
        }
    }

    /// The keep-alive window for `fqdn` (test/inspection hook).
    pub fn window_for(&self, fqdn: &str) -> Option<(u64, u64)> {
        self.functions.get(fqdn).map(|h| h.window())
    }

    pub fn is_predictable(&self, fqdn: &str) -> bool {
        self.functions
            .get(fqdn)
            .map(|h| h.predictable())
            .unwrap_or(false)
    }
}

impl Default for HistPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepalivePolicy for HistPolicy {
    fn name(&self) -> &'static str {
        "HIST"
    }

    fn on_arrival(&mut self, fqdn: &str, now: TimeMs) {
        let h = self
            .functions
            .entry(fqdn.to_string())
            .or_insert_with(FnHistory::new);
        if let Some(prev) = h.last_arrival {
            let iat = now.saturating_sub(prev) as f64;
            h.hist.record(iat);
            h.welford.push(iat);
        }
        h.last_arrival = Some(now);
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    /// Under memory pressure: evict the entry whose predicted next use is
    /// farthest away (approximated by time already waited vs its window).
    fn priority(&self, e: &EntryMeta, now: TimeMs) -> f64 {
        let (_, ttl) = self
            .functions
            .get(&e.fqdn)
            .map(|h| h.window())
            .unwrap_or((0, GENERIC_TTL_MS));
        // Remaining useful lifetime; smaller = evict sooner.
        let idle = now.saturating_sub(e.last_access_ms);
        ttl.saturating_sub(idle) as f64
    }

    /// Eager eviction: expired before the preload point (predictable
    /// functions are dropped immediately after use and preloaded later) and
    /// after the TTL point.
    fn expired(&self, e: &EntryMeta, now: TimeMs) -> bool {
        let (preload, ttl) = self
            .functions
            .get(&e.fqdn)
            .map(|h| h.window())
            .unwrap_or((0, GENERIC_TTL_MS));
        let idle = now.saturating_sub(e.last_access_ms);
        // Eagerly evicted once past a minimal linger if a preload point
        // exists well in the future; always evicted past the TTL.
        if idle > ttl {
            return true;
        }
        if preload > 2 * 60_000 && idle > 60_000 && idle < preload {
            // The function won't be needed until `preload`; release memory.
            return true;
        }
        false
    }

    fn predicted_next(&self, fqdn: &str, _now: TimeMs) -> Option<TimeMs> {
        let h = self.functions.get(fqdn)?;
        if !h.predictable() {
            return None;
        }
        let last = h.last_arrival?;
        let (preload, _) = h.window();
        Some(last + preload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `n` arrivals with constant spacing `iat_ms`.
    fn feed(p: &mut HistPolicy, fqdn: &str, iat_ms: u64, n: usize) -> TimeMs {
        let mut t = 0;
        for i in 0..n {
            t = i as u64 * iat_ms;
            p.on_arrival(fqdn, t);
        }
        t
    }

    #[test]
    fn regular_function_becomes_predictable() {
        let mut p = HistPolicy::new();
        feed(&mut p, "reg-1", 10 * 60_000, 10); // every 10 minutes
        assert!(p.is_predictable("reg-1"));
        let (preload, ttl) = p.window_for("reg-1").unwrap();
        // Head of the window just before 10 min; tail just past it.
        assert!(
            preload > 5 * 60_000 && preload < 10 * 60_000,
            "preload {preload}"
        );
        assert!(ttl > 10 * 60_000 && ttl < 20 * 60_000, "ttl {ttl}");
    }

    #[test]
    fn erratic_function_gets_generic_ttl() {
        let mut p = HistPolicy::new();
        // Wildly varying IATs: CoV > 2.
        // Strongly bimodal IATs: seven tiny gaps and one 12-million-ms
        // outlier give CoV ≈ 2.6 > 2.
        let mut t = 0;
        for iat in [100u64, 100, 100, 100, 100, 100, 100, 12_000_000, 100] {
            t += iat;
            p.on_arrival("err-1", t);
        }
        assert!(!p.is_predictable("err-1"));
        assert_eq!(p.window_for("err-1").unwrap().1, GENERIC_TTL_MS);
    }

    #[test]
    fn few_samples_fall_back_to_generic() {
        let mut p = HistPolicy::new();
        feed(&mut p, "new-1", 60_000, 2); // only one IAT sample
        assert!(!p.is_predictable("new-1"));
    }

    #[test]
    fn eager_eviction_before_preload() {
        let mut p = HistPolicy::new();
        let last = feed(&mut p, "reg-1", 30 * 60_000, 10); // every 30 min
        let mut e = EntryMeta::new("reg-1", 128, 0.0, last);
        p.on_insert(&mut e, last);
        // Two minutes after use: still idle-lingering? Past the 1-minute
        // linger and far before the ~25min preload point → eagerly evicted.
        assert!(
            p.expired(&e, last + 2 * 60_000),
            "eager eviction frees memory"
        );
        // And certainly expired long past the TTL.
        assert!(p.expired(&e, last + 3 * 60 * 60_000));
    }

    #[test]
    fn kept_alive_inside_window() {
        let mut p = HistPolicy::new();
        let last = feed(&mut p, "reg-1", 10 * 60_000, 10);
        let mut e = EntryMeta::new("reg-1", 128, 0.0, last);
        p.on_insert(&mut e, last);
        let (preload, ttl) = p.window_for("reg-1").unwrap();
        let inside = last + (preload + ttl) / 2;
        assert!(!p.expired(&e, inside), "inside the predicted window");
    }

    #[test]
    fn predicted_next_tracks_last_arrival() {
        let mut p = HistPolicy::new();
        let last = feed(&mut p, "reg-1", 10 * 60_000, 10);
        let next = p.predicted_next("reg-1", last).unwrap();
        assert!(next > last && next < last + 10 * 60_000);
        assert!(p.predicted_next("ghost-1", last).is_none());
    }

    #[test]
    fn unknown_function_uses_generic_ttl_for_expiry() {
        let p = HistPolicy::new();
        let e = EntryMeta::new("ghost-1", 128, 0.0, 0);
        assert!(!p.expired(&e, GENERIC_TTL_MS - 1));
        assert!(p.expired(&e, GENERIC_TTL_MS + 1));
    }

    #[test]
    fn pressure_priority_prefers_soon_needed() {
        let mut p = HistPolicy::new();
        let last = feed(&mut p, "soon-1", 2 * 60_000, 10); // every 2 min
        feed(&mut p, "late-1", 200 * 60_000, 10); // every 200 min (within 4h)
        let mut soon = EntryMeta::new("soon-1", 128, 0.0, last);
        let mut late = EntryMeta::new("late-1", 128, 0.0, last);
        p.on_insert(&mut soon, last);
        p.on_insert(&mut late, last);
        let now = last + 60_000;
        assert!(
            p.priority(&late, now) > p.priority(&soon, now),
            "longer remaining window survives pressure (its reload is dearer to predict)"
        );
    }
}
