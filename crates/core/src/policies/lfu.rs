//! Least-frequently-used keep-alive (the paper's FREQ variant).
//!
//! Evicts the container whose function has been invoked the fewest times.
//! Pure frequency without aging favours long-lived heavy hitters and is
//! slow to adapt when popularity shifts — the classic LFU weakness, visible
//! in the paper's cyclic-workload litmus test.

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::TimeMs;

#[derive(Default)]
pub struct LfuPolicy;

impl LfuPolicy {
    pub fn new() -> Self {
        Self
    }
}

impl KeepalivePolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "FREQ"
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    /// Frequency, with recency as an implicit tiebreak via fractional ms.
    fn priority(&self, e: &EntryMeta, _now: TimeMs) -> f64 {
        // freq dominates; last access breaks ties between equal-frequency
        // entries in LRU order (scaled to stay below 1 count).
        e.freq as f64 + (e.last_access_ms as f64) * 1e-15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_ordering() {
        let p = LfuPolicy::new();
        let mut hot = EntryMeta::new("hot-1", 128, 0.0, 0);
        hot.freq = 100;
        let cold = EntryMeta::new("cold-1", 128, 0.0, 0);
        assert!(p.priority(&cold, 10) < p.priority(&hot, 10));
    }

    #[test]
    fn ties_break_lru() {
        let p = LfuPolicy::new();
        let mut a = EntryMeta::new("a-1", 128, 0.0, 0);
        let mut b = EntryMeta::new("b-1", 128, 0.0, 0);
        a.last_access_ms = 100;
        b.last_access_ms = 900;
        assert_eq!(a.freq, b.freq);
        assert!(p.priority(&a, 1000) < p.priority(&b, 1000));
    }

    #[test]
    fn work_conserving() {
        let p = LfuPolicy::new();
        let e = EntryMeta::new("f-1", 128, 0.0, 0);
        assert!(!p.expired(&e, u64::MAX));
    }
}
