//! Landlord — the paper's LND variant.
//!
//! Landlord is Greedy-Dual generalized to arbitrary sizes *without* the
//! frequency term: each entry's credit is `Clock + InitCost / Size`,
//! refreshed on access, with the clock inflated to the victim's credit at
//! eviction. Compared to GDSF it cannot distinguish a hot function from a
//! cold one with equal cost density — which is why it trails GD on the
//! representative trace (Fig. 4a).

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::TimeMs;

pub struct LandlordPolicy {
    clock: f64,
}

impl LandlordPolicy {
    pub fn new() -> Self {
        Self { clock: 0.0 }
    }

    pub fn clock(&self) -> f64 {
        self.clock
    }

    fn credit(&self, e: &EntryMeta) -> f64 {
        self.clock + e.init_cost_ms / e.memory_mb as f64
    }
}

impl Default for LandlordPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl KeepalivePolicy for LandlordPolicy {
    fn name(&self) -> &'static str {
        "LND"
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
        e.tag = self.credit(e);
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
        e.tag = self.credit(e);
    }

    fn priority(&self, e: &EntryMeta, _now: TimeMs) -> f64 {
        e.tag
    }

    fn on_evict(&mut self, e: &EntryMeta, _now: TimeMs) {
        if e.tag > self.clock {
            self.clock = e.tag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_is_ignored() {
        let mut p = LandlordPolicy::new();
        let mut hot = EntryMeta::new("hot-1", 128, 1000.0, 0);
        hot.freq = 1000;
        let mut cold = EntryMeta::new("cold-1", 128, 1000.0, 0);
        p.on_insert(&mut hot, 0);
        p.on_insert(&mut cold, 0);
        assert_eq!(p.priority(&hot, 1), p.priority(&cold, 1));
    }

    #[test]
    fn cost_density_ordering() {
        let mut p = LandlordPolicy::new();
        let mut cheap = EntryMeta::new("cheap-1", 512, 100.0, 0);
        let mut dear = EntryMeta::new("dear-1", 64, 2000.0, 0);
        p.on_insert(&mut cheap, 0);
        p.on_insert(&mut dear, 0);
        assert!(p.priority(&cheap, 1) < p.priority(&dear, 1));
    }

    #[test]
    fn clock_inflation_matches_gd_semantics() {
        let mut p = LandlordPolicy::new();
        let mut v = EntryMeta::new("v-1", 10, 50.0, 0);
        p.on_insert(&mut v, 0);
        p.on_evict(&v, 1);
        assert_eq!(p.clock(), 5.0);
        let mut fresh = EntryMeta::new("f-1", 1000, 0.0, 2);
        p.on_insert(&mut fresh, 2);
        assert_eq!(p.priority(&fresh, 2), 5.0, "new entries start at the clock");
    }
}
