//! The OpenWhisk-style fixed TTL policy.
//!
//! §6.1: "the default keep-alive policy in OpenWhisk (10 minute TTL). When
//! the server is full, this TTL policy evicts containers in an LRU order."
//! TTL is *not* work-conserving: a container idle past the TTL is removed
//! even when memory is free — which is exactly why caching-based policies
//! beat it on rare functions.

use super::{EntryMeta, KeepalivePolicy};
use iluvatar_sync::TimeMs;

pub struct TtlPolicy {
    ttl_ms: u64,
}

impl TtlPolicy {
    pub fn new(ttl_ms: u64) -> Self {
        Self { ttl_ms }
    }

    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }
}

impl KeepalivePolicy for TtlPolicy {
    fn name(&self) -> &'static str {
        "TTL"
    }

    fn on_insert(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    fn on_access(&mut self, e: &mut EntryMeta, now: TimeMs) {
        e.last_access_ms = now;
    }

    /// LRU order under memory pressure.
    fn priority(&self, e: &EntryMeta, _now: TimeMs) -> f64 {
        e.last_access_ms as f64
    }

    fn expired(&self, e: &EntryMeta, now: TimeMs) -> bool {
        now.saturating_sub(e.last_access_ms) > self.ttl_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_after_ttl() {
        let mut p = TtlPolicy::new(1000);
        let mut e = EntryMeta::new("f-1", 128, 0.0, 0);
        p.on_insert(&mut e, 0);
        assert!(!p.expired(&e, 1000));
        assert!(p.expired(&e, 1001));
    }

    #[test]
    fn access_refreshes_ttl() {
        let mut p = TtlPolicy::new(1000);
        let mut e = EntryMeta::new("f-1", 128, 0.0, 0);
        p.on_insert(&mut e, 0);
        p.on_access(&mut e, 900);
        assert!(!p.expired(&e, 1800));
        assert!(p.expired(&e, 1901));
    }

    #[test]
    fn pressure_eviction_is_lru_order() {
        let mut p = TtlPolicy::new(600_000);
        let mut old = EntryMeta::new("old-1", 128, 0.0, 0);
        let mut newer = EntryMeta::new("new-1", 128, 0.0, 0);
        p.on_insert(&mut old, 10);
        p.on_insert(&mut newer, 500);
        assert!(p.priority(&old, 600) < p.priority(&newer, 600));
    }
}
