//! Per-component latency tracking.
//!
//! §5: "we also use and provide Rust-function tracing for fine-grained
//! performance logging and analysis ... to instrument the passage of
//! invocations through the control plane components". The worker's hot path
//! records a span per component; aggregating them regenerates Table 1's
//! latency breakdown.
//!
//! Span recording is two atomic adds plus two short lock-protected pushes on
//! a pre-registered slot — cheap enough to leave on (unlike the paper's full
//! tracing, which they disable by default for overhead reasons). Each span
//! keeps both an exact recent [`MovingWindow`] and a mergeable
//! [`LogHistogram`], so percentiles can be exported over the wire and
//! aggregated across workers without shipping raw samples.

use iluvatar_sync::{LogHistogram, MovingWindow, ShardedMap};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The hot-path span names, in invocation order (Table 1 rows).
pub mod names {
    pub const INVOKE: &str = "invoke";
    pub const SYNC_INVOKE: &str = "sync_invoke";
    pub const ENQUEUE_INVOCATION: &str = "enqueue_invocation";
    pub const ADD_ITEM_TO_Q: &str = "add_item_to_q";
    pub const SPAWN_WORKER: &str = "spawn_worker";
    pub const DEQUEUE: &str = "dequeue";
    pub const ACQUIRE_CONTAINER: &str = "acquire_container";
    pub const TRY_LOCK_CONTAINER: &str = "try_lock_container";
    pub const PREPARE_INVOKE: &str = "prepare_invoke";
    pub const CALL_CONTAINER: &str = "call_container";
    pub const DOWNLOAD_RESULT: &str = "download_result";
    pub const RETURN_CONTAINER: &str = "return_container";
    pub const RETURN_RESULTS: &str = "return_results";

    /// Table 1 grouping: (group, spans).
    pub const GROUPS: &[(&str, &[&str])] = &[
        (
            "Ingestion & Queuing",
            &[INVOKE, SYNC_INVOKE, ENQUEUE_INVOCATION, ADD_ITEM_TO_Q],
        ),
        (
            "Container Operations",
            &[SPAWN_WORKER, DEQUEUE, ACQUIRE_CONTAINER, TRY_LOCK_CONTAINER],
        ),
        (
            "Agent Communication",
            &[PREPARE_INVOKE, CALL_CONTAINER, DOWNLOAD_RESULT],
        ),
        ("Returning", &[RETURN_CONTAINER, RETURN_RESULTS]),
    ];
}

struct SpanStats {
    count: AtomicU64,
    total_us: AtomicU64,
    window: Mutex<MovingWindow>,
    hist: Mutex<LogHistogram>,
}

impl SpanStats {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            window: Mutex::new(MovingWindow::new(512)),
            hist: Mutex::new(LogHistogram::new()),
        }
    }

    /// The single recording path: every way a sample enters a span —
    /// guard drop or external measurement — funnels through here.
    fn record(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.window.lock().push(us as f64);
        self.hist.lock().record(us);
    }
}

/// Aggregated view of one span.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    pub name: String,
    pub count: u64,
    /// Mean duration, ms.
    pub mean_ms: f64,
    /// p99 over the recent window, ms.
    pub p99_ms: f64,
}

/// Wire form of one span's full distribution: what a load balancer scrapes
/// from `GET /spans` and merges into its cluster view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanExport {
    pub name: String,
    pub count: u64,
    pub total_us: u64,
    /// Mergeable log-linear histogram of durations, µs.
    pub hist: LogHistogram,
}

impl SpanExport {
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64 / 1000.0
        }
    }

    /// The `q`-percentile in milliseconds, from the histogram.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.hist.percentile(q) / 1000.0
    }
}

/// Merge span exports from many workers by span name (cluster aggregation).
pub fn merge_span_exports(sets: &[Vec<SpanExport>]) -> Vec<SpanExport> {
    let mut merged: Vec<SpanExport> = Vec::new();
    for set in sets {
        for e in set {
            match merged.iter_mut().find(|m| m.name == e.name) {
                Some(m) => {
                    m.count += e.count;
                    m.total_us = m.total_us.saturating_add(e.total_us);
                    m.hist.merge(&e.hist);
                }
                None => merged.push(e.clone()),
            }
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Registry of named spans.
#[derive(Clone)]
pub struct Spans {
    stats: Arc<ShardedMap<&'static str, Arc<SpanStats>>>,
}

/// RAII timer: records the elapsed time into its span on drop.
pub struct SpanGuard {
    stats: Arc<SpanStats>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.stats.record(self.start.elapsed().as_micros() as u64);
    }
}

impl Spans {
    pub fn new() -> Self {
        Self {
            stats: Arc::new(ShardedMap::new()),
        }
    }

    fn slot(&self, name: &'static str) -> Arc<SpanStats> {
        if let Some(s) = self.stats.get(name) {
            return s;
        }
        self.stats
            .update_or_insert(name, || Arc::new(SpanStats::new()), |s| Arc::clone(s))
    }

    /// Start timing `name`; the span records when the guard drops.
    pub fn time(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            stats: self.slot(name),
            start: Instant::now(),
        }
    }

    /// Record an externally measured duration (µs).
    pub fn record_us(&self, name: &'static str, us: u64) {
        self.slot(name).record(us);
    }

    pub fn summary(&self, name: &'static str) -> Option<SpanSummary> {
        let s = self.stats.get(&name)?;
        let count = s.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let total_us = s.total_us.load(Ordering::Relaxed);
        let p99_us = s.window.lock().percentile(0.99);
        Some(SpanSummary {
            name: name.to_string(),
            count,
            mean_ms: total_us as f64 / count as f64 / 1000.0,
            p99_ms: p99_us / 1000.0,
        })
    }

    /// All spans with at least one sample.
    pub fn all(&self) -> Vec<SpanSummary> {
        let mut out = Vec::new();
        self.stats.for_each(|name, s| {
            let count = s.count.load(Ordering::Relaxed);
            if count > 0 {
                let total_us = s.total_us.load(Ordering::Relaxed);
                out.push(SpanSummary {
                    name: name.to_string(),
                    count,
                    mean_ms: total_us as f64 / count as f64 / 1000.0,
                    p99_ms: s.window.lock().percentile(0.99) / 1000.0,
                });
            }
        });
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Exportable distributions for every span with at least one sample,
    /// sorted by name. This is the `GET /spans` payload.
    pub fn export(&self) -> Vec<SpanExport> {
        let mut out = Vec::new();
        self.stats.for_each(|name, s| {
            let count = s.count.load(Ordering::Relaxed);
            if count > 0 {
                out.push(SpanExport {
                    name: name.to_string(),
                    count,
                    total_us: s.total_us.load(Ordering::Relaxed),
                    hist: s.hist.lock().clone(),
                });
            }
        });
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

impl Default for Spans {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn guard_records_on_drop() {
        let spans = Spans::new();
        {
            let _g = spans.time(names::CALL_CONTAINER);
            std::thread::sleep(Duration::from_millis(5));
        }
        let s = spans.summary(names::CALL_CONTAINER).unwrap();
        assert_eq!(s.count, 1);
        assert!(s.mean_ms >= 4.0, "mean {} too small", s.mean_ms);
    }

    #[test]
    fn record_us_accumulates() {
        let spans = Spans::new();
        spans.record_us(names::DEQUEUE, 100);
        spans.record_us(names::DEQUEUE, 300);
        let s = spans.summary(names::DEQUEUE).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean_ms - 0.2).abs() < 1e-9);
    }

    #[test]
    fn unknown_span_is_none() {
        let spans = Spans::new();
        assert!(spans.summary(names::INVOKE).is_none());
    }

    #[test]
    fn all_lists_active_spans_sorted() {
        let spans = Spans::new();
        spans.record_us(names::RETURN_RESULTS, 10);
        spans.record_us(names::ACQUIRE_CONTAINER, 10);
        let all = spans.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, names::ACQUIRE_CONTAINER);
    }

    #[test]
    fn groups_cover_all_table_rows() {
        let total: usize = names::GROUPS.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 13, "Table 1 has 13 component rows");
    }

    #[test]
    fn concurrent_recording() {
        let spans = Spans::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let spans = spans.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        spans.record_us(names::INVOKE, 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(spans.summary(names::INVOKE).unwrap().count, 8000);
    }

    #[test]
    fn export_carries_histogram() {
        let spans = Spans::new();
        for us in [100u64, 200, 300, 400, 10_000] {
            spans.record_us(names::CALL_CONTAINER, us);
        }
        let export = spans.export();
        assert_eq!(export.len(), 1);
        let e = &export[0];
        assert_eq!(e.name, names::CALL_CONTAINER);
        assert_eq!(e.count, 5);
        assert_eq!(e.hist.count(), 5);
        assert!((e.mean_ms() - 2.2).abs() < 1e-9, "mean {}", e.mean_ms());
        let p99 = e.percentile_ms(0.99);
        assert!(
            (p99 - 10.0).abs() / 10.0 < 0.02,
            "p99 {} should be ~10ms",
            p99
        );
    }

    #[test]
    fn merged_exports_equal_union() {
        let a = Spans::new();
        let b = Spans::new();
        let union = Spans::new();
        for us in [10u64, 20, 30] {
            a.record_us(names::DEQUEUE, us);
            union.record_us(names::DEQUEUE, us);
        }
        for us in [40u64, 50] {
            b.record_us(names::DEQUEUE, us);
            union.record_us(names::DEQUEUE, us);
        }
        b.record_us(names::INVOKE, 7);
        union.record_us(names::INVOKE, 7);
        let merged = merge_span_exports(&[a.export(), b.export()]);
        let expect = union.export();
        assert_eq!(merged.len(), expect.len());
        for (m, e) in merged.iter().zip(expect.iter()) {
            assert_eq!(m.name, e.name);
            assert_eq!(m.count, e.count);
            assert_eq!(m.total_us, e.total_us);
            assert_eq!(m.hist, e.hist);
        }
    }
}
