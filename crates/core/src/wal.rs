//! Queue write-ahead log + snapshot recovery, hardened against a disk that
//! fails, stalls, fills, and lies.
//!
//! The worker keeps all invocation state in memory (§3); a crash therefore
//! loses every queued invocation and accounting book. This module makes the
//! queue durable: every queue mutation (enqueue / dequeue / completion /
//! admission shed) is appended as a length+CRC32-framed record to the
//! current segment file (`{path}.NNNN.log`), and a periodic compacted
//! snapshot captures the full recoverable state — pending invocations,
//! Prometheus counter baselines, per-tenant admission books, token-bucket
//! levels, DRR deficits, and the quarantine set. A snapshot retires all
//! older segments (compaction). Recovery replays the last snapshot plus the
//! tail after it, deduplicating by invocation id, so a duplicated or
//! re-replayed tail converges to the same state (idempotent replay).
//! Corrupt frames (CRC mismatch — the disk lied) and torn tails (truncated
//! final frame — the disk died mid-write) are quarantined: counted, never
//! replayed, and recovery resynchronizes on the next frame magic instead of
//! halting.
//!
//! Durability contract: an invocation is *accepted* only after its
//! `Enqueued` record hit the log per the active [`FsyncPolicy`]
//! (`never` = flushed to the OS, `group(ms)` = covered by the next group
//! fsync, `always` = fsynced inline). Completions whose record did not land
//! before a crash are re-enqueued and re-executed on recovery —
//! at-least-once execution, exactly-once accounting.
//!
//! I/O errors no longer brick the log. The recovery ladder runs bounded
//! retries with backoff, then rotates to a fresh segment, and only then
//! consults [`WalOnError`]: `reject` fails this append (the worker sheds
//! with 503 + Retry-After and the *next* append tries again from the top);
//! `degrade` keeps serving with results flagged non-durable and
//! periodically attempts to re-arm. A stall-aware gate sheds appends whose
//! deadline an in-flight write/fsync has already blown, so a hung disk
//! cannot wedge the dispatch hot path.
//!
//! All disk traffic goes through [`iluvatar_sync::storage::Storage`] so the
//! chaos crate can inject faults underneath (`FaultyStorage`).

use iluvatar_admission::TenantSnapshot;
use iluvatar_sync::storage::{RealStorage, Storage, StorageFile};
use iluvatar_sync::TimeMs;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A queued-but-not-completed invocation, as recorded in the log. Carries
/// everything needed to rebuild the original [`crate::queue::QueuedInvocation`]
/// with its original arrival time, cost estimate, and tenant label.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PendingInvocation {
    /// End-to-end trace id — the dedup key for idempotent replay.
    #[serde(default)]
    pub id: u64,
    #[serde(default)]
    pub fqdn: String,
    #[serde(default)]
    pub args: String,
    #[serde(default)]
    pub tenant: Option<String>,
    #[serde(default)]
    pub tenant_weight: f64,
    #[serde(default)]
    pub arrived_at: TimeMs,
    #[serde(default)]
    pub expected_exec_ms: f64,
    #[serde(default)]
    pub iat_ms: f64,
    #[serde(default)]
    pub expect_warm: bool,
    /// Whether the invocation had left the queue (was in flight) at the
    /// time of the last record. In-flight invocations are re-enqueued on
    /// recovery like queued ones — their execution died with the process.
    #[serde(default)]
    pub dequeued: bool,
}

/// Monotonic worker counter baselines persisted in snapshots so a restart
/// does not read as a Prometheus counter reset mid-scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterBaselines {
    #[serde(default)]
    pub completed: u64,
    #[serde(default)]
    pub dropped: u64,
    #[serde(default)]
    pub failed: u64,
    #[serde(default)]
    pub cold_starts: u64,
    #[serde(default)]
    pub retries: u64,
    #[serde(default)]
    pub agent_timeouts: u64,
    #[serde(default)]
    pub quarantined: u64,
    #[serde(default)]
    pub quarantine_released: u64,
    #[serde(default)]
    pub dropped_retry_exhausted: u64,
}

/// One tenant's token-bucket fill level at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BucketLevel {
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub tokens: f64,
}

/// One tenant's DRR deficit at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DrrDeficit {
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub deficit: f64,
}

/// A compacted point-in-time image of all recoverable worker state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WalSnapshot {
    #[serde(default)]
    pub pending: Vec<PendingInvocation>,
    #[serde(default)]
    pub counters: CounterBaselines,
    #[serde(default)]
    pub tenants: Vec<TenantSnapshot>,
    #[serde(default)]
    pub bucket_levels: Vec<BucketLevel>,
    #[serde(default)]
    pub drr_deficits: Vec<DrrDeficit>,
    /// Fqdns with a container in quarantine (informational; the containers
    /// themselves died with the process).
    #[serde(default)]
    pub quarantine: Vec<String>,
}

/// One queue mutation. On disk each record is a frame:
/// `magic "IWAL" | payload len (u32 LE) | CRC32 of payload (u32 LE) | JSON
/// payload`. The JSON keeps the `op` tag so segments stay greppable:
/// `{"op":"enqueued","inv":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum WalRecord {
    /// Admitted and queued (or bypassed — a bypass logs Enqueued+Dequeued).
    Enqueued { inv: PendingInvocation },
    /// Left the queue for dispatch.
    Dequeued { id: u64 },
    /// Finished (either way); the invocation leaves the pending set.
    Completed {
        id: u64,
        ok: bool,
        #[serde(default)]
        tenant: Option<String>,
    },
    /// Rejected at admission; never entered the pending set but must be
    /// replayed into the tenant books.
    Shed {
        id: u64,
        #[serde(default)]
        tenant: Option<String>,
        /// true = tenant rate limit, false = best-effort overload shed.
        throttled: bool,
    },
    /// A pull-mode dispatch lease was issued for a pending invocation.
    /// Replay keeps the invocation pending (marked in-flight) so a crashed
    /// dispatch plane requeues it instead of stranding it.
    LeaseIssued {
        id: u64,
        worker: String,
        expires_at_ms: u64,
    },
    /// A pull-mode lease expired (or was revoked) and its invocation went
    /// back to the queue; replay clears the in-flight mark.
    LeaseRequeued { id: u64 },
    /// Compaction point: replay restarts from the latest of these.
    Snapshot { snap: WalSnapshot },
}

impl WalRecord {
    /// The record's `op` tag as a stable label, for the canonical telemetry
    /// stream (`TelemetryKind::Wal { op }`) and for log grepping.
    pub fn op_label(&self) -> &'static str {
        match self {
            WalRecord::Enqueued { .. } => "enqueued",
            WalRecord::Dequeued { .. } => "dequeued",
            WalRecord::Completed { .. } => "completed",
            WalRecord::Shed { .. } => "shed",
            WalRecord::LeaseIssued { .. } => "lease_issued",
            WalRecord::LeaseRequeued { .. } => "lease_requeued",
            WalRecord::Snapshot { .. } => "snapshot",
        }
    }

    /// The trace id the record is about, if any (snapshots have none).
    pub fn trace_id(&self) -> Option<u64> {
        self.id()
    }

    fn id(&self) -> Option<u64> {
        match self {
            WalRecord::Enqueued { inv } => Some(inv.id),
            WalRecord::Dequeued { id }
            | WalRecord::Completed { id, .. }
            | WalRecord::Shed { id, .. }
            | WalRecord::LeaseIssued { id, .. }
            | WalRecord::LeaseRequeued { id } => Some(*id),
            WalRecord::Snapshot { .. } => None,
        }
    }
}

/// Collapse an at-least-once frame stream into its effective record
/// sequence. The recovery ladder may land a record more than once (a write
/// that succeeded but whose fsync failed is rewritten in full), and replay
/// is idempotent, so only a record's *first* occurrence carries meaning.
/// Snapshots carry no id and always pass through. Use this before feeding
/// a raw frame scan to the conformance models, which check the effective
/// stream.
pub fn dedup_records(records: &[WalRecord]) -> Vec<&WalRecord> {
    let mut seen = HashSet::new();
    records
        .iter()
        .filter(|r| match r.trace_id() {
            None => true,
            Some(id) => seen.insert((r.op_label(), id)),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Frame format

/// Magic prefix of every frame; recovery resynchronizes by scanning for it.
pub const FRAME_MAGIC: [u8; 4] = *b"IWAL";
const FRAME_HEADER: usize = 12;
/// Upper bound on a sane payload; a bigger length field means a lying disk.
const MAX_FRAME_PAYLOAD: u32 = 16 * 1024 * 1024;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC32 (IEEE 802.3), the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let t = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serialize one record as a frame: `IWAL | len | crc32 | payload`.
pub fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_vec(rec).unwrap_or_default();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The result of scanning a segment's bytes frame by frame.
#[derive(Debug, Default)]
pub struct FrameScan {
    /// Decoded records in on-disk order.
    pub records: Vec<WalRecord>,
    /// Frames quarantined mid-stream: CRC mismatch, bad magic, or an insane
    /// length field. The scan resynchronized on the next magic after each.
    pub corrupt_frames: u64,
    /// A final frame cut short by a torn write (0 or 1 per segment).
    pub torn_tail: u64,
}

fn find_magic(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len().saturating_sub(FRAME_MAGIC.len() - 1))
        .find(|&i| bytes[i..i + FRAME_MAGIC.len()] == FRAME_MAGIC)
}

/// Decode a segment, quarantining damage instead of halting: corrupt frames
/// are counted and skipped (scan resumes at the next magic), a truncated
/// final frame is counted as a torn tail.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut scan = FrameScan::default();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes.len() - i < FRAME_HEADER {
            scan.torn_tail += 1;
            break;
        }
        if bytes[i..i + 4] != FRAME_MAGIC {
            scan.corrupt_frames += 1;
            match find_magic(bytes, i + 1) {
                Some(j) => {
                    i = j;
                    continue;
                }
                None => break,
            }
        }
        let len = u32::from_le_bytes([bytes[i + 4], bytes[i + 5], bytes[i + 6], bytes[i + 7]]);
        if len > MAX_FRAME_PAYLOAD {
            scan.corrupt_frames += 1;
            match find_magic(bytes, i + 4) {
                Some(j) => {
                    i = j;
                    continue;
                }
                None => break,
            }
        }
        let end = i + FRAME_HEADER + len as usize;
        if end > bytes.len() {
            scan.torn_tail += 1;
            break;
        }
        let want = u32::from_le_bytes([bytes[i + 8], bytes[i + 9], bytes[i + 10], bytes[i + 11]]);
        let payload = &bytes[i + FRAME_HEADER..end];
        if crc32(payload) != want {
            // The disk lied (bit-rot) or a torn write ran into the next
            // frame; either way resync on the next magic.
            scan.corrupt_frames += 1;
            match find_magic(bytes, i + 4) {
                Some(j) => {
                    i = j;
                    continue;
                }
                None => break,
            }
        }
        match serde_json::from_slice::<WalRecord>(payload) {
            Ok(rec) => scan.records.push(rec),
            Err(_) => scan.corrupt_frames += 1,
        }
        i = end;
    }
    scan
}

/// The on-disk name of segment `idx` for a WAL based at `base`.
pub fn segment_path(base: &Path, idx: u64) -> PathBuf {
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wal".to_string());
    base.with_file_name(format!("{name}.{idx:04}.log"))
}

/// Discover existing segments of `base`, sorted by index.
pub fn discover_segments(storage: &dyn Storage, base: &Path) -> Vec<(u64, PathBuf)> {
    let dir = base.parent().unwrap_or_else(|| Path::new("."));
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wal".to_string());
    let prefix = format!("{name}.");
    let mut out = Vec::new();
    for p in storage.list(dir).unwrap_or_default() {
        let Some(fname) = p.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let Some(mid) = fname
            .strip_prefix(&prefix)
            .and_then(|r| r.strip_suffix(".log"))
        else {
            continue;
        };
        if let Ok(idx) = mid.parse::<u64>() {
            out.push((idx, p));
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// Options

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush to the OS only (the pre-hardening behavior). Fast; loses the
    /// OS cache on power failure.
    Never,
    /// A background flusher fsyncs every `interval_ms`; acceptance-path
    /// appends wait for the covering group fsync (group commit).
    Group { interval_ms: u64 },
    /// fsync inline on every append.
    Always,
}

/// What the recovery ladder does once retries and segment rotation are both
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOnError {
    /// Fail this append; the worker sheds the invocation with 503 +
    /// Retry-After. The next append retries the ladder from the top.
    Reject,
    /// Keep serving with results flagged non-durable (surfaced on
    /// `/status`), periodically attempting to re-arm on a fresh segment.
    Degrade,
}

/// Tuning for the hardened WAL. [`Default`] matches the historical
/// behavior: flush-to-OS durability, no append deadline, reject on error.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Mutations between compaction snapshots.
    pub snapshot_every: u64,
    pub fsync: FsyncPolicy,
    pub on_error: WalOnError,
    /// Shed an append once an in-flight write/fsync has been stuck this
    /// long, or once its own group-commit wait exceeds it. 0 = no deadline.
    pub append_deadline_ms: u64,
    /// Bounded in-place retries before rotating to a fresh segment.
    pub retry_limit: u32,
    pub retry_backoff_ms: u64,
    /// Rotate to a new segment once the current one exceeds this.
    pub segment_bytes: u64,
    /// While degraded, attempt to re-arm at most this often.
    pub rearm_after_ms: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            snapshot_every: 64,
            fsync: FsyncPolicy::Never,
            on_error: WalOnError::Reject,
            append_deadline_ms: 0,
            retry_limit: 2,
            retry_backoff_ms: 1,
            segment_bytes: 4 * 1024 * 1024,
            rearm_after_ms: 250,
        }
    }
}

/// What happened to an [`Wal::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Landed per the active fsync policy.
    Landed,
    /// Nothing to write: a dequeue/completion for an id the log is not
    /// tracking (e.g. its enqueue happened while degraded). Harmless.
    Skipped,
    /// Degraded mode: the record was absorbed into the in-memory book but
    /// not written. An invocation accepted on this outcome is non-durable.
    NotDurable,
    /// Recovery ladder exhausted under `on_error = reject`; shed the caller.
    Unavailable,
    /// Stall backpressure: the append deadline passed. Shed the caller.
    Stalled,
    /// Crash simulation: the log is poisoned and drops everything.
    Poisoned,
}

impl AppendOutcome {
    /// Did the record land durably (per policy)?
    pub fn is_landed(&self) -> bool {
        matches!(self, AppendOutcome::Landed)
    }

    /// May the caller proceed as if the mutation was recorded (possibly
    /// flagged non-durable)?
    pub fn accepted(&self) -> bool {
        matches!(
            self,
            AppendOutcome::Landed | AppendOutcome::Skipped | AppendOutcome::NotDurable
        )
    }
}

/// A plain snapshot of the WAL's I/O health counters, for `/status` and
/// session digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalIoCounts {
    pub appends: u64,
    pub retries: u64,
    pub rotations: u64,
    pub write_errors: u64,
    pub fsync_errors: u64,
    pub stall_sheds: u64,
    pub non_durable_records: u64,
    pub degraded_entered: u64,
    pub rearms: u64,
    pub segments_retired: u64,
    pub abandoned: u64,
}

#[derive(Default)]
struct IoStats {
    appends: AtomicU64,
    retries: AtomicU64,
    rotations: AtomicU64,
    write_errors: AtomicU64,
    fsync_errors: AtomicU64,
    stall_sheds: AtomicU64,
    non_durable_records: AtomicU64,
    degraded_entered: AtomicU64,
    rearms: AtomicU64,
    segments_retired: AtomicU64,
    abandoned: AtomicU64,
}

impl IoStats {
    fn counts(&self) -> WalIoCounts {
        WalIoCounts {
            appends: self.appends.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            fsync_errors: self.fsync_errors.load(Ordering::Relaxed),
            stall_sheds: self.stall_sheds.load(Ordering::Relaxed),
            non_durable_records: self.non_durable_records.load(Ordering::Relaxed),
            degraded_entered: self.degraded_entered.load(Ordering::Relaxed),
            rearms: self.rearms.load(Ordering::Relaxed),
            segments_retired: self.segments_retired.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The log

struct Writer {
    /// The current segment. Only replaced by rotation; a failed rotation
    /// keeps the old handle so the ladder can keep trying.
    out: Box<dyn StorageFile>,
    seg_index: u64,
    seg_bytes: u64,
    /// The WAL's own book of incomplete invocations — the `pending` section
    /// of the next snapshot. Keyed by trace id; ids are minted
    /// monotonically, so iteration order is enqueue order.
    pending: BTreeMap<u64, PendingInvocation>,
    mutations_since_snapshot: u64,
    /// Crash simulation: a poisoned log drops every append (as if the
    /// process died), so recovery sees exactly the pre-kill prefix.
    poisoned: bool,
    /// Degraded mode (`on_error = degrade`): serving continues, records are
    /// absorbed into the book but not written, until a re-arm succeeds.
    degraded: bool,
    degraded_since_ms: u64,
    /// Group commit: sequence of the last frame written / covered by fsync.
    written_seq: u64,
    /// Frames written since the last successful fsync, kept so a rotation
    /// mid-ladder can rewrite them onto the fresh segment.
    unsynced: Vec<u8>,
}

#[derive(Default)]
struct CommitProgress {
    synced: u64,
    failed: u64,
    poisoned: bool,
}

struct GroupCommit {
    progress: Mutex<CommitProgress>,
    cv: Condvar,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// Observer of WAL I/O health transitions (`wal_io` telemetry bridge).
pub type IoNotify = Arc<dyn Fn(&'static str) + Send + Sync>;

struct Inner {
    path: PathBuf,
    opts: WalOptions,
    storage: Arc<dyn Storage>,
    writer: Mutex<Writer>,
    epoch: Instant,
    /// `elapsed_ms + 1` while a storage op is in flight, 0 when idle — the
    /// stall gate reads this without taking the writer lock.
    io_started: AtomicU64,
    stats: IoStats,
    notify: Mutex<Option<IoNotify>>,
    group: Option<GroupCommit>,
    /// Enqueued records whose group-commit wait timed out: the caller was
    /// shed, so the flusher retracts them (Completed ok=false) after the
    /// covering fsync, keeping replay from resurrecting them.
    abandoned: Mutex<Vec<(u64, Option<String>)>>,
}

/// The append-only write-ahead log. One per worker; all methods take `&self`
/// (internally locked) so the worker can append from any hot-path thread.
pub struct Wal {
    inner: Arc<Inner>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

struct IoGuard<'a>(&'a AtomicU64);

impl Drop for IoGuard<'_> {
    fn drop(&mut self) {
        self.0.store(0, Ordering::Release);
    }
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn io_guard(&self) -> IoGuard<'_> {
        self.io_started.store(self.now_ms() + 1, Ordering::Release);
        IoGuard(&self.io_started)
    }

    fn emit(&self, op: &'static str) {
        let cb = self.notify.lock().clone();
        if let Some(cb) = cb {
            cb(op);
        }
    }

    /// Is an in-flight storage op already past the append deadline?
    fn stall_gate_tripped(&self) -> bool {
        let dl = self.opts.append_deadline_ms;
        if dl == 0 {
            return false;
        }
        let started = self.io_started.load(Ordering::Acquire);
        started != 0 && self.now_ms().saturating_sub(started - 1) > dl
    }

    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Open segment `idx` and make it current. The old handle is only
    /// replaced on success.
    fn rotate_locked(&self, w: &mut Writer) -> bool {
        let next = w.seg_index + 1;
        match self.storage.open_append(&segment_path(&self.path, next)) {
            Ok(f) => {
                w.out = f;
                w.seg_index = next;
                w.seg_bytes = 0;
                self.bump(&self.stats.rotations);
                self.emit("rotate");
                true
            }
            Err(_) => false,
        }
    }

    /// Write `frame` (and fsync under `always`), running the recovery
    /// ladder: bounded retries with backoff, then rotation, then one more
    /// try on the fresh segment. `extra` is rewritten onto the fresh
    /// segment before `frame` on rotation (group-commit unsynced frames).
    fn persist_locked(&self, w: &mut Writer, frame: &[u8], extra: &[u8]) -> bool {
        let attempt = |w: &mut Writer, inner: &Inner, with_extra: bool| -> std::io::Result<()> {
            let _g = inner.io_guard();
            if with_extra && !extra.is_empty() {
                w.out.write_all(extra)?;
            }
            w.out.write_all(frame)?;
            w.out.flush()?;
            if matches!(inner.opts.fsync, FsyncPolicy::Always) {
                w.out.sync()?;
            }
            Ok(())
        };
        match attempt(w, self, false) {
            Ok(()) => return true,
            Err(_) => self.bump(&self.stats.write_errors),
        }
        for i in 0..self.opts.retry_limit {
            self.bump(&self.stats.retries);
            self.emit("retry");
            std::thread::sleep(Duration::from_millis(
                self.opts.retry_backoff_ms * (i as u64 + 1),
            ));
            // A partial first write leaves a torn frame mid-segment; replay
            // quarantines it and a duplicated record replays idempotently,
            // so rewriting the whole frame is safe.
            match attempt(w, self, false) {
                Ok(()) => return true,
                Err(_) => self.bump(&self.stats.write_errors),
            }
        }
        if self.rotate_locked(w) {
            match attempt(w, self, true) {
                Ok(()) => return true,
                Err(_) => self.bump(&self.stats.write_errors),
            }
        }
        false
    }

    /// Absorb a record into the in-memory pending book. `landed = false`
    /// (degraded) keeps new enqueues off the book so they never reach a
    /// snapshot: their acceptance was explicitly non-durable.
    fn update_book(w: &mut Writer, rec: &WalRecord, landed: bool) {
        match rec {
            WalRecord::Enqueued { inv } => {
                if landed {
                    w.pending.insert(inv.id, inv.clone());
                }
            }
            WalRecord::Dequeued { id } => {
                if let Some(p) = w.pending.get_mut(id) {
                    p.dequeued = true;
                }
            }
            WalRecord::Completed { id, .. } => {
                w.pending.remove(id);
            }
            WalRecord::LeaseIssued { id, .. } => {
                if let Some(p) = w.pending.get_mut(id) {
                    p.dequeued = true;
                }
            }
            WalRecord::LeaseRequeued { id } => {
                if let Some(p) = w.pending.get_mut(id) {
                    p.dequeued = false;
                }
            }
            WalRecord::Shed { .. } | WalRecord::Snapshot { .. } => {}
        }
    }

    /// Try to leave degraded mode by rotating onto a fresh segment. Safe
    /// without an immediate snapshot: degraded-window mutations were
    /// absorbed into the book (and skipped enqueues never entered it), so
    /// post-re-arm records replay consistently on top of the last snapshot.
    fn try_rearm_locked(&self, w: &mut Writer) -> bool {
        if !w.degraded {
            return true;
        }
        if self.rotate_locked(w) {
            w.degraded = false;
            w.unsynced.clear();
            self.bump(&self.stats.rearms);
            self.emit("rearmed");
            true
        } else {
            w.degraded_since_ms = self.now_ms();
            false
        }
    }

    fn enter_degraded_locked(&self, w: &mut Writer) {
        if !w.degraded {
            w.degraded = true;
            w.degraded_since_ms = self.now_ms();
            self.bump(&self.stats.degraded_entered);
            self.emit("degraded");
        }
    }

    /// Returns the group-commit sequence to wait for, when the caller must.
    fn append_locked(&self, w: &mut Writer, rec: &WalRecord) -> (AppendOutcome, Option<u64>) {
        if w.poisoned {
            return (AppendOutcome::Poisoned, None);
        }
        // A dequeue/completion/lease for an id the log is not tracking has
        // nothing to make durable (its enqueue was shed or non-durable).
        if let WalRecord::Dequeued { id }
        | WalRecord::Completed { id, .. }
        | WalRecord::LeaseIssued { id, .. }
        | WalRecord::LeaseRequeued { id } = rec
        {
            if !w.pending.contains_key(id) {
                return (AppendOutcome::Skipped, None);
            }
        }
        if w.degraded {
            // Only acceptance records (and snapshots) attempt the lazy
            // re-arm: dequeues/completions for already-durable ids are
            // absorbed into the book so the post-re-arm state replays
            // consistently, never written mid-window.
            let wants_rearm =
                matches!(rec, WalRecord::Enqueued { .. } | WalRecord::Snapshot { .. });
            let overdue =
                self.now_ms().saturating_sub(w.degraded_since_ms) >= self.opts.rearm_after_ms;
            if !(wants_rearm && overdue && self.try_rearm_locked(w)) {
                if matches!(rec, WalRecord::Snapshot { .. }) {
                    return (AppendOutcome::NotDurable, None);
                }
                Self::update_book(w, rec, false);
                w.mutations_since_snapshot += 1;
                self.bump(&self.stats.non_durable_records);
                return (AppendOutcome::NotDurable, None);
            }
        }
        let frame = encode_frame(rec);
        if w.seg_bytes > 0 && w.seg_bytes + frame.len() as u64 > self.opts.segment_bytes {
            // Best effort; failure to rotate just grows the segment.
            let _ = self.rotate_locked(w);
        }
        let extra = if matches!(self.opts.fsync, FsyncPolicy::Group { .. }) {
            w.unsynced.clone()
        } else {
            Vec::new()
        };
        if !self.persist_locked(w, &frame, &extra) {
            match self.opts.on_error {
                WalOnError::Reject => return (AppendOutcome::Unavailable, None),
                WalOnError::Degrade => {
                    self.enter_degraded_locked(w);
                    if matches!(rec, WalRecord::Snapshot { .. }) {
                        return (AppendOutcome::NotDurable, None);
                    }
                    Self::update_book(w, rec, false);
                    w.mutations_since_snapshot += 1;
                    self.bump(&self.stats.non_durable_records);
                    return (AppendOutcome::NotDurable, None);
                }
            }
        }
        w.seg_bytes += frame.len() as u64;
        self.bump(&self.stats.appends);
        let seq = if matches!(self.opts.fsync, FsyncPolicy::Group { .. }) {
            w.unsynced.extend_from_slice(&frame);
            w.written_seq += 1;
            Some(w.written_seq)
        } else {
            None
        };
        Self::update_book(w, rec, true);
        if matches!(rec, WalRecord::Snapshot { .. }) {
            w.mutations_since_snapshot = 0;
        } else {
            w.mutations_since_snapshot += 1;
        }
        (AppendOutcome::Landed, seq)
    }

    /// Wait for the group fsync covering `seq`. On deadline: mark enqueues
    /// abandoned (the flusher retracts them) and shed the caller.
    fn wait_group(&self, seq: u64, rec: &WalRecord) -> AppendOutcome {
        let Some(g) = self.group.as_ref() else {
            return AppendOutcome::Landed;
        };
        let dl = self.opts.append_deadline_ms;
        let deadline = (dl > 0).then(|| Instant::now() + Duration::from_millis(dl));
        let mut p = g.progress.lock();
        loop {
            if p.synced >= seq {
                return AppendOutcome::Landed;
            }
            if p.failed >= seq {
                return if p.poisoned {
                    AppendOutcome::Poisoned
                } else {
                    AppendOutcome::NotDurable
                };
            }
            match deadline {
                None => g.cv.wait(&mut p),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d || g.cv.wait_for(&mut p, d - now).timed_out() {
                        if p.synced >= seq {
                            return AppendOutcome::Landed;
                        }
                        drop(p);
                        if let WalRecord::Enqueued { inv } = rec {
                            self.abandoned.lock().push((inv.id, inv.tenant.clone()));
                            self.bump(&self.stats.abandoned);
                        }
                        self.bump(&self.stats.stall_sheds);
                        self.emit("stall_shed");
                        return AppendOutcome::Stalled;
                    }
                }
            }
        }
    }

    /// One flusher pass: fsync written-but-unsynced frames, then retract
    /// abandoned enqueues. Returns false once the log is poisoned.
    fn group_sync_pass(&self) -> bool {
        let mut w = self.writer.lock();
        if w.poisoned {
            let mut p = self.group.as_ref().unwrap().progress.lock();
            p.failed = p.failed.max(w.written_seq);
            p.poisoned = true;
            self.group.as_ref().unwrap().cv.notify_all();
            return false;
        }
        if w.unsynced.is_empty() {
            return true;
        }
        let covered = w.written_seq;
        let mut ok = {
            let _g = self.io_guard();
            w.out.sync().is_ok()
        };
        if !ok {
            self.bump(&self.stats.fsync_errors);
            self.emit("fsync_error");
            for i in 0..self.opts.retry_limit {
                self.bump(&self.stats.retries);
                std::thread::sleep(Duration::from_millis(
                    self.opts.retry_backoff_ms * (i as u64 + 1),
                ));
                let _g = self.io_guard();
                if w.out.sync().is_ok() {
                    ok = true;
                    break;
                }
                self.bump(&self.stats.fsync_errors);
            }
        }
        if !ok && self.rotate_locked(&mut w) {
            // Rewrite everything the failed segment may have dropped, then
            // barrier the fresh segment.
            let unsynced = std::mem::take(&mut w.unsynced);
            let _g = self.io_guard();
            ok =
                w.out.write_all(&unsynced).is_ok() && w.out.flush().is_ok() && w.out.sync().is_ok();
            if !ok {
                w.unsynced = unsynced;
            }
        }
        let g = self.group.as_ref().unwrap();
        if ok {
            w.unsynced.clear();
            let retract: Vec<_> = std::mem::take(&mut *self.abandoned.lock());
            for (id, tenant) in retract {
                if w.pending.contains_key(&id) {
                    let rec = WalRecord::Completed {
                        id,
                        ok: false,
                        tenant,
                    };
                    let _ = self.append_locked(&mut w, &rec);
                }
            }
            let mut p = g.progress.lock();
            p.synced = p.synced.max(covered);
            g.cv.notify_all();
        } else {
            match self.opts.on_error {
                WalOnError::Degrade => {
                    self.enter_degraded_locked(&mut w);
                    w.unsynced.clear();
                }
                WalOnError::Reject => {}
            }
            let mut p = g.progress.lock();
            p.failed = p.failed.max(covered);
            g.cv.notify_all();
        }
        true
    }
}

impl Wal {
    /// Open with historical defaults (flush-to-OS durability, reject on
    /// error) and the real filesystem. `snapshot_every` is the number of
    /// mutations between compaction snapshots.
    pub fn open(path: &Path, snapshot_every: u64) -> std::io::Result<Self> {
        let opts = WalOptions {
            snapshot_every,
            ..WalOptions::default()
        };
        Self::open_with(path, opts, Arc::new(RealStorage))
    }

    /// Open with explicit options and a pluggable storage layer. Appends go
    /// to a fresh segment numbered above any existing one; `replay` reads
    /// all segments (plus a legacy unframed file at `path`, if present).
    pub fn open_with(
        path: &Path,
        opts: WalOptions,
        storage: Arc<dyn Storage>,
    ) -> std::io::Result<Self> {
        let seg_index = discover_segments(storage.as_ref(), path)
            .last()
            .map(|(i, _)| *i)
            .unwrap_or(0)
            + 1;
        let out = storage.open_append(&segment_path(path, seg_index))?;
        let opts = WalOptions {
            snapshot_every: opts.snapshot_every.max(1),
            ..opts
        };
        let group = matches!(opts.fsync, FsyncPolicy::Group { .. }).then(|| GroupCommit {
            progress: Mutex::new(CommitProgress::default()),
            cv: Condvar::new(),
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let inner = Arc::new(Inner {
            path: path.to_path_buf(),
            opts,
            storage,
            writer: Mutex::new(Writer {
                out,
                seg_index,
                seg_bytes: 0,
                pending: BTreeMap::new(),
                mutations_since_snapshot: 0,
                poisoned: false,
                degraded: false,
                degraded_since_ms: 0,
                written_seq: 0,
                unsynced: Vec::new(),
            }),
            epoch: Instant::now(),
            io_started: AtomicU64::new(0),
            stats: IoStats::default(),
            notify: Mutex::new(None),
            group,
            abandoned: Mutex::new(Vec::new()),
        });
        let flusher = if let FsyncPolicy::Group { interval_ms } = inner.opts.fsync {
            let tick = Duration::from_millis(interval_ms.max(1));
            let inner2 = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("wal-flusher".into())
                    .spawn(move || loop {
                        let g = inner2.group.as_ref().unwrap();
                        let stop = {
                            let mut s = g.shutdown.lock();
                            if !*s {
                                g.shutdown_cv.wait_for(&mut s, tick);
                            }
                            *s
                        };
                        inner2.group_sync_pass();
                        if stop {
                            let mut p = g.progress.lock();
                            let written = inner2.writer.lock().written_seq;
                            p.failed = p.failed.max(written);
                            g.cv.notify_all();
                            break;
                        }
                    })
                    .expect("spawn wal-flusher"),
            )
        } else {
            None
        };
        Ok(Self { inner, flusher })
    }

    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Install the `wal_io` observer (telemetry bridge). Called once by the
    /// worker after its bus exists; ops: `retry`, `rotate`, `compact`,
    /// `degraded`, `rearmed`, `stall_shed`, `fsync_error`.
    pub fn set_io_notify(&self, cb: IoNotify) {
        *self.inner.notify.lock() = Some(cb);
    }

    /// Append one mutation. The caller may proceed iff
    /// [`AppendOutcome::accepted`]; an acceptance-path caller should treat
    /// anything but `Landed`/`NotDurable` as a shed.
    pub fn append(&self, rec: &WalRecord) -> AppendOutcome {
        if self.inner.stall_gate_tripped() {
            self.inner.bump(&self.inner.stats.stall_sheds);
            self.inner.emit("stall_shed");
            return AppendOutcome::Stalled;
        }
        let (out, seq) = {
            let mut w = self.inner.writer.lock();
            self.inner.append_locked(&mut w, rec)
        };
        match (out, seq) {
            (AppendOutcome::Landed, Some(seq)) if Self::must_wait(rec) => {
                self.inner.wait_group(seq, rec)
            }
            _ => out,
        }
    }

    /// Only acceptance (`Enqueued`) and the result barrier (`Completed`)
    /// wait for the covering group fsync; dequeues/sheds/snapshots are
    /// books-only and ride the next tick.
    fn must_wait(rec: &WalRecord) -> bool {
        matches!(
            rec,
            WalRecord::Enqueued { .. } | WalRecord::Completed { .. }
        )
    }

    /// Whether enough mutations accumulated for the next compaction.
    pub fn snapshot_due(&self) -> bool {
        let w = self.inner.writer.lock();
        !w.poisoned && !w.degraded && w.mutations_since_snapshot >= self.inner.opts.snapshot_every
    }

    /// Append a compaction snapshot and retire all older segments. The
    /// non-queue half of the state is supplied by `fill`, which runs
    /// **under the writer lock** so no mutation record can interleave
    /// between reading the live counters and writing the snapshot (such a
    /// record would otherwise be replayed on top of a snapshot that already
    /// includes it, double-counting). The pending set comes from the log's
    /// own book.
    pub fn snapshot_with<F>(&self, fill: F) -> bool
    where
        F: FnOnce() -> WalSnapshot,
    {
        let mut w = self.inner.writer.lock();
        if w.poisoned || w.degraded {
            return false;
        }
        let mut snap = fill();
        snap.pending = w.pending.values().cloned().collect();
        let rec = WalRecord::Snapshot { snap };
        let (out, _) = self.inner.append_locked(&mut w, &rec);
        if !out.is_landed() {
            return false;
        }
        // Compaction: replay starts from this snapshot, so segments before
        // the current one are dead weight. Barrier the snapshot first under
        // real-durability policies.
        if matches!(
            self.inner.opts.fsync,
            FsyncPolicy::Group { .. } | FsyncPolicy::Always
        ) {
            let _g = self.inner.io_guard();
            if w.out.sync().is_err() {
                self.inner.bump(&self.inner.stats.fsync_errors);
                return true; // snapshot landed; just skip compaction
            }
            if let Some(g) = self.inner.group.as_ref() {
                let covered = w.written_seq;
                w.unsynced.clear();
                let mut p = g.progress.lock();
                p.synced = p.synced.max(covered);
                g.cv.notify_all();
            }
        }
        let current = w.seg_index;
        let mut retired = false;
        for (idx, p) in discover_segments(self.inner.storage.as_ref(), &self.inner.path) {
            if idx < current && self.inner.storage.remove(&p).is_ok() {
                self.inner.bump(&self.inner.stats.segments_retired);
                retired = true;
            }
        }
        if retired {
            self.inner.emit("compact");
        }
        true
    }

    /// Prime the pending book after recovery (the re-enqueued invocations
    /// are already durable in the replayed prefix; they must reappear in
    /// the next snapshot without re-appending their `Enqueued` records).
    pub fn prime_pending(&self, pending: &[PendingInvocation]) {
        let mut w = self.inner.writer.lock();
        for p in pending {
            w.pending.insert(p.id, p.clone());
        }
    }

    /// Crash simulation: all further appends are dropped, as if the process
    /// had died at this instant. Used by `Worker::kill` and the chaos
    /// harness; never by graceful drain.
    pub fn poison(&self) {
        self.inner.writer.lock().poisoned = true;
        if let Some(g) = self.inner.group.as_ref() {
            let written = self.inner.writer.lock().written_seq;
            let mut p = g.progress.lock();
            p.failed = p.failed.max(written);
            p.poisoned = true;
            g.cv.notify_all();
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.writer.lock().poisoned
    }

    /// Degraded mode: serving continues but new work is not durable.
    pub fn is_degraded(&self) -> bool {
        self.inner.writer.lock().degraded
    }

    /// Attempt to leave degraded mode now (periodic re-arm driver; appends
    /// also retry lazily every `rearm_after_ms`). Returns true when armed.
    pub fn try_rearm(&self) -> bool {
        let mut w = self.inner.writer.lock();
        if w.poisoned {
            return false;
        }
        self.inner.try_rearm_locked(&mut w)
    }

    /// I/O health counters for `/status` and session digests.
    pub fn io_counts(&self) -> WalIoCounts {
        self.inner.stats.counts()
    }

    /// Number of incomplete invocations in the log's book (drain progress).
    pub fn pending_len(&self) -> usize {
        self.inner.writer.lock().pending.len()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(g) = self.inner.group.as_ref() {
            *g.shutdown.lock() = true;
            g.shutdown_cv.notify_all();
        }
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Replay

/// The state reconstructed by [`replay`].
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// Incomplete invocations in original enqueue order.
    pub pending: Vec<PendingInvocation>,
    pub counters: CounterBaselines,
    /// Per-tenant books: snapshot baselines plus tail mutations.
    pub tenants: Vec<TenantSnapshot>,
    pub bucket_levels: Vec<BucketLevel>,
    pub drr_deficits: Vec<DrrDeficit>,
    pub quarantine: Vec<String>,
    /// Highest trace id seen anywhere in the log; the recovered journal
    /// must mint above this so replayed and fresh ids never collide.
    pub max_id: u64,
    pub records_read: u64,
    /// Damage from the disk dying mid-write: unparseable legacy lines plus
    /// truncated final frames. Quarantined (skipped), not fatal.
    pub torn_lines: u64,
    /// Damage from the disk lying: frames whose CRC32 did not match (or
    /// whose framing was garbage). Quarantined, never replayed as pending.
    pub corrupt_frames: u64,
    /// Segment (or legacy) files that could not be read at all; recovery
    /// continues with what it can read.
    pub unreadable_files: u64,
    pub segments_read: u64,
}

fn tenant_entry<'a>(
    tenants: &'a mut Vec<TenantSnapshot>,
    name: &Option<String>,
) -> &'a mut TenantSnapshot {
    let key = name.clone().unwrap_or_else(|| "default".to_string());
    if let Some(i) = tenants.iter().position(|t| t.tenant == key) {
        return &mut tenants[i];
    }
    tenants.push(TenantSnapshot {
        tenant: key,
        weight: 1.0,
        ..Default::default()
    });
    let last = tenants.len() - 1;
    &mut tenants[last]
}

struct ReplayCursor {
    pending: BTreeMap<u64, PendingInvocation>,
    completed: HashSet<u64>,
    shed: HashSet<u64>,
}

fn apply_record(st: &mut ReplayState, cur: &mut ReplayCursor, rec: WalRecord) {
    st.records_read += 1;
    if let Some(id) = rec.trace_id() {
        st.max_id = st.max_id.max(id);
    }
    match rec {
        WalRecord::Snapshot { snap } => {
            cur.pending = snap.pending.into_iter().map(|p| (p.id, p)).collect();
            cur.completed.clear();
            cur.shed.clear();
            st.max_id = cur
                .pending
                .keys()
                .next_back()
                .copied()
                .unwrap_or(0)
                .max(st.max_id);
            st.counters = snap.counters;
            st.tenants = snap.tenants;
            st.bucket_levels = snap.bucket_levels;
            st.drr_deficits = snap.drr_deficits;
            st.quarantine = snap.quarantine;
        }
        WalRecord::Enqueued { inv } => {
            if cur.completed.contains(&inv.id)
                || cur.shed.contains(&inv.id)
                || cur.pending.contains_key(&inv.id)
            {
                return; // duplicate
            }
            tenant_entry(&mut st.tenants, &inv.tenant).admitted += 1;
            cur.pending.insert(inv.id, inv);
        }
        WalRecord::Dequeued { id } => {
            if let Some(p) = cur.pending.get_mut(&id) {
                p.dequeued = true;
            }
        }
        WalRecord::LeaseIssued { id, .. } => {
            if let Some(p) = cur.pending.get_mut(&id) {
                p.dequeued = true;
            }
        }
        WalRecord::LeaseRequeued { id } => {
            if let Some(p) = cur.pending.get_mut(&id) {
                p.dequeued = false;
            }
        }
        WalRecord::Completed { id, ok, tenant } => {
            if !cur.completed.insert(id) {
                return; // duplicate
            }
            cur.pending.remove(&id);
            if ok {
                st.counters.completed += 1;
                tenant_entry(&mut st.tenants, &tenant).served += 1;
            } else {
                st.counters.failed += 1;
            }
        }
        WalRecord::Shed {
            id,
            tenant,
            throttled,
        } => {
            if !cur.shed.insert(id) {
                return; // duplicate
            }
            let t = tenant_entry(&mut st.tenants, &tenant);
            if throttled {
                t.throttled += 1;
            } else {
                t.shed += 1;
            }
        }
    }
}

/// Replay a WAL: last snapshot + tail, deduplicated by invocation id, over
/// the real filesystem. See [`replay_with`].
pub fn replay(path: &Path) -> std::io::Result<ReplayState> {
    replay_with(path, &RealStorage)
}

/// Replay a WAL through a pluggable storage layer: a legacy unframed
/// JSON-lines file at `path` (if present), then every framed segment in
/// index order. Damage — torn tails, corrupt frames, unreadable files — is
/// quarantined and counted, never fatal; a missing log replays to the empty
/// state. Replay is idempotent: feeding it a log with duplicated records
/// (or replaying twice) yields the same pending set and counters, because
/// each id transitions each set at most once.
pub fn replay_with(path: &Path, storage: &dyn Storage) -> std::io::Result<ReplayState> {
    let mut st = ReplayState::default();
    let mut cur = ReplayCursor {
        pending: BTreeMap::new(),
        completed: HashSet::new(),
        shed: HashSet::new(),
    };
    match storage.read(path) {
        Ok(bytes) => {
            for line in String::from_utf8_lossy(&bytes).lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<WalRecord>(line) {
                    Ok(rec) => apply_record(&mut st, &mut cur, rec),
                    Err(_) => st.torn_lines += 1,
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(_) => st.unreadable_files += 1,
    }
    for (_, seg) in discover_segments(storage, path) {
        match storage.read(&seg) {
            Ok(bytes) => {
                st.segments_read += 1;
                let scan = scan_frames(&bytes);
                st.corrupt_frames += scan.corrupt_frames;
                st.torn_lines += scan.torn_tail;
                for rec in scan.records {
                    apply_record(&mut st, &mut cur, rec);
                }
            }
            Err(_) => st.unreadable_files += 1,
        }
    }
    st.pending = cur.pending.into_values().collect();
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iluvatar-wal-tests-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("queue.wal")
    }

    fn cleanup(p: &Path) {
        if let Some(d) = p.parent() {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    fn inv(id: u64, fqdn: &str, tenant: Option<&str>) -> PendingInvocation {
        PendingInvocation {
            id,
            fqdn: fqdn.into(),
            args: "{}".into(),
            tenant: tenant.map(|t| t.to_string()),
            tenant_weight: 1.0,
            arrived_at: 100,
            expected_exec_ms: 7.5,
            iat_ms: 0.0,
            expect_warm: true,
            dequeued: false,
        }
    }

    /// Scripted failures: errors write/sync ops whose 0-based occurrence
    /// index is in the set.
    #[derive(Default)]
    struct Script {
        fail_writes: Vec<u64>,
        fail_syncs: Vec<u64>,
        writes: AtomicU64,
        syncs: AtomicU64,
    }

    struct ScriptedStorage {
        real: RealStorage,
        script: Arc<Script>,
    }

    struct ScriptedFile {
        f: Box<dyn StorageFile>,
        script: Arc<Script>,
    }

    impl StorageFile for ScriptedFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            let n = self.script.writes.fetch_add(1, Ordering::Relaxed);
            if self.script.fail_writes.contains(&n) {
                return Err(io::Error::other("injected write error"));
            }
            self.f.write_all(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.f.flush()
        }
        fn sync(&mut self) -> io::Result<()> {
            let n = self.script.syncs.fetch_add(1, Ordering::Relaxed);
            if self.script.fail_syncs.contains(&n) {
                return Err(io::Error::other("injected fsync error"));
            }
            self.f.sync()
        }
    }

    impl Storage for ScriptedStorage {
        fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
            Ok(Box::new(ScriptedFile {
                f: self.real.open_append(path)?,
                script: Arc::clone(&self.script),
            }))
        }
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.real.read(path)
        }
        fn remove(&self, path: &Path) -> io::Result<()> {
            self.real.remove(path)
        }
        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            self.real.list(dir)
        }
    }

    #[test]
    fn roundtrip_enqueue_complete() {
        let p = tmp("roundtrip");
        let wal = Wal::open(&p, 1000).unwrap();
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", Some("a"))
            })
            .is_landed());
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(2, "f-1", None)
            })
            .is_landed());
        assert!(wal.append(&WalRecord::Dequeued { id: 1 }).is_landed());
        assert!(wal
            .append(&WalRecord::Completed {
                id: 1,
                ok: true,
                tenant: Some("a".into())
            })
            .is_landed());
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 1);
        assert_eq!(st.pending[0].id, 2);
        assert_eq!(st.counters.completed, 1);
        assert_eq!(st.max_id, 2);
        assert_eq!(st.corrupt_frames, 0);
        let a = st.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert_eq!((a.admitted, a.served), (1, 1));
        let d = st.tenants.iter().find(|t| t.tenant == "default").unwrap();
        assert_eq!((d.admitted, d.served), (1, 0));
        cleanup(&p);
    }

    #[test]
    fn missing_file_is_empty_state() {
        let st = replay(Path::new("/nonexistent/dir/never.wal")).unwrap();
        assert!(st.pending.is_empty());
        assert_eq!(st.records_read, 0);
    }

    #[test]
    fn snapshot_compacts_and_tail_extends() {
        let p = tmp("snapshot");
        let wal = Wal::open(&p, 2).unwrap();
        wal.append(&WalRecord::Enqueued {
            inv: inv(10, "f-1", Some("a")),
        });
        wal.append(&WalRecord::Completed {
            id: 10,
            ok: true,
            tenant: Some("a".into()),
        });
        assert!(wal.snapshot_due());
        assert!(wal.snapshot_with(|| WalSnapshot {
            counters: CounterBaselines {
                completed: 1,
                ..Default::default()
            },
            tenants: vec![TenantSnapshot {
                tenant: "a".into(),
                admitted: 1,
                served: 1,
                ..Default::default()
            }],
            ..Default::default()
        }));
        assert!(!wal.snapshot_due());
        // Tail after the snapshot.
        wal.append(&WalRecord::Enqueued {
            inv: inv(11, "f-1", Some("a")),
        });
        let st = replay(&p).unwrap();
        assert_eq!(st.counters.completed, 1, "baseline from snapshot");
        assert_eq!(st.pending.len(), 1);
        assert_eq!(st.pending[0].id, 11);
        let a = st.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert_eq!(a.admitted, 2, "snapshot baseline + tail enqueue");
        cleanup(&p);
    }

    #[test]
    fn replay_skips_torn_tail_frame_and_legacy_line() {
        let p = tmp("torn");
        let wal = Wal::open(&p, 1000).unwrap();
        wal.append(&WalRecord::Enqueued {
            inv: inv(1, "f-1", None),
        });
        drop(wal);
        // Torn frame: half of a valid frame at the segment tail.
        let frame = encode_frame(&WalRecord::Enqueued {
            inv: inv(9, "f-9", None),
        });
        let seg = segment_path(&p, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&seg, &bytes).unwrap();
        // Legacy unframed file with one good line and one torn line.
        std::fs::write(
            &p,
            "{\"op\":\"shed\",\"id\":77,\"throttled\":false}\n{\"op\":\"enqueued\",\"inv\":{\"id\":9",
        )
        .unwrap();
        let st = replay(&p).unwrap();
        assert_eq!(st.torn_lines, 2, "one legacy torn line + one torn frame");
        assert_eq!(st.pending.len(), 1);
        assert_eq!(st.pending[0].id, 1);
        let d = st.tenants.iter().find(|t| t.tenant == "default").unwrap();
        assert_eq!(d.shed, 1, "legacy line replayed before segments");
        cleanup(&p);
    }

    #[test]
    fn poisoned_log_rejects_appends() {
        let p = tmp("poison");
        let wal = Wal::open(&p, 1000).unwrap();
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", None)
            })
            .is_landed());
        wal.poison();
        assert_eq!(
            wal.append(&WalRecord::Completed {
                id: 1,
                ok: true,
                tenant: None
            }),
            AppendOutcome::Poisoned
        );
        assert!(!wal.snapshot_with(WalSnapshot::default));
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 1, "completion after poison never landed");
        cleanup(&p);
    }

    #[test]
    fn duplicated_records_replay_identically() {
        let p = tmp("dup");
        let wal = Wal::open(&p, 1000).unwrap();
        let records = vec![
            WalRecord::Enqueued {
                inv: inv(1, "f-1", Some("a")),
            },
            WalRecord::Dequeued { id: 1 },
            WalRecord::Enqueued {
                inv: inv(2, "f-1", Some("b")),
            },
            WalRecord::Completed {
                id: 1,
                ok: true,
                tenant: Some("a".into()),
            },
            WalRecord::Shed {
                id: 3,
                tenant: Some("b".into()),
                throttled: true,
            },
        ];
        for r in &records {
            wal.append(r);
        }
        drop(wal);
        let once = replay(&p).unwrap();
        // Duplicate the whole encoded tail at the byte level (as a crashed
        // retry ladder might) and replay again.
        let seg = segment_path(&p, 1);
        let bytes = std::fs::read(&seg).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        std::fs::write(&seg, &doubled).unwrap();
        let twice = replay(&p).unwrap();
        assert_eq!(once.pending, twice.pending);
        assert_eq!(once.counters, twice.counters);
        assert_eq!(once.tenants, twice.tenants);
        cleanup(&p);
    }

    #[test]
    fn bit_flip_quarantines_one_frame_and_resyncs() {
        let p = tmp("bitflip");
        let wal = Wal::open(&p, 1000).unwrap();
        for i in 1..=3u64 {
            wal.append(&WalRecord::Enqueued {
                inv: inv(i, "f-1", None),
            });
        }
        drop(wal);
        let seg = segment_path(&p, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip one payload byte in the middle frame.
        let frame_len = encode_frame(&WalRecord::Enqueued {
            inv: inv(1, "f-1", None),
        })
        .len();
        bytes[frame_len + FRAME_HEADER + 4] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let st = replay(&p).unwrap();
        assert_eq!(st.corrupt_frames, 1, "the disk lied once");
        assert_eq!(st.torn_lines, 0);
        let ids: Vec<u64> = st.pending.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![1, 3], "frames around the damage survive");
        cleanup(&p);
    }

    #[test]
    fn write_error_rotates_and_appends_resume() {
        // The pinned anti-brick test: a transient write error must not
        // permanently disable the WAL.
        let p = tmp("ladder");
        let script = Arc::new(Script {
            // Occurrence 1 is the second record's first write; with
            // retry_limit 0 the ladder goes straight to rotation.
            fail_writes: vec![1],
            ..Default::default()
        });
        let storage = Arc::new(ScriptedStorage {
            real: RealStorage,
            script: Arc::clone(&script),
        });
        let opts = WalOptions {
            retry_limit: 0,
            ..WalOptions::default()
        };
        let wal = Wal::open_with(&p, opts, storage).unwrap();
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", None)
            })
            .is_landed());
        assert!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(2, "f-1", None)
            })
            .is_landed(),
            "error -> rotate -> landed on the fresh segment"
        );
        assert!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(3, "f-1", None)
            })
            .is_landed(),
            "appends resume after the transient error"
        );
        let counts = wal.io_counts();
        assert_eq!(counts.rotations, 1);
        assert_eq!(counts.write_errors, 1);
        drop(wal);
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 3, "all three enqueues recovered");
        assert_eq!(st.segments_read, 2);
        cleanup(&p);
    }

    #[test]
    fn exhausted_ladder_rejects_without_bricking() {
        let p = tmp("reject");
        let script = Arc::new(Script {
            // Record 2: first write (1), retry (2), and post-rotation
            // write (3) all fail -> Unavailable. Record 3 succeeds.
            fail_writes: vec![1, 2, 3],
            ..Default::default()
        });
        let storage = Arc::new(ScriptedStorage {
            real: RealStorage,
            script: Arc::clone(&script),
        });
        let opts = WalOptions {
            retry_limit: 1,
            retry_backoff_ms: 0,
            ..WalOptions::default()
        };
        let wal = Wal::open_with(&p, opts, storage).unwrap();
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", None)
            })
            .is_landed());
        assert_eq!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(2, "f-1", None)
            }),
            AppendOutcome::Unavailable
        );
        assert!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(3, "f-1", None)
            })
            .is_landed(),
            "reject is per-append, not a permanent brick"
        );
        drop(wal);
        let st = replay(&p).unwrap();
        let ids: Vec<u64> = st.pending.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![1, 3]);
        cleanup(&p);
    }

    #[test]
    fn degrade_serves_non_durable_then_rearms() {
        let p = tmp("degrade");
        let script = Arc::new(Script {
            fail_writes: vec![1, 2], // record 2: write + post-rotate write fail
            ..Default::default()
        });
        let storage = Arc::new(ScriptedStorage {
            real: RealStorage,
            script: Arc::clone(&script),
        });
        let opts = WalOptions {
            retry_limit: 0,
            on_error: WalOnError::Degrade,
            rearm_after_ms: 0,
            ..WalOptions::default()
        };
        let wal = Wal::open_with(&p, opts, storage).unwrap();
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", None)
            })
            .is_landed());
        assert_eq!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(2, "f-1", None)
            }),
            AppendOutcome::NotDurable
        );
        assert!(wal.is_degraded());
        // Completion of the durable invocation while degraded: absorbed
        // into the book (not written), so the book stays truthful.
        assert_eq!(
            wal.append(&WalRecord::Completed {
                id: 1,
                ok: true,
                tenant: None
            }),
            AppendOutcome::NotDurable
        );
        assert_eq!(wal.pending_len(), 0);
        // rearm_after_ms = 0: the next append re-arms lazily.
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(3, "f-1", None)
            })
            .is_landed());
        assert!(!wal.is_degraded());
        assert_eq!(wal.io_counts().rearms, 1);
        // The completion of the non-durable invocation has nothing to log.
        assert_eq!(
            wal.append(&WalRecord::Completed {
                id: 2,
                ok: true,
                tenant: None
            }),
            AppendOutcome::Skipped
        );
        drop(wal);
        let st = replay(&p).unwrap();
        let ids: Vec<u64> = st.pending.iter().map(|x| x.id).collect();
        assert_eq!(
            ids,
            vec![1, 3],
            "non-durable enqueue is off the record; durable ones replay"
        );
        cleanup(&p);
    }

    #[test]
    fn segments_rotate_by_size_and_snapshot_retires_them() {
        let p = tmp("segments");
        let opts = WalOptions {
            segment_bytes: 256,
            fsync: FsyncPolicy::Always,
            ..WalOptions::default()
        };
        let wal = Wal::open_with(&p, opts, Arc::new(RealStorage)).unwrap();
        for i in 1..=8u64 {
            assert!(wal
                .append(&WalRecord::Enqueued {
                    inv: inv(i, "f-long-name-to-grow-frames", None)
                })
                .is_landed());
        }
        assert!(wal.io_counts().rotations >= 2, "size rotation kicked in");
        let before = discover_segments(&RealStorage, &p).len();
        assert!(before >= 3);
        assert!(wal.snapshot_with(WalSnapshot::default));
        let after = discover_segments(&RealStorage, &p);
        assert_eq!(after.len(), 1, "compaction retired all older segments");
        assert!(wal.io_counts().segments_retired >= 2);
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 8, "snapshot carries the pending book");
        cleanup(&p);
    }

    #[test]
    fn group_commit_lands_appends_and_sheds_on_stall() {
        let p = tmp("group");
        struct StallScript {
            stall_sync: AtomicU64,
        }
        struct StallStorage {
            real: RealStorage,
            script: Arc<StallScript>,
        }
        struct StallFile {
            f: Box<dyn StorageFile>,
            script: Arc<StallScript>,
        }
        impl StorageFile for StallFile {
            fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
                self.f.write_all(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                self.f.flush()
            }
            fn sync(&mut self) -> io::Result<()> {
                let ms = self.script.stall_sync.swap(0, Ordering::SeqCst);
                if ms > 0 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                self.f.sync()
            }
        }
        impl Storage for StallStorage {
            fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
                Ok(Box::new(StallFile {
                    f: self.real.open_append(path)?,
                    script: Arc::clone(&self.script),
                }))
            }
            fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
                self.real.read(path)
            }
            fn remove(&self, path: &Path) -> io::Result<()> {
                self.real.remove(path)
            }
            fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
                self.real.list(dir)
            }
        }
        let script = Arc::new(StallScript {
            stall_sync: AtomicU64::new(0),
        });
        let storage = Arc::new(StallStorage {
            real: RealStorage,
            script: Arc::clone(&script),
        });
        // The deadline needs headroom over flusher-thread scheduling jitter
        // (the whole workspace test suite may be hammering every core) while
        // staying well under the 1.5 s scripted stall.
        let opts = WalOptions {
            fsync: FsyncPolicy::Group { interval_ms: 1 },
            append_deadline_ms: 600,
            ..WalOptions::default()
        };
        let wal = Arc::new(Wal::open_with(&p, opts, storage).unwrap());
        // Healthy group commit: the append waits for the covering fsync.
        assert_eq!(
            wal.append(&WalRecord::Enqueued {
                inv: inv(1, "f-1", None)
            }),
            AppendOutcome::Landed
        );
        // Stall the next fsync well past the deadline, then append: the
        // waiter times out, is shed, and the flusher retracts it.
        script.stall_sync.store(1_500, Ordering::SeqCst);
        let t0 = Instant::now();
        let out = wal.append(&WalRecord::Enqueued {
            inv: inv(2, "f-1", None),
        });
        assert_eq!(out, AppendOutcome::Stalled);
        assert!(
            t0.elapsed() < Duration::from_millis(1_200),
            "the caller was shed at the deadline, not blocked through the stall"
        );
        // While the fsync is still stuck, the pre-write gate sheds without
        // even taking the writer lock.
        std::thread::sleep(Duration::from_millis(200));
        let out = wal.append(&WalRecord::Enqueued {
            inv: inv(3, "f-1", None),
        });
        assert_eq!(out, AppendOutcome::Stalled);
        // After the stall clears, appends land again and the abandoned
        // enqueue has been retracted.
        std::thread::sleep(Duration::from_millis(1_600));
        assert!(wal
            .append(&WalRecord::Enqueued {
                inv: inv(4, "f-1", None)
            })
            .is_landed());
        assert!(wal.io_counts().stall_sheds >= 2);
        assert_eq!(wal.io_counts().abandoned, 1);
        drop(Arc::try_unwrap(wal).ok().expect("sole owner"));
        let st = replay(&p).unwrap();
        let ids: Vec<u64> = st.pending.iter().map(|x| x.id).collect();
        assert_eq!(
            ids,
            vec![1, 4],
            "the shed enqueue was retracted, never to be replayed as pending"
        );
        assert_eq!(st.counters.failed, 1, "retraction books as a failure");
        cleanup(&p);
    }
}
