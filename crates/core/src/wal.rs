//! Queue write-ahead log + snapshot recovery.
//!
//! The worker keeps all invocation state in memory (§3); a crash therefore
//! loses every queued invocation and accounting book. This module makes the
//! queue durable: every queue mutation (enqueue / dequeue / completion /
//! admission shed) is appended to a JSON-lines log, and a periodic compacted
//! snapshot captures the full recoverable state — pending invocations,
//! Prometheus counter baselines, per-tenant admission books, token-bucket
//! levels, DRR deficits, and the quarantine set. Recovery replays the last
//! snapshot plus the tail after it, deduplicating by invocation id, so a
//! duplicated or re-replayed tail converges to the same state (idempotent
//! replay).
//!
//! Durability contract: an invocation is *accepted* only after its
//! `Enqueued` record hit the log ([`Wal::append`] returns `false` once the
//! log is poisoned or broken, and the worker then rejects the invocation).
//! Completions whose record did not land before a crash are re-enqueued and
//! re-executed on recovery — at-least-once execution, exactly-once
//! accounting (the completion is only booked when its record lands).

use iluvatar_admission::TenantSnapshot;
use iluvatar_sync::TimeMs;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A queued-but-not-completed invocation, as recorded in the log. Carries
/// everything needed to rebuild the original [`crate::queue::QueuedInvocation`]
/// with its original arrival time, cost estimate, and tenant label.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PendingInvocation {
    /// End-to-end trace id — the dedup key for idempotent replay.
    #[serde(default)]
    pub id: u64,
    #[serde(default)]
    pub fqdn: String,
    #[serde(default)]
    pub args: String,
    #[serde(default)]
    pub tenant: Option<String>,
    #[serde(default)]
    pub tenant_weight: f64,
    #[serde(default)]
    pub arrived_at: TimeMs,
    #[serde(default)]
    pub expected_exec_ms: f64,
    #[serde(default)]
    pub iat_ms: f64,
    #[serde(default)]
    pub expect_warm: bool,
    /// Whether the invocation had left the queue (was in flight) at the
    /// time of the last record. In-flight invocations are re-enqueued on
    /// recovery like queued ones — their execution died with the process.
    #[serde(default)]
    pub dequeued: bool,
}

/// Monotonic worker counter baselines persisted in snapshots so a restart
/// does not read as a Prometheus counter reset mid-scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterBaselines {
    #[serde(default)]
    pub completed: u64,
    #[serde(default)]
    pub dropped: u64,
    #[serde(default)]
    pub failed: u64,
    #[serde(default)]
    pub cold_starts: u64,
    #[serde(default)]
    pub retries: u64,
    #[serde(default)]
    pub agent_timeouts: u64,
    #[serde(default)]
    pub quarantined: u64,
    #[serde(default)]
    pub quarantine_released: u64,
    #[serde(default)]
    pub dropped_retry_exhausted: u64,
}

/// One tenant's token-bucket fill level at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BucketLevel {
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub tokens: f64,
}

/// One tenant's DRR deficit at snapshot time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DrrDeficit {
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub deficit: f64,
}

/// A compacted point-in-time image of all recoverable worker state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WalSnapshot {
    #[serde(default)]
    pub pending: Vec<PendingInvocation>,
    #[serde(default)]
    pub counters: CounterBaselines,
    #[serde(default)]
    pub tenants: Vec<TenantSnapshot>,
    #[serde(default)]
    pub bucket_levels: Vec<BucketLevel>,
    #[serde(default)]
    pub drr_deficits: Vec<DrrDeficit>,
    /// Fqdns with a container in quarantine (informational; the containers
    /// themselves died with the process).
    #[serde(default)]
    pub quarantine: Vec<String>,
}

/// One queue mutation, as a JSON line. The `op` tag keeps the log
/// greppable: `{"op":"enqueued","inv":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum WalRecord {
    /// Admitted and queued (or bypassed — a bypass logs Enqueued+Dequeued).
    Enqueued { inv: PendingInvocation },
    /// Left the queue for dispatch.
    Dequeued { id: u64 },
    /// Finished (either way); the invocation leaves the pending set.
    Completed {
        id: u64,
        ok: bool,
        #[serde(default)]
        tenant: Option<String>,
    },
    /// Rejected at admission; never entered the pending set but must be
    /// replayed into the tenant books.
    Shed {
        id: u64,
        #[serde(default)]
        tenant: Option<String>,
        /// true = tenant rate limit, false = best-effort overload shed.
        throttled: bool,
    },
    /// Compaction point: replay restarts from the latest of these.
    Snapshot { snap: WalSnapshot },
}

impl WalRecord {
    /// The record's `op` tag as a stable label, for the canonical telemetry
    /// stream (`TelemetryKind::Wal { op }`) and for log grepping.
    pub fn op_label(&self) -> &'static str {
        match self {
            WalRecord::Enqueued { .. } => "enqueued",
            WalRecord::Dequeued { .. } => "dequeued",
            WalRecord::Completed { .. } => "completed",
            WalRecord::Shed { .. } => "shed",
            WalRecord::Snapshot { .. } => "snapshot",
        }
    }

    /// The trace id the record is about, if any (snapshots have none).
    pub fn trace_id(&self) -> Option<u64> {
        self.id()
    }

    fn id(&self) -> Option<u64> {
        match self {
            WalRecord::Enqueued { inv } => Some(inv.id),
            WalRecord::Dequeued { id }
            | WalRecord::Completed { id, .. }
            | WalRecord::Shed { id, .. } => Some(*id),
            WalRecord::Snapshot { .. } => None,
        }
    }
}

struct Writer {
    out: BufWriter<std::fs::File>,
    /// The WAL's own book of incomplete invocations — the `pending` section
    /// of the next snapshot. Keyed by trace id; ids are minted
    /// monotonically, so iteration order is enqueue order.
    pending: BTreeMap<u64, PendingInvocation>,
    mutations_since_snapshot: u64,
    /// Crash simulation: a poisoned log drops every append (as if the
    /// process died), so recovery sees exactly the pre-kill prefix.
    poisoned: bool,
    /// A real I/O error also stops the log; the worker then rejects new
    /// work rather than accepting invocations it cannot make durable.
    broken: bool,
}

/// The append-only write-ahead log. One per worker; all methods take `&self`
/// (internally locked) so the worker can append from any hot-path thread.
pub struct Wal {
    path: PathBuf,
    snapshot_every: u64,
    writer: Mutex<Writer>,
}

impl Wal {
    /// Open (append mode, creating if absent). `snapshot_every` is the
    /// number of mutations between compaction snapshots.
    pub fn open(path: &Path, snapshot_every: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            snapshot_every: snapshot_every.max(1),
            writer: Mutex::new(Writer {
                out: BufWriter::new(file),
                pending: BTreeMap::new(),
                mutations_since_snapshot: 0,
                poisoned: false,
                broken: false,
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one mutation and flush it to the OS. Returns `false` when the
    /// log is poisoned or broken — the caller must then treat the mutation
    /// as not-durable (reject the invocation at enqueue time).
    pub fn append(&self, rec: &WalRecord) -> bool {
        let mut w = self.writer.lock();
        self.append_locked(&mut w, rec)
    }

    fn append_locked(&self, w: &mut Writer, rec: &WalRecord) -> bool {
        if w.poisoned || w.broken {
            return false;
        }
        let line = match serde_json::to_string(rec) {
            Ok(l) => l,
            Err(_) => {
                w.broken = true;
                return false;
            }
        };
        let wrote = writeln!(w.out, "{line}").and_then(|_| w.out.flush());
        if wrote.is_err() {
            w.broken = true;
            return false;
        }
        match rec {
            WalRecord::Enqueued { inv } => {
                w.pending.insert(inv.id, inv.clone());
            }
            WalRecord::Dequeued { id } => {
                if let Some(p) = w.pending.get_mut(id) {
                    p.dequeued = true;
                }
            }
            WalRecord::Completed { id, .. } => {
                w.pending.remove(id);
            }
            WalRecord::Shed { .. } => {}
            WalRecord::Snapshot { .. } => {
                w.mutations_since_snapshot = 0;
                return true;
            }
        }
        w.mutations_since_snapshot += 1;
        true
    }

    /// Whether enough mutations accumulated for the next compaction.
    pub fn snapshot_due(&self) -> bool {
        let w = self.writer.lock();
        !w.poisoned && !w.broken && w.mutations_since_snapshot >= self.snapshot_every
    }

    /// Append a compaction snapshot. The non-queue half of the state is
    /// supplied by `fill`, which runs **under the writer lock** so no
    /// mutation record can interleave between reading the live counters and
    /// writing the snapshot (such a record would otherwise be replayed on
    /// top of a snapshot that already includes it, double-counting).
    /// The pending set comes from the log's own book.
    pub fn snapshot_with<F>(&self, fill: F) -> bool
    where
        F: FnOnce() -> WalSnapshot,
    {
        let mut w = self.writer.lock();
        if w.poisoned || w.broken {
            return false;
        }
        let mut snap = fill();
        snap.pending = w.pending.values().cloned().collect();
        let rec = WalRecord::Snapshot { snap };
        self.append_locked(&mut w, &rec)
    }

    /// Prime the pending book after recovery (the re-enqueued invocations
    /// are already durable in the replayed prefix; they must reappear in
    /// the next snapshot without re-appending their `Enqueued` records).
    pub fn prime_pending(&self, pending: &[PendingInvocation]) {
        let mut w = self.writer.lock();
        for p in pending {
            w.pending.insert(p.id, p.clone());
        }
    }

    /// Crash simulation: all further appends are dropped, as if the process
    /// had died at this instant. Used by `Worker::kill` and the chaos
    /// harness; never by graceful drain.
    pub fn poison(&self) {
        self.writer.lock().poisoned = true;
    }

    pub fn is_poisoned(&self) -> bool {
        self.writer.lock().poisoned
    }

    /// Number of incomplete invocations in the log's book (drain progress).
    pub fn pending_len(&self) -> usize {
        self.writer.lock().pending.len()
    }
}

/// The state reconstructed by [`replay`].
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// Incomplete invocations in original enqueue order.
    pub pending: Vec<PendingInvocation>,
    pub counters: CounterBaselines,
    /// Per-tenant books: snapshot baselines plus tail mutations.
    pub tenants: Vec<TenantSnapshot>,
    pub bucket_levels: Vec<BucketLevel>,
    pub drr_deficits: Vec<DrrDeficit>,
    pub quarantine: Vec<String>,
    /// Highest trace id seen anywhere in the log; the recovered journal
    /// must mint above this so replayed and fresh ids never collide.
    pub max_id: u64,
    pub records_read: u64,
    /// Unparseable lines (torn tail writes); skipped, not fatal.
    pub torn_lines: u64,
}

fn tenant_entry<'a>(
    tenants: &'a mut Vec<TenantSnapshot>,
    name: &Option<String>,
) -> &'a mut TenantSnapshot {
    let key = name.clone().unwrap_or_else(|| "default".to_string());
    if let Some(i) = tenants.iter().position(|t| t.tenant == key) {
        return &mut tenants[i];
    }
    tenants.push(TenantSnapshot {
        tenant: key,
        weight: 1.0,
        ..Default::default()
    });
    let last = tenants.len() - 1;
    &mut tenants[last]
}

/// Replay a WAL file: last snapshot + tail, deduplicated by invocation id.
/// A missing file replays to the empty state. Replay is idempotent: feeding
/// it a log with duplicated records (or replaying twice) yields the same
/// pending set and counters, because each id transitions each set at most
/// once.
pub fn replay(path: &Path) -> std::io::Result<ReplayState> {
    let mut st = ReplayState::default();
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(st),
        Err(e) => return Err(e),
    };
    // Dedup sets for the current tail (reset at each snapshot, which is a
    // fresh authoritative baseline).
    let mut pending: BTreeMap<u64, PendingInvocation> = BTreeMap::new();
    let mut completed: HashSet<u64> = HashSet::new();
    let mut shed: HashSet<u64> = HashSet::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: WalRecord = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(_) => {
                st.torn_lines += 1;
                continue;
            }
        };
        st.records_read += 1;
        if let Some(id) = rec.id() {
            st.max_id = st.max_id.max(id);
        }
        match rec {
            WalRecord::Snapshot { snap } => {
                pending = snap.pending.into_iter().map(|p| (p.id, p)).collect();
                completed.clear();
                shed.clear();
                st.max_id = pending
                    .keys()
                    .next_back()
                    .copied()
                    .unwrap_or(0)
                    .max(st.max_id);
                st.counters = snap.counters;
                st.tenants = snap.tenants;
                st.bucket_levels = snap.bucket_levels;
                st.drr_deficits = snap.drr_deficits;
                st.quarantine = snap.quarantine;
            }
            WalRecord::Enqueued { inv } => {
                if completed.contains(&inv.id)
                    || shed.contains(&inv.id)
                    || pending.contains_key(&inv.id)
                {
                    continue; // duplicate
                }
                tenant_entry(&mut st.tenants, &inv.tenant).admitted += 1;
                pending.insert(inv.id, inv);
            }
            WalRecord::Dequeued { id } => {
                if let Some(p) = pending.get_mut(&id) {
                    p.dequeued = true;
                }
            }
            WalRecord::Completed { id, ok, tenant } => {
                if !completed.insert(id) {
                    continue; // duplicate
                }
                pending.remove(&id);
                if ok {
                    st.counters.completed += 1;
                    tenant_entry(&mut st.tenants, &tenant).served += 1;
                } else {
                    st.counters.failed += 1;
                }
            }
            WalRecord::Shed {
                id,
                tenant,
                throttled,
            } => {
                if !shed.insert(id) {
                    continue; // duplicate
                }
                let t = tenant_entry(&mut st.tenants, &tenant);
                if throttled {
                    t.throttled += 1;
                } else {
                    t.shed += 1;
                }
            }
        }
    }
    st.pending = pending.into_values().collect();
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("iluvatar-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let unique = format!("{name}-{}-{:p}.wal", std::process::id(), &dir as *const _);
        dir.join(unique)
    }

    fn inv(id: u64, fqdn: &str, tenant: Option<&str>) -> PendingInvocation {
        PendingInvocation {
            id,
            fqdn: fqdn.into(),
            args: "{}".into(),
            tenant: tenant.map(|t| t.to_string()),
            tenant_weight: 1.0,
            arrived_at: 100,
            expected_exec_ms: 7.5,
            iat_ms: 0.0,
            expect_warm: true,
            dequeued: false,
        }
    }

    #[test]
    fn roundtrip_enqueue_complete() {
        let p = tmp("roundtrip");
        let _ = std::fs::remove_file(&p);
        let wal = Wal::open(&p, 1000).unwrap();
        assert!(wal.append(&WalRecord::Enqueued {
            inv: inv(1, "f-1", Some("a"))
        }));
        assert!(wal.append(&WalRecord::Enqueued {
            inv: inv(2, "f-1", None)
        }));
        assert!(wal.append(&WalRecord::Dequeued { id: 1 }));
        assert!(wal.append(&WalRecord::Completed {
            id: 1,
            ok: true,
            tenant: Some("a".into())
        }));
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 1);
        assert_eq!(st.pending[0].id, 2);
        assert_eq!(st.counters.completed, 1);
        assert_eq!(st.max_id, 2);
        let a = st.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert_eq!((a.admitted, a.served), (1, 1));
        let d = st.tenants.iter().find(|t| t.tenant == "default").unwrap();
        assert_eq!((d.admitted, d.served), (1, 0));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_is_empty_state() {
        let st = replay(Path::new("/nonexistent/dir/never.wal")).unwrap();
        assert!(st.pending.is_empty());
        assert_eq!(st.records_read, 0);
    }

    #[test]
    fn snapshot_compacts_and_tail_extends() {
        let p = tmp("snapshot");
        let _ = std::fs::remove_file(&p);
        let wal = Wal::open(&p, 2).unwrap();
        wal.append(&WalRecord::Enqueued {
            inv: inv(10, "f-1", Some("a")),
        });
        wal.append(&WalRecord::Completed {
            id: 10,
            ok: true,
            tenant: Some("a".into()),
        });
        assert!(wal.snapshot_due());
        assert!(wal.snapshot_with(|| WalSnapshot {
            counters: CounterBaselines {
                completed: 1,
                ..Default::default()
            },
            tenants: vec![TenantSnapshot {
                tenant: "a".into(),
                admitted: 1,
                served: 1,
                ..Default::default()
            }],
            ..Default::default()
        }));
        assert!(!wal.snapshot_due());
        // Tail after the snapshot.
        wal.append(&WalRecord::Enqueued {
            inv: inv(11, "f-1", Some("a")),
        });
        let st = replay(&p).unwrap();
        assert_eq!(st.counters.completed, 1, "baseline from snapshot");
        assert_eq!(st.pending.len(), 1);
        assert_eq!(st.pending[0].id, 11);
        let a = st.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert_eq!(a.admitted, 2, "snapshot baseline + tail enqueue");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn replay_skips_torn_tail_line() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        let wal = Wal::open(&p, 1000).unwrap();
        wal.append(&WalRecord::Enqueued {
            inv: inv(1, "f-1", None),
        });
        drop(wal);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "{{\"op\":\"enqueued\",\"inv\":{{\"id\":9").unwrap(); // torn
        drop(f);
        let st = replay(&p).unwrap();
        assert_eq!(st.torn_lines, 1);
        assert_eq!(st.pending.len(), 1);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn poisoned_log_rejects_appends() {
        let p = tmp("poison");
        let _ = std::fs::remove_file(&p);
        let wal = Wal::open(&p, 1000).unwrap();
        assert!(wal.append(&WalRecord::Enqueued {
            inv: inv(1, "f-1", None)
        }));
        wal.poison();
        assert!(!wal.append(&WalRecord::Completed {
            id: 1,
            ok: true,
            tenant: None
        }));
        assert!(!wal.snapshot_with(WalSnapshot::default));
        let st = replay(&p).unwrap();
        assert_eq!(st.pending.len(), 1, "completion after poison never landed");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn duplicated_tail_replays_identically() {
        let p = tmp("dup");
        let _ = std::fs::remove_file(&p);
        let wal = Wal::open(&p, 1000).unwrap();
        let records = vec![
            WalRecord::Enqueued {
                inv: inv(1, "f-1", Some("a")),
            },
            WalRecord::Dequeued { id: 1 },
            WalRecord::Enqueued {
                inv: inv(2, "f-1", Some("b")),
            },
            WalRecord::Completed {
                id: 1,
                ok: true,
                tenant: Some("a".into()),
            },
            WalRecord::Shed {
                id: 3,
                tenant: Some("b".into()),
                throttled: true,
            },
        ];
        for r in &records {
            wal.append(r);
        }
        let once = replay(&p).unwrap();
        for r in &records {
            wal.append(r); // duplicate the whole tail
        }
        let twice = replay(&p).unwrap();
        assert_eq!(once.pending, twice.pending);
        assert_eq!(once.counters, twice.counters);
        assert_eq!(once.tenants, twice.tenants);
        let _ = std::fs::remove_file(&p);
    }
}
