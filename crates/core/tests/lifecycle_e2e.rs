//! Worker lifecycle end-to-end: graceful drain over HTTP and crash
//! recovery from the queue write-ahead log.

use iluvatar_containers::simulated::{SimBackend, SimBackendConfig};
use iluvatar_containers::{ContainerBackend, FunctionSpec};
use iluvatar_core::api::{WorkerApi, WorkerApiClient};
use iluvatar_core::{AdmissionConfig, LifecycleConfig, TenantSpec, Worker, WorkerConfig};
use iluvatar_http::{Method, Request};
use iluvatar_sync::SystemClock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn temp_wal() -> String {
    let p = std::env::temp_dir().join(format!(
        "iluvatar-lifecycle-e2e-{}-{}.wal",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p.to_str().unwrap().to_string()
}

fn backend(clock: &Arc<dyn iluvatar_sync::Clock>) -> Arc<dyn ContainerBackend> {
    Arc::new(SimBackend::new(
        Arc::clone(clock),
        SimBackendConfig {
            time_scale: 0.02,
            ..Default::default()
        },
    ))
}

fn lifecycle_cfg(name: &str, wal: &str) -> WorkerConfig {
    WorkerConfig {
        name: name.to_string(),
        lifecycle: LifecycleConfig::with_wal(wal),
        admission: AdmissionConfig::enabled_with(vec![
            TenantSpec::new("ten-a"),
            TenantSpec::new("ten-b"),
        ]),
        ..WorkerConfig::for_testing()
    }
}

/// Graceful drain over the HTTP API: in-flight invocations complete, new
/// ones get 503 + `Retry-After`, and the worker lands in `stopped` with
/// zero drain backlog.
#[test]
fn drain_finishes_in_flight_and_rejects_new_with_retry_after() {
    let clock: Arc<dyn iluvatar_sync::Clock> = SystemClock::shared();
    let wal = temp_wal();
    let worker = Arc::new(Worker::new(
        lifecycle_cfg("drainee", &wal),
        backend(&clock),
        Arc::clone(&clock),
    ));
    let api = WorkerApi::serve(Arc::clone(&worker)).unwrap();
    let client = WorkerApiClient::new(api.addr());
    // Long enough (2000 ms × 0.02 scale = 40 ms real) that the drain lands
    // while the invocation is still running.
    client
        .register(&FunctionSpec::new("slow", "1").with_timing(2_000, 3_000))
        .unwrap();

    let cookie = client.async_invoke("slow-1", "{}").unwrap();
    let pending = client.drain().unwrap();
    assert!(
        pending >= 1,
        "the in-flight invocation counts toward the drain"
    );

    // New work is refused with 503 and a Retry-After hint, on both the
    // sync and async paths.
    for path in ["/invoke", "/async_invoke"] {
        let resp = client
            .call(
                Request::new(Method::Post, path)
                    .with_body(&br#"{"fqdn":"slow-1","args":"{}"}"#[..]),
            )
            .unwrap();
        assert_eq!(
            resp.status.0,
            503,
            "{path} while draining: {}",
            resp.body_str()
        );
        assert_eq!(
            resp.header("Retry-After"),
            Some("1"),
            "{path} advertises Retry-After"
        );
    }

    // The in-flight invocation still completes.
    let deadline = Instant::now() + Duration::from_secs(10);
    let result = loop {
        if let Some(r) = client.result(cookie).unwrap() {
            break r;
        }
        assert!(
            Instant::now() < deadline,
            "in-flight invocation lost to the drain"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(result.exec_ms > 0, "the invocation actually ran");

    // Once idle the worker reports `stopped` with nothing pending; a second
    // drain is an idempotent no-op reporting the same.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = client.status().unwrap();
        if st.lifecycle == "stopped" && st.drain_pending == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain never completed: lifecycle={} pending={}",
            st.lifecycle,
            st.drain_pending
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.drain().unwrap(), 0, "drain is idempotent");
    let _ = std::fs::remove_file(&wal);
}

/// Crash recovery reconstructs exactly the books a crash-free run produces:
/// same per-tenant counters, same completion totals, nothing lost and
/// nothing double-counted.
#[test]
fn recovered_tenant_counters_match_a_no_kill_run() {
    let clock: Arc<dyn iluvatar_sync::Clock> = SystemClock::shared();
    let spec = FunctionSpec::new("f", "1").with_timing(100, 400);
    let invocations = 12usize;

    let run = |kill: bool| {
        let wal = temp_wal();
        let mut worker = Worker::new(
            lifecycle_cfg("crashy", &wal),
            backend(&clock),
            Arc::clone(&clock),
        );
        worker.register(spec.clone()).unwrap();
        let mut handles = Vec::new();
        for i in 0..invocations {
            let tenant = if i % 2 == 0 { "ten-a" } else { "ten-b" };
            handles.push(
                worker
                    .async_invoke_tenant("f-1", &format!("{{\"i\":{i}}}"), Some(tenant))
                    .expect("accepted"),
            );
        }
        let (tstats, completed) = if kill {
            // Crash with the trace part-done, then recover on a fresh
            // backend and run the replayed remainder to completion.
            worker.kill();
            drop(worker);
            drop(handles);
            let (recovered, report) = Worker::recover(
                lifecycle_cfg("crashy", &wal),
                backend(&clock),
                Arc::clone(&clock),
                std::slice::from_ref(&spec),
            );
            for (_id, h) in report.handles {
                h.wait().expect("replayed invocation completes");
            }
            let st = recovered.status();
            (recovered.tenant_stats(), st.completed)
        } else {
            for h in handles {
                h.wait().expect("invocation completes");
            }
            let st = worker.status();
            (worker.tenant_stats(), st.completed)
        };
        let _ = std::fs::remove_file(&wal);
        let mut tstats = tstats;
        tstats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let books: Vec<(String, u64, u64, u64, u64)> = tstats
            .into_iter()
            .map(|t| (t.tenant, t.admitted, t.throttled, t.shed, t.served))
            .collect();
        (books, completed)
    };

    let (clean_books, clean_completed) = run(false);
    let (crash_books, crash_completed) = run(true);
    assert_eq!(clean_completed, invocations as u64);
    assert_eq!(
        crash_completed, clean_completed,
        "every accepted invocation completed"
    );
    assert_eq!(
        crash_books, clean_books,
        "recovery reconstructed the tenant books"
    );
}
